//! Static-analysis CI gate: analyze every example recipe in
//! `examples/recipes/` against the demo catalog and exit non-zero on any
//! Error-severity diagnostic. Warnings are reported but do not fail the
//! gate (they are advisory cost/structure lints).

use dc_analyze::AnalysisContext;
use dc_skills::Env;
use dc_storage::{CloudDatabase, Pricing};

fn corpus_env() -> Env {
    let mut env = Env::new();
    let (collisions, parties, victims) = dc_storage::demo::california_collisions(200, 1);
    let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
    db.create_table("collisions", &collisions).unwrap();
    db.create_table("parties", &parties).unwrap();
    db.create_table("victims", &victims).unwrap();
    db.create_table("sales", &dc_storage::demo::sales(200, 1))
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/recipes");
    let ctx = AnalysisContext::from_env(&corpus_env());
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("gel"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .gel recipes in {}", dir.display());

    let mut failed = 0usize;
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy();
        let text = std::fs::read_to_string(path).expect("readable recipe");
        let analysis = dc_gel::analyze_gel(&text, &ctx);
        let errors = analysis.errors().count();
        let warnings = analysis.warnings().count();
        if errors > 0 {
            failed += 1;
            println!("FAIL {name}: {errors} error(s)");
            for line in analysis.render().lines() {
                println!("     {line}");
            }
        } else if warnings > 0 {
            println!("ok   {name} ({warnings} warning(s))");
        } else {
            println!("ok   {name}");
        }
    }
    println!(
        "analyze_corpus: {}/{} recipes clean",
        paths.len() - failed,
        paths.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
