//! Static-analysis CI gate: analyze every example recipe in
//! `examples/recipes/` against the demo catalog and exit non-zero on any
//! Error-severity diagnostic. Warnings are reported but do not fail the
//! gate (they are advisory cost/structure lints).
//!
//! The gate also smoke-tests the estimation pass's soundness contract:
//! every clean recipe is executed against a fresh demo environment and
//! the actual scan tally must fall inside the estimator's
//! `[scan_bytes_lo, scan_bytes_hi]` envelope. A single unsound estimate
//! fails the gate.

//! `--qerror` instead runs the estimate-vs-actual selectivity sweep
//! behind the EXPERIMENTS.md q-error table: a 1M-row day-clustered
//! table filtered at 0.1/1/10% selectivity, priced twice — once with
//! full per-block zone detail and once from summary stats only (the
//! degraded path) — then executed for ground truth.

use dc_analyze::{AnalysisContext, TableStats};
use dc_engine::{Column, Expr, Table};
use dc_skills::{Env, Executor, SkillCall, SkillDag};
use dc_storage::{CloudDatabase, Pricing};

fn corpus_env() -> Env {
    let mut env = Env::new();
    let (collisions, parties, victims) = dc_storage::demo::california_collisions(200, 1);
    let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
    db.create_table("collisions", &collisions).unwrap();
    db.create_table("parties", &parties).unwrap();
    db.create_table("victims", &victims).unwrap();
    db.create_table("sales", &dc_storage::demo::sales(200, 1))
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

fn main() {
    if std::env::args().any(|a| a == "--qerror") {
        qerror_sweep();
        return;
    }
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/recipes");
    let ctx = AnalysisContext::from_env(&corpus_env());
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("gel"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .gel recipes in {}", dir.display());

    let mut failed = 0usize;
    let mut unsound = 0usize;
    let mut checked = 0usize;
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy();
        let text = std::fs::read_to_string(path).expect("readable recipe");
        let analysis = dc_gel::analyze_gel(&text, &ctx);
        let errors = analysis.errors().count();
        let warnings = analysis.warnings().count();
        if errors > 0 {
            failed += 1;
            println!("FAIL {name}: {errors} error(s)");
            for line in analysis.render().lines() {
                println!("     {line}");
            }
            continue;
        }
        if warnings > 0 {
            println!("ok   {name} ({warnings} warning(s))");
        } else {
            println!("ok   {name}");
        }
        if let Some(msg) = estimate_violation(&text, &ctx) {
            unsound += 1;
            println!("UNSOUND {name}: {msg}");
        } else {
            checked += 1;
        }
    }
    println!(
        "analyze_corpus: {}/{} recipes clean, {checked} estimator-sound, {unsound} unsound",
        paths.len() - failed,
        paths.len()
    );
    if failed > 0 || unsound > 0 {
        std::process::exit(1);
    }
}

/// Execute one clean recipe cold and compare the actual scan tally with
/// the static estimate. `Some(message)` on an unsound estimate; `None`
/// when the estimate bounds the run (or the recipe cannot execute
/// against the demo world — runtime coverage belongs to other gates).
///
/// Both sides target the recipe's *final* step: the executor re-plans
/// pushdown around whatever node it is asked for, so pricing the DAG
/// with every intermediate step as a target and then executing each one
/// would measure a different (step-debugger) plan than the one priced.
fn estimate_violation(text: &str, ctx: &AnalysisContext) -> Option<String> {
    let recipe = dc_gel::Recipe::parse(text).ok()?;
    let (dag, targets) = recipe.to_dag().ok()?;
    let target = *targets.last()?;
    let analysis = dc_analyze::analyze_dag(&dag, &[target], ctx);
    let mut env = corpus_env();
    let mut ex = Executor::new();
    ex.run(&dag, target, &mut env).ok()?;
    let actual = env.scan_tally.bytes_scanned;
    let hi = analysis.estimates.scan_bytes_hi;
    let lo = analysis.estimates.scan_bytes_lo;
    if actual > hi {
        return Some(format!(
            "scanned {actual} bytes > estimated upper bound {hi}"
        ));
    }
    if lo > actual {
        return Some(format!(
            "guaranteed lower bound {lo} > scanned {actual} bytes"
        ));
    }
    None
}

/// Estimate-vs-actual q-error sweep (`max(est/actual, actual/est)`) for
/// scan bytes at three selectivities, with and without per-block zone
/// detail. Exits non-zero on any unsound (under-)estimate.
fn qerror_sweep() {
    const ROWS: usize = 1_000_000;
    const BLOCK_ROWS: usize = 8_192;
    let table = Table::new(vec![
        ("id", Column::from_ints((0..ROWS as i64).collect())),
        (
            "v",
            Column::from_floats((0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("sweep table");
    let build_env = || {
        let mut env = Env::new();
        let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
        db.create_table_with_blocks("big", &table, BLOCK_ROWS)
            .unwrap();
        env.catalog.add_database(db).unwrap();
        env
    };
    let ctx_detail = AnalysisContext::from_env(&build_env());
    let (schema, full) = ctx_detail.table("MainDatabase", "big").expect("big table");
    // The degraded path: same row/block/byte totals, no zone detail.
    let mut ctx_plain = AnalysisContext::new();
    ctx_plain.add_table(
        "MainDatabase",
        "big",
        schema.clone(),
        TableStats {
            rows: full.rows,
            blocks: full.blocks,
            bytes: full.bytes,
            ..TableStats::default()
        },
    );

    let qerr = |est: u64, actual: u64| -> f64 {
        let (est, actual) = (est.max(1) as f64, actual.max(1) as f64);
        (est / actual).max(actual / est)
    };
    println!(
        "{:<12} {:>12} {:>14} {:>9} {:>14} {:>9}",
        "selectivity", "actual B", "est B (zones)", "q-error", "est B (plain)", "q-error"
    );
    let mut unsound = false;
    for pct in [0.1f64, 1.0, 10.0] {
        let cut = (ROWS as f64 * (1.0 - pct / 100.0)) as i64;
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "MainDatabase".into(),
                    table: "big".into(),
                },
                vec![],
            )
            .unwrap();
        let keep = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("id").ge(Expr::lit(cut)),
                },
                vec![load],
            )
            .unwrap();
        let detail = dc_analyze::analyze_dag(&dag, &[keep], &ctx_detail).estimates;
        let plain = dc_analyze::analyze_dag(&dag, &[keep], &ctx_plain).estimates;
        let mut env = build_env();
        Executor::new()
            .run(&dag, keep, &mut env)
            .expect("sweep run");
        let actual = env.scan_tally.bytes_scanned;
        unsound |= actual > detail.scan_bytes_hi || actual > plain.scan_bytes_hi;
        println!(
            "{:<12} {:>12} {:>14} {:>9.3} {:>14} {:>9.3}",
            format!("{pct}%"),
            actual,
            detail.scan_bytes_hi,
            qerr(detail.scan_bytes_hi, actual),
            plain.scan_bytes_hi,
            qerr(plain.scan_bytes_hi, actual),
        );
    }
    if unsound {
        eprintln!("qerror sweep FAILED: an estimate under-bounded an actual scan");
        std::process::exit(1);
    }
    println!("qerror sweep ok (no under-estimates)");
}
