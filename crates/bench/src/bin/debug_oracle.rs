//! Developer tool: oracle (noise-free) EA per zone — isolates the
//! translation rules' correctness from the injected error model.
use dc_nl::{Nl2Code, PromptComposer, SimulatedLlm};
use dc_spider::domains::pool_semantics;
use dc_spider::{evaluate, spider_example_library, t_custom, t_spider};

fn main() {
    let spider_sys = Nl2Code {
        semantics: pool_semantics(&dc_spider::spider_domains()),
        library: spider_example_library(1),
        composer: PromptComposer::default(),
        model: Box::new(SimulatedLlm::oracle()),
    };
    let custom_sys = Nl2Code {
        semantics: pool_semantics(&dc_spider::custom_domains()),
        library: dc_nl::ExampleLibrary::builtin(),
        composer: PromptComposer::default(),
        model: Box::new(SimulatedLlm::oracle()),
    };
    println!("oracle T_spider:");
    for z in evaluate(&t_spider(42), &spider_sys, 80) {
        println!("  {} n={} EA={:.2}", z.zone.label(), z.samples, z.mean_ea);
    }
    // Show spider high-C failures.
    for s in t_spider(42).iter() {
        if matches!(
            s.zone,
            dc_nl::metrics::Zone::LowHigh | dc_nl::metrics::Zone::HighHigh
        ) {
            if let Ok(r) = spider_sys.generate(&s.question, &s.schema) {
                if !dc_spider::execution_accuracy(s, &r.python, 80) {
                    println!(
                        "FAIL Q: {}\n  gold: {}\n  gen : {}",
                        s.question, s.gold_program, r.python
                    );
                }
            } else {
                println!("ERR  Q: {}", s.question);
            }
        }
    }
    println!("oracle T_custom:");
    for z in evaluate(&t_custom(42), &custom_sys, 80) {
        println!("  {} n={} EA={:.2}", z.zone.label(), z.samples, z.mean_ea);
    }
}
