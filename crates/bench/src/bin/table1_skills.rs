//! Regenerates **Table 1**: example DataChat skills by category, plus the
//! §2.1 claim that the platform offers "around 50 high-level skills".

use dc_skills::{registry, Category};

fn main() {
    let skills = registry();
    println!("Table 1: Example DataChat Skills\n");
    let examples: [(Category, &str); 5] = [
        (Category::DataIngestion, "LoadFile"),
        (Category::DataExploration, "DescribeColumn"),
        (Category::DataVisualization, "Visualize"),
        (Category::DataWrangling, "Compute"),
        (Category::MachineLearning, "TrainModel"),
    ];
    for (cat, name) in examples {
        let skill = skills
            .iter()
            .find(|s| s.name == name)
            .expect("registry covers Table 1 rows");
        println!("{:<20} | {}", cat.display_name(), skill.gel_template);
    }

    println!("\nFull catalog ({} skills):", skills.len());
    for cat in Category::all() {
        let in_cat: Vec<&str> = skills
            .iter()
            .filter(|s| s.category == cat)
            .map(|s| s.name)
            .collect();
        println!(
            "  {:<20} {:>2} skills: {}",
            cat.display_name(),
            in_cat.len(),
            in_cat.join(", ")
        );
    }
    assert!(
        (45..=60).contains(&skills.len()),
        "the paper says ~50 skills"
    );
    println!(
        "\nclaim check: ~50 high-level skills -> {} OK",
        skills.len()
    );
}
