//! Regenerates **Figure 3**: the same skill entered three ways — a UI
//! form, a Python API call, and a GEL sentence with autocomplete — all
//! converging to one identical skill request.

use datachat_core::ComputeForm;
use dc_engine::{DataType, Field, Schema};
use dc_gel::{parse_gel, suggest, SuggestionKind};

fn main() {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("case_id", DataType::Int),
        Field::new("party_number_deaths", DataType::Int),
        Field::new("party_number_injured", DataType::Int),
        Field::new("party_race", DataType::Str),
        Field::new("party_safety_equipment_1", DataType::Str),
        Field::new("party_safety_equipment_2", DataType::Str),
        Field::new("party_sobriety", DataType::Str),
        Field::new("party_type", DataType::Str),
    ])
    .expect("schema is valid");

    // (a) The UI form.
    let from_form = ComputeForm::new()
        .add_aggregate("count", "case_id", "NumberOfCases")
        .group_by(vec!["party_sobriety".into()])
        .submit(&schema)
        .expect("form is valid");
    println!("(a) UI form        -> {from_form:?}\n");

    // (b) The Python API call (verbatim from the paper's Figure 3b).
    let python = r#"california_car_collisions.compute(
        aggregates = [Count("case_id")],
        for_each = ["party_sobriety"],
        names = ["NumberOfCases"]
    )"#;
    let from_python = dc_nl::parse_pyapi(python)
        .expect("python parses")
        .statements[0]
        .calls[0]
        .clone();
    println!("(b) Python API     -> {from_python:?}\n");

    // (c) GEL with autocomplete: the screenshot's "party_" dropdown.
    let partial = "Compute the count of records for each party_";
    let suggestions = suggest(partial, &schema);
    println!("(c) GEL autocomplete for {partial:?}:");
    for s in suggestions
        .iter()
        .filter(|s| s.kind == SuggestionKind::Column)
    {
        println!("      {}", s.completion.rsplit(' ').next().unwrap_or(""));
    }
    let from_gel = parse_gel(
        "Compute the count of case_id for each party_sobriety and call the computed columns NumberOfCases",
    )
    .expect("gel parses");
    println!("\n(c) GEL sentence   -> {from_gel:?}\n");

    assert_eq!(from_form, from_python, "form and Python paths must agree");
    assert_eq!(from_python, from_gel, "Python and GEL paths must agree");
    println!("all three entry paths produce the SAME skill request: OK");
}
