//! Morsel-parallel and dictionary-encoding kernel speedups on
//! analytics-scale inputs, emitted as machine-readable JSON
//! (`BENCH_engine.json`).
//!
//! Each kernel runs at 1M rows through the dispatching entry point
//! (morsel path on a default build) and through its single-threaded
//! `*_serial` reference; the reported time is the minimum of three
//! repeats. The morsel kernels win even on one core because their inner
//! loops are cheaper — dictionary-coded group keys, borrowed join keys,
//! and decorate-sort instead of per-comparison value extraction.
//!
//! String-keyed variants run twice more: `plain` is the serial kernel
//! over `Column::Str` data (the pre-encoding baseline) and `dict` is the
//! dispatching kernel over the same table dictionary-encoded, so the
//! pair prices the end-to-end win of keeping strings encoded.
//!
//! The scale sweep runs join, group-by, and sort at 1M/10M/100M rows
//! through the memory-governed entry points under a 1 GiB budget
//! (`--mem-budget 64mb`-style override accepted), recording wall time,
//! `bytes_spilled`, and `spill_partitions` per tier. Tiers whose input
//! alone exceeds the budget must spill — the run aborts if they don't —
//! and the 1M/10M constrained outputs are checked identical to the
//! in-memory kernels'.
//!
//! `--smoke` skips all timing: it runs every string-keyed op at a small
//! row count in both encodings and exits nonzero if any pair of results
//! diverges — a cheap CI gate that the dict kernels stay equivalent.
//! `--smoke --mem-budget 64mb` additionally runs the 10M-row sweep under
//! that budget and fails unless every op spills, matches the in-memory
//! result, and leaves no spill files behind.

use std::sync::Arc;
use std::time::Instant;

use dc_engine::bitmap::Bitmap;
use dc_engine::ops::{
    filter, filter_serial, group_by, group_by_serial, group_by_with_mem, join, join_serial,
    join_with_mem, sort_by, sort_by_serial, sort_by_with_mem, AggFunc, AggSpec, JoinType, SortKey,
};
use dc_engine::{parallel, Column, Expr, MemContext, SpillSnapshot, Table, Value};
use dc_storage::{BlockTable, DiskBlockTable, ScanOptions, ScanReceipt};

const ROWS: usize = 1_000_000;
const REPEATS: usize = 3;

fn events(n: usize) -> Table {
    Table::new(vec![
        ("id", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 50)).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds")
}

const STR_KEYS: usize = 1000;

/// A fact table with a medium-cardinality string key (plain `Str`
/// encoding; callers encode it for the `dict` variants).
fn str_events(n: usize) -> Table {
    Table::new(vec![
        ("id", Column::from_ints((0..n as i64).collect())),
        (
            "s",
            Column::from_strs(
                (0..n)
                    .map(|i| format!("city_{:04}", (i * 7919) % STR_KEYS))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds")
}

/// One row per distinct string key — the join dimension side.
fn str_dim() -> Table {
    Table::new(vec![
        (
            "s",
            Column::from_strs(
                (0..STR_KEYS)
                    .map(|i| format!("city_{i:04}"))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "weight",
            Column::from_floats((0..STR_KEYS).map(|i| i as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("dim builds")
}

/// Parse a byte size like `64mb`, `1gb`, `512kb`, or plain bytes.
fn parse_size(s: &str) -> u64 {
    let lower = s.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(p) = lower.strip_suffix("gb") {
        (p, 1u64 << 30)
    } else if let Some(p) = lower.strip_suffix("mb") {
        (p, 1 << 20)
    } else if let Some(p) = lower.strip_suffix("kb") {
        (p, 1 << 10)
    } else if let Some(p) = lower.strip_suffix('b') {
        (p, 1)
    } else {
        (lower.as_str(), 1)
    };
    let n: u64 = num
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad size {s:?} (want e.g. 64mb, 1gb, or bytes)"));
    n * mult
}

/// Round-trip a fixture through an on-disk block file and hand back the
/// scanned table plus the receipt, so kernel records carry the real
/// storage footprint of their input instead of 0. The file is deleted
/// once scanned.
fn disk_backed(name: &str, t: &Table) -> (Table, ScanReceipt) {
    let dir = std::env::temp_dir().join(format!("dc-bench-fixtures-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fixture dir");
    let path = dir.join(name);
    let dt = DiskBlockTable::create(&path, t, 8192).expect("fixture block file");
    let (out, receipt) = dt.scan(&ScanOptions::full()).expect("fixture scan");
    assert!(
        receipt.bytes_read <= receipt.bytes_scanned,
        "{name}: faulted {} bytes but only {} were charged",
        receipt.bytes_read,
        receipt.bytes_scanned
    );
    drop(dt);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    (out, receipt)
}

/// Scale-sweep fact table: int id, 50-key dictionary group column, float
/// value. Columns are built directly (no per-row string formatting) so
/// the 100M tier constructs in seconds.
fn sweep_table(n: usize) -> Table {
    let dict: Arc<Vec<String>> = Arc::new((0..50).map(|i| format!("g{i:02}")).collect());
    Table::new(vec![
        (
            "id",
            Column::Int((0..n as i64).collect(), Bitmap::new_valid(n)),
        ),
        (
            "k",
            Column::Dict(
                (0..n).map(|i| (i % 50) as u32).collect(),
                dict,
                Bitmap::new_valid(n),
            ),
        ),
        (
            "v",
            Column::Float(
                (0..n).map(|i| ((i * 7919) % 100_000) as f64).collect(),
                Bitmap::new_valid(n),
            ),
        ),
    ])
    .expect("sweep table builds")
}

/// Join probe side: every id matches, one-tenth the fact rows, so the
/// fact table is the build side the governor has to page out.
fn probe_table(n: usize) -> Table {
    Table::new(vec![(
        "pid",
        Column::Int((0..n as i64).collect(), Bitmap::new_valid(n)),
    )])
    .expect("probe table builds")
}

/// One scale-sweep tier: join, group-by, and sort at `n` rows through
/// the memory-governed entry points. `budget == 0` runs unlimited (the
/// in-memory reference); otherwise the ops run under a fresh
/// [`MemContext`] and, when `verify` is set, every constrained output is
/// compared with the in-memory kernel's. Returns human-readable
/// violations (empty = the tier is clean).
fn sweep_tier(n: usize, budget: u64, verify: bool, records: &mut Vec<Record>) -> Vec<String> {
    let mut bad = Vec::new();
    let t = sweep_table(n);
    let probe = probe_table(n / 10 + 1);
    let ctx = (budget > 0).then(|| MemContext::with_budget(budget).expect("spill context builds"));
    let mem = ctx.as_ref();
    // Every op's state estimate is at least the byte size of the table it
    // holds transient, so spilling is certain whenever the input alone
    // exceeds the budget.
    let must_spill = budget > 0 && t.byte_size() as u64 > budget;
    let aggs = [
        AggSpec::new(AggFunc::Sum, "v", "s"),
        AggSpec::count_records("n"),
    ];
    let skeys = [SortKey::desc("v"), SortKey::asc("id")];
    type OpFn<'a> = Box<dyn Fn(Option<&MemContext>) -> Table + 'a>;
    let ops: Vec<(&'static str, OpFn)> = vec![
        (
            "sweep_hash_join",
            Box::new(|m: Option<&MemContext>| {
                join_with_mem(&probe, &t, &["pid"], &["id"], JoinType::Inner, m)
                    .expect("sweep join")
            }),
        ),
        (
            "sweep_group_by",
            Box::new(|m: Option<&MemContext>| {
                group_by_with_mem(&t, &["k"], &aggs, m).expect("sweep group-by")
            }),
        ),
        (
            "sweep_sort",
            Box::new(|m: Option<&MemContext>| {
                sort_by_with_mem(&t, &skeys, m).expect("sweep sort")
            }),
        ),
    ];
    let mode = if budget > 0 { "budget" } else { "unbounded" };
    for (op, f) in &ops {
        let before = mem
            .map(|c| c.metrics.snapshot())
            .unwrap_or(SpillSnapshot::default());
        let start = Instant::now();
        let out = f(mem);
        let ns = start.elapsed().as_nanos();
        let spilled = mem
            .map(|c| c.metrics.snapshot().delta_since(before))
            .unwrap_or(SpillSnapshot::default());
        println!(
            "{op:<28} {mode:<8} {:>10.2} ms  ({n} rows in, {} out, {} bytes spilled / {} partitions)",
            ns as f64 / 1e6,
            out.num_rows(),
            spilled.bytes_spilled,
            spilled.spill_partitions
        );
        if must_spill && spilled.bytes_spilled == 0 {
            bad.push(format!("{op}@{n}: input exceeds the budget but nothing spilled"));
        }
        if verify && budget > 0 && out != f(None) {
            bad.push(format!("{op}@{n}: constrained output diverges from in-memory"));
        }
        records.push(Record {
            op,
            rows: n,
            mode,
            ns_per_op: ns,
            out_rows: out.num_rows(),
            bytes_scanned: 0,
            bytes_read: 0,
            bytes_pruned: 0,
            cache_hits: 0,
            bytes_saved: 0,
            bytes_spilled: spilled.bytes_spilled,
            spill_partitions: spilled.spill_partitions,
            mem_budget: budget,
        });
    }
    if let Some(c) = &ctx {
        let leaked = std::fs::read_dir(&c.spill_root)
            .map(|rd| rd.count())
            .unwrap_or(0);
        if leaked > 0 {
            bad.push(format!("{n}-row tier leaked {leaked} spill dirs"));
        }
    }
    bad
}

/// Minimum wall-clock nanoseconds per run over [`REPEATS`] runs.
fn min_ns(mut f: impl FnMut() -> Table) -> (u128, usize) {
    let mut best = u128::MAX;
    let mut out_rows = 0;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let t = f();
        best = best.min(start.elapsed().as_nanos());
        out_rows = t.num_rows();
    }
    (best, out_rows)
}

struct Record {
    op: &'static str,
    rows: usize,
    mode: &'static str,
    ns_per_op: u128,
    out_rows: usize,
    /// Bytes the storage scan of the op's input charged.
    bytes_scanned: u64,
    /// Bytes actually faulted in from disk (`<= bytes_scanned` always).
    bytes_read: u64,
    /// Bytes the zone maps skipped (0 when no predicate was pushed).
    bytes_pruned: u64,
    /// Sub-DAG cache hits the run was served from (executor records).
    cache_hits: u64,
    /// Scan bytes those hits avoided re-charging (executor records).
    bytes_saved: u64,
    /// Bytes written to spill files while the op ran out of core.
    bytes_spilled: u64,
    /// Spill partitions (or sort runs) the op wrote.
    spill_partitions: u64,
    /// Operator-memory budget the op ran under (0 = unlimited).
    mem_budget: u64,
}

/// 1M rows clustered on both keys: `id` ascending and `key` changing
/// every 1 000 rows, so zone maps get tight per-block ranges. This is
/// the layout warehouse tables converge to after any sort or ingest by
/// time — selective predicates touch a handful of blocks.
fn clustered(n: usize) -> Table {
    Table::new(vec![
        ("id", Column::from_ints((0..n as i64).collect())),
        (
            "key",
            Column::from_strs(
                (0..n)
                    .map(|i| format!("key_{:06}", i / 1000))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds")
}

fn str_lit(s: String) -> Expr {
    Expr::lit(Value::Str(s))
}

/// The three selectivity tiers per key type: (suffix, int predicate,
/// dict-string predicate), each matching the same row count.
fn pruning_cases(n: usize) -> Vec<(&'static str, Expr, Expr)> {
    let tier = |frac: usize| {
        let rows = n / frac;
        let keys = rows / 1000;
        (
            Expr::col("id").lt(Expr::lit(rows as i64)),
            Expr::col("key").between(
                str_lit("key_000000".to_string()),
                str_lit(format!("key_{:06}", keys.saturating_sub(1))),
            ),
        )
    };
    let (i1, s1) = tier(1000);
    let (i2, s2) = tier(100);
    let (i3, s3) = tier(10);
    vec![("0.1pct", i1, s1), ("1pct", i2, s2), ("10pct", i3, s3)]
}

/// `--smoke` half 2: a selective pushed predicate must scan strictly
/// fewer bytes than the full scan while returning identical rows.
fn pruning_divergences() -> Vec<String> {
    let t = clustered(20_000);
    let bt = BlockTable::new(&t, 1024).expect("block table");
    let (full, full_receipt) = bt.scan(&ScanOptions::full()).expect("full scan");
    let mut bad = Vec::new();
    for (name, int_pred, str_pred) in pruning_cases(20_000) {
        for (key, pred) in [("int", int_pred), ("dict", str_pred)] {
            let expected = filter(&full, &pred).expect("filters");
            let mut opts = ScanOptions::full();
            opts.predicate = Some(pred);
            let (out, receipt) = bt.scan(&opts).expect("pruned scan");
            if out != expected {
                bad.push(format!("{key}_{name}: pruned rows diverge"));
            }
            if receipt.bytes_scanned >= full_receipt.bytes_scanned {
                bad.push(format!(
                    "{key}_{name}: pruned scan charged {} bytes, full scan {}",
                    receipt.bytes_scanned, full_receipt.bytes_scanned
                ));
            }
            if receipt.bytes_scanned + receipt.bytes_pruned != full_receipt.bytes_scanned {
                bad.push(format!("{key}_{name}: scanned + pruned != full footprint"));
            }
        }
    }
    bad
}

/// Run every string-keyed op on `plain` (serial kernels) and on its
/// dict-encoded twin (dispatching kernels) and compare results.
/// Returns the names of diverging ops.
fn dict_divergences(plain: &Table, dim: &Table) -> Vec<&'static str> {
    let enc = plain.encode_strings();
    let enc_dim = dim.encode_strings();
    let mut bad = Vec::new();
    let pred = Expr::col("s").eq(Expr::lit("city_0042"));
    if filter(&enc, &pred).expect("filters") != filter_serial(plain, &pred).expect("filters") {
        bad.push("filter_str_eq");
    }
    let aggs = [
        AggSpec::new(AggFunc::Sum, "v", "sum"),
        AggSpec::count_records("n"),
    ];
    if group_by(&enc, &["s"], &aggs).expect("groups")
        != group_by_serial(plain, &["s"], &aggs).expect("groups")
    {
        bad.push("group_by_str_keys");
    }
    if join(&enc, &enc_dim, &["s"], &["s"], JoinType::Inner).expect("joins")
        != join_serial(plain, dim, &["s"], &["s"], JoinType::Inner).expect("joins")
    {
        bad.push("hash_join_str");
    }
    let keys = [SortKey::asc("s"), SortKey::asc("id")];
    if sort_by(&enc, &keys).expect("sorts") != sort_by_serial(plain, &keys).expect("sorts") {
        bad.push("sort_str");
    }
    bad
}

/// Satellite guard: gathering 1M strings through `Column::take` must not
/// regress to per-row `get`/`push_value` costs, and the dict gather
/// (code copy + `Arc` bump) must beat the plain string gather soundly.
fn assert_gather_fast(t: &Table) {
    let plain_col = t.column("s").expect("s").materialize();
    let dict_col = plain_col.dict_encode();
    let n = plain_col.len();
    let indices: Vec<usize> = (0..n).map(|i| (i * 7919) % n).collect();

    let time = |f: &dyn Fn() -> Column| {
        let mut best = u128::MAX;
        for _ in 0..REPEATS {
            let start = Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed().as_nanos());
        }
        best
    };
    let naive_ns = time(&|| {
        let mut out = Column::empty(plain_col.dtype());
        for &i in &indices {
            out.push_value(&plain_col.get(i)).expect("pushes");
        }
        out
    });
    let take_ns = time(&|| plain_col.take(&indices));
    let dict_ns = time(&|| dict_col.take(&indices));
    println!(
        "gather_1m_str                naive {:>8.2} ms  take {:>8.2} ms  dict {:>8.2} ms",
        naive_ns as f64 / 1e6,
        take_ns as f64 / 1e6,
        dict_ns as f64 / 1e6
    );
    assert!(
        take_ns <= naive_ns,
        "string gather regressed: take {take_ns}ns vs naive loop {naive_ns}ns"
    );
    assert!(
        dict_ns * 2 <= take_ns,
        "dict gather should be >=2x plain: dict {dict_ns}ns vs take {take_ns}ns"
    );
}

/// The optimizer phase's 3-join star world: `fact` rows carry a fan-out
/// key (`fan_keys` values, `per_key` dimension rows each) and a sparse
/// key of which the unique-key dimension covers only `sel_keys` of
/// `key_space` values. The written plan joins the fan-out dimension
/// first — the worst order — and the optimizer provably flips it.
fn star_env(
    fact_rows: usize,
    fan_keys: usize,
    per_key: usize,
    key_space: usize,
    sel_keys: usize,
) -> dc_skills::Env {
    use dc_storage::{CloudDatabase, Pricing};
    let fact = Table::new(vec![
        (
            "fk",
            Column::from_ints((0..fact_rows as i64).map(|i| i % fan_keys as i64).collect()),
        ),
        (
            "uk",
            Column::from_ints(
                (0..fact_rows as i64)
                    .map(|i| (i * 7919) % key_space as i64)
                    .collect(),
            ),
        ),
        (
            "v",
            Column::from_floats((0..fact_rows).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("fact builds");
    let fan_rows = fan_keys * per_key;
    let fan = Table::new(vec![
        (
            "k",
            Column::from_ints((0..fan_rows as i64).map(|i| i % fan_keys as i64).collect()),
        ),
        (
            "fw",
            Column::from_floats((0..fan_rows).map(|i| i as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("fan builds");
    let sel = Table::new(vec![
        ("k", Column::from_ints((0..sel_keys as i64).collect())),
        (
            "sw",
            Column::from_floats((0..sel_keys).map(|i| (i * 2) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("sel builds");
    let mut env = dc_skills::Env::new();
    let mut db = CloudDatabase::new("bench", Pricing::default_cloud());
    db.create_table_with_blocks("fact", &fact, 8192)
        .expect("fact");
    db.create_table_with_blocks("fan", &fan, 4096).expect("fan");
    db.create_table_with_blocks("sel", &sel, 512).expect("sel");
    env.catalog.add_database(db).expect("db");
    env
}

/// fact ⋈ fan ⋈ sel → sum(v) by fk, joins written fan-first.
fn star_dag() -> (dc_skills::SkillDag, dc_skills::NodeId) {
    use dc_skills::{SkillCall, SkillDag};
    let mut dag = SkillDag::new();
    let load = |dag: &mut SkillDag, table: &str| {
        dag.add(
            SkillCall::LoadTable {
                database: "bench".into(),
                table: table.into(),
            },
            vec![],
        )
        .expect("load node")
    };
    let fact = load(&mut dag, "fact");
    let fan = load(&mut dag, "fan");
    let sel = load(&mut dag, "sel");
    let j1 = dag
        .add(
            SkillCall::Join {
                other: "fan".into(),
                left_on: vec!["fk".into()],
                right_on: vec!["k".into()],
                how: JoinType::Inner,
            },
            vec![fact, fan],
        )
        .expect("join fan");
    let j2 = dag
        .add(
            SkillCall::Join {
                other: "sel".into(),
                left_on: vec!["uk".into()],
                right_on: vec!["k".into()],
                how: JoinType::Inner,
            },
            vec![j1, sel],
        )
        .expect("join sel");
    let g = dag
        .add(
            SkillCall::Compute {
                aggs: vec![AggSpec::new(AggFunc::Sum, "v", "total")],
                for_each: vec!["fk".into()],
            },
            vec![j2],
        )
        .expect("compute node");
    (dag, g)
}

/// A 24-column table of which the wide-projection recipe reads two.
fn wide_env(rows: usize) -> dc_skills::Env {
    use dc_storage::{CloudDatabase, Pricing};
    let mut t = Table::new(vec![(
        "day",
        Column::from_ints((0..rows as i64).map(|i| i / 1000).collect()),
    )])
    .expect("wide builds");
    for c in 1..24i64 {
        t.add_column(
            &format!("m{c}"),
            Column::from_ints((0..rows as i64).map(|i| (i * c) % 1009).collect()),
        )
        .expect("metric column");
    }
    let mut env = dc_skills::Env::new();
    let mut db = CloudDatabase::new("bench", Pricing::default_cloud());
    db.create_table_with_blocks("wide", &t, 8192).expect("wide");
    env.catalog.add_database(db).expect("db");
    env
}

/// load wide → filter on day → sum(m1) by day. Only 2 of 24 columns are
/// live, so projection pushdown should drop ~11/12 of the scan bytes.
fn wide_dag() -> (dc_skills::SkillDag, dc_skills::NodeId) {
    use dc_skills::{SkillCall, SkillDag};
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "bench".into(),
                table: "wide".into(),
            },
            vec![],
        )
        .expect("load node");
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("day").gt(Expr::lit(0i64)),
            },
            vec![l],
        )
        .expect("filter node");
    let g = dag
        .add(
            SkillCall::Compute {
                aggs: vec![AggSpec::new(AggFunc::Sum, "m1", "total")],
                for_each: vec!["day".into()],
            },
            vec![f],
        )
        .expect("compute node");
    (dag, g)
}

/// Run one optimizer-phase pipeline to completion through the resilient
/// scheduler with the optimizer on or off; returns (ns, bytes_scanned,
/// output). A fresh executor per run keeps the sub-DAG cache cold.
fn run_plan(
    env_of: &dyn Fn() -> dc_skills::Env,
    dag: &dc_skills::SkillDag,
    target: dc_skills::NodeId,
    optimize: bool,
) -> (u128, u64, dc_skills::SkillOutput) {
    use dc_skills::resilient::ExecPolicy;
    use dc_skills::Executor;
    let policy = ExecPolicy {
        optimize,
        ..ExecPolicy::default()
    };
    let mut best_ns = u128::MAX;
    let mut bytes = 0;
    let mut output = None;
    for _ in 0..REPEATS {
        let mut env = env_of();
        let mut ex = Executor::new();
        let start = Instant::now();
        let report = ex
            .run_resilient(dag, target, &mut env, &policy)
            .expect("pipeline runs");
        best_ns = best_ns.min(start.elapsed().as_nanos());
        assert!(report.succeeded(), "optimizer-phase pipeline failed");
        bytes = report.nodes.iter().map(|n| n.bytes_scanned).sum();
        output = report.output;
    }
    (best_ns, bytes, output.expect("pipeline output"))
}

/// `--smoke` half 3: the optimizer must leave results untouched while
/// never charging more scan bytes than the plan as written.
/// `(name, env builder, dag, target)` of one optimizer smoke case.
type OptCase = (
    &'static str,
    Box<dyn Fn() -> dc_skills::Env>,
    dc_skills::SkillDag,
    dc_skills::NodeId,
);

fn optimizer_divergences() -> Vec<String> {
    let mut bad = Vec::new();
    let cases: Vec<OptCase> = {
        let (star, star_t) = star_dag();
        let (wide, wide_t) = wide_dag();
        vec![
            (
                "star_3join",
                Box::new(|| star_env(20_000, 500, 10, 10_000, 200)),
                star,
                star_t,
            ),
            (
                "wide_projection",
                Box::new(|| wide_env(4_000)),
                wide,
                wide_t,
            ),
        ]
    };
    for (name, env_of, dag, target) in &cases {
        let (_, opt_bytes, opt_out) = run_plan(env_of, dag, *target, true);
        let (_, raw_bytes, raw_out) = run_plan(env_of, dag, *target, false);
        if opt_out != raw_out {
            bad.push(format!("{name}: optimized output diverges from as-written"));
        }
        if opt_bytes > raw_bytes {
            bad.push(format!(
                "{name}: optimized plan charged {opt_bytes} bytes, as-written {raw_bytes}"
            ));
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mem_budget = args
        .iter()
        .position(|a| a == "--mem-budget")
        .map(|i| parse_size(args.get(i + 1).expect("--mem-budget needs a size")));
    if args.iter().any(|a| a == "--smoke") {
        // CI gate: small input, no timing, no JSON — just dict/plain
        // agreement across every string-keyed kernel.
        let plain = str_events(20_000);
        let bad = dict_divergences(&plain, &str_dim());
        if !bad.is_empty() {
            eprintln!("smoke FAILED: dict/plain divergence in {bad:?}");
            std::process::exit(1);
        }
        let bad = pruning_divergences();
        if !bad.is_empty() {
            eprintln!("smoke FAILED: zone-map pruning violations: {bad:?}");
            std::process::exit(1);
        }
        let bad = optimizer_divergences();
        if !bad.is_empty() {
            eprintln!("smoke FAILED: optimizer violations: {bad:?}");
            std::process::exit(1);
        }
        // Low-memory gate: the 10M-row sweep must complete out of core
        // with identical results and no leaked spill files.
        if let Some(budget) = mem_budget {
            let bad = sweep_tier(10_000_000, budget, true, &mut Vec::new());
            if !bad.is_empty() {
                eprintln!("smoke FAILED: out-of-core violations: {bad:?}");
                std::process::exit(1);
            }
            println!("smoke ok: 10M-row sweep spilled under a {budget}-byte budget, results identical");
        }
        println!(
            "smoke ok: dict kernels agree, pruned scans are cheaper + identical, \
             optimized plans are byte-cheaper + identical"
        );
        return;
    }

    let (t, t_receipt) = disk_backed("events.dcb", &events(ROWS));
    let threads = parallel::num_threads();
    let mut records: Vec<Record> = Vec::new();
    let mut push = |op: &'static str,
                    mode: &'static str,
                    (ns, out_rows): (u128, usize),
                    fixture: &ScanReceipt| {
        let pretty_ms = ns as f64 / 1e6;
        println!("{op:<28} {mode:<8} {pretty_ms:>10.2} ms  ({out_rows} rows out)");
        records.push(Record {
            op,
            rows: ROWS,
            mode,
            ns_per_op: ns,
            out_rows,
            bytes_scanned: fixture.bytes_scanned,
            bytes_read: fixture.bytes_read,
            bytes_pruned: 0,
            cache_hits: 0,
            bytes_saved: 0,
            bytes_spilled: 0,
            spill_partitions: 0,
            mem_budget: 0,
        });
    };

    let pred = Expr::col("v").gt(Expr::lit(500.0));
    push(
        "filter_1m",
        "parallel",
        min_ns(|| filter(&t, &pred).expect("filters")),
        &t_receipt,
    );
    push(
        "filter_1m",
        "serial",
        min_ns(|| filter_serial(&t, &pred).expect("filters")),
        &t_receipt,
    );

    let aggs = [
        AggSpec::new(AggFunc::Sum, "v", "s"),
        AggSpec::new(AggFunc::Avg, "v", "a"),
        AggSpec::count_records("n"),
    ];
    push(
        "group_by_1m_50groups",
        "parallel",
        min_ns(|| group_by(&t, &["k"], &aggs).expect("groups")),
        &t_receipt,
    );
    push(
        "group_by_1m_50groups",
        "serial",
        min_ns(|| group_by_serial(&t, &["k"], &aggs).expect("groups")),
        &t_receipt,
    );

    push(
        "hash_join_1m_x_1m",
        "parallel",
        min_ns(|| join(&t, &t, &["id"], &["id"], JoinType::Inner).expect("joins")),
        &t_receipt,
    );
    push(
        "hash_join_1m_x_1m",
        "serial",
        min_ns(|| join_serial(&t, &t, &["id"], &["id"], JoinType::Inner).expect("joins")),
        &t_receipt,
    );

    let keys = [SortKey::desc("v"), SortKey::asc("id")];
    push(
        "sort_1m",
        "parallel",
        min_ns(|| sort_by(&t, &keys).expect("sorts")),
        &t_receipt,
    );
    push(
        "sort_1m",
        "serial",
        min_ns(|| sort_by_serial(&t, &keys).expect("sorts")),
        &t_receipt,
    );

    // String-keyed kernels, plain `Str` vs dictionary-encoded. Both
    // variants come off disk so their records carry the footprint each
    // encoding actually pays for.
    let (plain, plain_receipt) = disk_backed("str_events.dcb", &str_events(ROWS));
    let plain = plain.materialize_strings();
    let (enc, enc_receipt) = disk_backed("str_events_enc.dcb", &plain.encode_strings());
    let dim = str_dim();
    let enc_dim = dim.encode_strings();

    let spred = Expr::col("s").eq(Expr::lit("city_0042"));
    push(
        "filter_1m_str_eq",
        "dict",
        min_ns(|| filter(&enc, &spred).expect("filters")),
        &enc_receipt,
    );
    push(
        "filter_1m_str_eq",
        "plain",
        min_ns(|| filter_serial(&plain, &spred).expect("filters")),
        &plain_receipt,
    );

    let saggs = [
        AggSpec::new(AggFunc::Sum, "v", "sum"),
        AggSpec::count_records("n"),
    ];
    push(
        "group_by_1m_str_keys",
        "dict",
        min_ns(|| group_by(&enc, &["s"], &saggs).expect("groups")),
        &enc_receipt,
    );
    push(
        "group_by_1m_str_keys",
        "plain",
        min_ns(|| group_by_serial(&plain, &["s"], &saggs).expect("groups")),
        &plain_receipt,
    );

    push(
        "hash_join_1m_str",
        "dict",
        min_ns(|| join(&enc, &enc_dim, &["s"], &["s"], JoinType::Inner).expect("joins")),
        &enc_receipt,
    );
    push(
        "hash_join_1m_str",
        "plain",
        min_ns(|| join_serial(&plain, &dim, &["s"], &["s"], JoinType::Inner).expect("joins")),
        &plain_receipt,
    );

    let skeys = [SortKey::asc("s"), SortKey::asc("id")];
    push(
        "sort_1m_str",
        "dict",
        min_ns(|| sort_by(&enc, &skeys).expect("sorts")),
        &enc_receipt,
    );
    push(
        "sort_1m_str",
        "plain",
        min_ns(|| sort_by_serial(&plain, &skeys).expect("sorts")),
        &plain_receipt,
    );

    assert_gather_fast(&plain);

    // Zone-map pruning: pushed selective predicates vs full-scan-then-
    // filter over the same BlockTable, at three selectivities per key.
    let ct = clustered(ROWS);
    let bt = BlockTable::new(&ct, 8192).expect("block table");
    let (full, full_receipt) = bt.scan(&ScanOptions::full()).expect("full scan");
    let pruning_ops: Vec<(String, Expr)> = pruning_cases(ROWS)
        .into_iter()
        .flat_map(|(name, int_pred, str_pred)| {
            [
                (format!("scan_filter_1m_int_{name}"), int_pred),
                (format!("scan_filter_1m_dict_{name}"), str_pred),
            ]
        })
        .collect();
    for (op, pred) in &pruning_ops {
        let mut opts = ScanOptions::full();
        opts.predicate = Some(pred.clone());
        let (check, receipt) = bt.scan(&opts).expect("pruned scan");
        assert_eq!(
            check,
            filter(&full, pred).expect("filters"),
            "pruned scan must match full-scan-then-filter for {op}"
        );
        assert!(
            receipt.bytes_read <= receipt.bytes_scanned,
            "{op}: faulted more bytes than charged"
        );
        let op: &'static str = Box::leak(op.clone().into_boxed_str());
        let (ns, out_rows) = min_ns(|| bt.scan(&opts).expect("pruned scan").0);
        println!(
            "{op:<28} pruned   {:>10.2} ms  ({out_rows} rows out)",
            ns as f64 / 1e6
        );
        records.push(Record {
            op,
            rows: ROWS,
            mode: "pruned",
            ns_per_op: ns,
            out_rows,
            bytes_scanned: receipt.bytes_scanned,
            bytes_read: receipt.bytes_read,
            bytes_pruned: receipt.bytes_pruned,
            cache_hits: 0,
            bytes_saved: 0,
            bytes_spilled: 0,
            spill_partitions: 0,
            mem_budget: 0,
        });
        let (ns, out_rows) = min_ns(|| {
            let (t, _) = bt.scan(&ScanOptions::full()).expect("full scan");
            filter(&t, pred).expect("filters")
        });
        println!(
            "{op:<28} unpruned {:>10.2} ms  ({out_rows} rows out)",
            ns as f64 / 1e6
        );
        records.push(Record {
            op,
            rows: ROWS,
            mode: "unpruned",
            ns_per_op: ns,
            out_rows,
            bytes_scanned: full_receipt.bytes_scanned,
            bytes_read: full_receipt.bytes_read,
            bytes_pruned: 0,
            cache_hits: 0,
            bytes_saved: 0,
            bytes_spilled: 0,
            spill_partitions: 0,
            mem_budget: 0,
        });
    }

    // Executor sub-DAG caching: the same load→filter→aggregate pipeline
    // through one executor, cold then cached. The cached run reports how
    // many nodes were served from cache and the scan bytes that saved.
    {
        use dc_skills::resilient::ExecPolicy;
        use dc_skills::{Env, Executor, SkillCall, SkillDag};
        use dc_storage::{CloudDatabase, Pricing};

        let mut env = Env::new();
        let mut db = CloudDatabase::new("bench", Pricing::default_cloud());
        db.create_table_with_blocks("events", &ct, 8192)
            .expect("create events");
        env.catalog.add_database(db).expect("add db");
        let mut dag = SkillDag::new();
        let l = dag
            .add(
                SkillCall::LoadTable {
                    database: "bench".into(),
                    table: "events".into(),
                },
                vec![],
            )
            .expect("load node");
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("v").gt(Expr::lit(500.0)),
                },
                vec![l],
            )
            .expect("filter node");
        let g = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec::new(AggFunc::Sum, "v", "total")],
                    for_each: vec!["key".into()],
                },
                vec![f],
            )
            .expect("compute node");
        let mut ex = Executor::new();
        let policy = ExecPolicy::default();
        for mode in ["cold", "cached"] {
            let start = Instant::now();
            let report = ex
                .run_resilient(&dag, g, &mut env, &policy)
                .expect("pipeline runs");
            let ns = start.elapsed().as_nanos();
            assert!(report.succeeded());
            println!(
                "exec_pipeline_1m             {mode:<8} {:>10.2} ms  ({} cache hits, {} bytes saved)",
                ns as f64 / 1e6,
                report.cache_hits,
                report.bytes_saved
            );
            records.push(Record {
                op: "exec_pipeline_1m",
                rows: ROWS,
                mode,
                ns_per_op: ns,
                out_rows: 0,
                bytes_scanned: 0,
                bytes_read: 0,
                bytes_pruned: 0,
                cache_hits: report.cache_hits,
                bytes_saved: report.bytes_saved,
                bytes_spilled: report.bytes_spilled,
                spill_partitions: report.spill_partitions,
                mem_budget: 0,
            });
        }
    }

    // Cost-based optimizer phase: the same written DAG through the
    // executor with the optimizer on and off. The star prices join
    // reordering (fan-out dimension written first); the wide scan prices
    // projection pushdown (2 of 24 columns live).
    {
        let (star, star_t) = star_dag();
        let star_world: Box<dyn Fn() -> dc_skills::Env> =
            Box::new(|| star_env(300_000, 5_000, 10, 100_000, 1_000));
        let (wide, wide_t) = wide_dag();
        let wide_world: Box<dyn Fn() -> dc_skills::Env> = Box::new(|| wide_env(200_000));
        for (op, rows, env_of, dag, target) in [
            ("exec_star_3join", 300_000, &star_world, &star, star_t),
            ("exec_wide_projection", 200_000, &wide_world, &wide, wide_t),
        ] {
            let (opt_ns, opt_bytes, opt_out) = run_plan(env_of, dag, target, true);
            let (raw_ns, raw_bytes, raw_out) = run_plan(env_of, dag, target, false);
            assert_eq!(opt_out, raw_out, "{op}: optimized output diverged");
            assert!(
                opt_bytes <= raw_bytes,
                "{op}: optimized plan charged more bytes ({opt_bytes} > {raw_bytes})"
            );
            for (mode, ns, bytes) in [
                ("optimized", opt_ns, opt_bytes),
                ("as_written", raw_ns, raw_bytes),
            ] {
                println!(
                    "{op:<28} {mode:<10} {:>10.2} ms  ({bytes} bytes scanned)",
                    ns as f64 / 1e6
                );
                records.push(Record {
                    op,
                    rows,
                    mode,
                    ns_per_op: ns,
                    out_rows: 0,
                    bytes_scanned: bytes,
                    bytes_read: 0,
                    bytes_pruned: 0,
                    cache_hits: 0,
                    bytes_saved: 0,
                    bytes_spilled: 0,
                    spill_partitions: 0,
                    mem_budget: 0,
                });
            }
        }
    }

    // Out-of-core scale sweep: join/group-by/sort at rising row counts
    // under an operator-memory budget. The 1M and 10M tiers also run
    // unlimited (the in-memory reference the budget run must match); the
    // 100M tier exceeds the default 1 GiB budget several times over, so
    // completing it at all proves the spill paths carry the load.
    let budget = mem_budget.unwrap_or(1 << 30);
    for &(n, verify) in &[
        (1_000_000usize, true),
        (10_000_000, true),
        (100_000_000, false),
    ] {
        if verify {
            let bad = sweep_tier(n, 0, false, &mut records);
            assert!(bad.is_empty(), "unbounded sweep violations: {bad:?}");
        }
        let bad = sweep_tier(n, budget, verify, &mut records);
        assert!(bad.is_empty(), "scale sweep violations: {bad:?}");
    }

    // Hand-rolled JSON: the workspace deliberately carries no serde.
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"rows\": {}, \"mode\": \"{}\", \"threads\": {}, \"ns_per_op\": {}, \"out_rows\": {}, \"bytes_scanned\": {}, \"bytes_read\": {}, \"bytes_pruned\": {}, \"cache_hits\": {}, \"bytes_saved\": {}, \"bytes_spilled\": {}, \"spill_partitions\": {}, \"mem_budget\": {}}}{}\n",
            r.op, r.rows, r.mode, threads, r.ns_per_op, r.out_rows, r.bytes_scanned, r.bytes_read, r.bytes_pruned, r.cache_hits, r.bytes_saved, r.bytes_spilled, r.spill_partitions, r.mem_budget, sep
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");

    println!("\nthreads: {threads}");
    let ratio = |op: &str, fast: &str, slow: &str| -> f64 {
        let f = records
            .iter()
            .find(|r| r.op == op && r.mode == fast)
            .expect("fast record");
        let s = records
            .iter()
            .find(|r| r.op == op && r.mode == slow)
            .expect("slow record");
        s.ns_per_op as f64 / f.ns_per_op as f64
    };
    for op in [
        "filter_1m",
        "group_by_1m_50groups",
        "hash_join_1m_x_1m",
        "sort_1m",
    ] {
        println!("{op:<28} speedup {:>5.2}x", ratio(op, "parallel", "serial"));
    }
    for op in [
        "filter_1m_str_eq",
        "group_by_1m_str_keys",
        "hash_join_1m_str",
        "sort_1m_str",
    ] {
        println!(
            "{op:<28} dict vs plain {:>5.2}x",
            ratio(op, "dict", "plain")
        );
    }
    for (op, _) in &pruning_ops {
        let r = records
            .iter()
            .find(|r| r.op == op.as_str() && r.mode == "pruned")
            .expect("pruned record");
        println!(
            "{op:<28} pruning speedup {:>5.2}x  ({} of {} bytes pruned)",
            ratio(op, "pruned", "unpruned"),
            r.bytes_pruned,
            r.bytes_pruned + r.bytes_scanned,
        );
    }
    for op in ["exec_star_3join", "exec_wide_projection"] {
        let bytes = |mode: &str| {
            records
                .iter()
                .find(|r| r.op == op && r.mode == mode)
                .expect("optimizer record")
                .bytes_scanned
        };
        println!(
            "{op:<28} optimizer speedup {:>5.2}x wall, {:.2}x bytes",
            ratio(op, "optimized", "as_written"),
            bytes("as_written") as f64 / (bytes("optimized").max(1)) as f64,
        );
    }
    for r in records.iter().filter(|r| r.mode == "budget") {
        match records
            .iter()
            .find(|u| u.op == r.op && u.rows == r.rows && u.mode == "unbounded")
        {
            Some(u) => println!(
                "{:<28} {:>4}M rows: spill overhead {:>5.2}x  ({} bytes spilled / {} partitions)",
                r.op,
                r.rows / 1_000_000,
                r.ns_per_op as f64 / u.ns_per_op.max(1) as f64,
                r.bytes_spilled,
                r.spill_partitions
            ),
            None => println!(
                "{:<28} {:>4}M rows: completed under {}-byte budget  ({} bytes spilled / {} partitions)",
                r.op,
                r.rows / 1_000_000,
                r.mem_budget,
                r.bytes_spilled,
                r.spill_partitions
            ),
        }
    }
    println!("wrote BENCH_engine.json");
}
