//! Morsel-parallel kernel speedups on analytics-scale inputs, emitted as
//! machine-readable JSON (`BENCH_engine.json`).
//!
//! Each kernel runs at 1M rows through the dispatching entry point
//! (morsel path on a default build) and through its single-threaded
//! `*_serial` reference; the reported time is the minimum of three
//! repeats. The morsel kernels win even on one core because their inner
//! loops are cheaper — dictionary-coded group keys, borrowed join keys,
//! and decorate-sort instead of per-comparison value extraction.

use std::time::Instant;

use dc_engine::ops::{
    filter, filter_serial, group_by, group_by_serial, join, join_serial, sort_by, sort_by_serial,
    AggFunc, AggSpec, JoinType, SortKey,
};
use dc_engine::{parallel, Column, Expr, Table};

const ROWS: usize = 1_000_000;
const REPEATS: usize = 3;

fn events(n: usize) -> Table {
    Table::new(vec![
        ("id", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 50)).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds")
}

/// Minimum wall-clock nanoseconds per run over [`REPEATS`] runs.
fn min_ns(mut f: impl FnMut() -> Table) -> (u128, usize) {
    let mut best = u128::MAX;
    let mut out_rows = 0;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let t = f();
        best = best.min(start.elapsed().as_nanos());
        out_rows = t.num_rows();
    }
    (best, out_rows)
}

struct Record {
    op: &'static str,
    rows: usize,
    mode: &'static str,
    ns_per_op: u128,
    out_rows: usize,
}

fn main() {
    let t = events(ROWS);
    let threads = parallel::num_threads();
    let mut records: Vec<Record> = Vec::new();
    let mut push = |op: &'static str, mode: &'static str, (ns, out_rows): (u128, usize)| {
        let pretty_ms = ns as f64 / 1e6;
        println!("{op:<28} {mode:<8} {pretty_ms:>10.2} ms  ({out_rows} rows out)");
        records.push(Record {
            op,
            rows: ROWS,
            mode,
            ns_per_op: ns,
            out_rows,
        });
    };

    let pred = Expr::col("v").gt(Expr::lit(500.0));
    push(
        "filter_1m",
        "parallel",
        min_ns(|| filter(&t, &pred).expect("filters")),
    );
    push(
        "filter_1m",
        "serial",
        min_ns(|| filter_serial(&t, &pred).expect("filters")),
    );

    let aggs = [
        AggSpec::new(AggFunc::Sum, "v", "s"),
        AggSpec::new(AggFunc::Avg, "v", "a"),
        AggSpec::count_records("n"),
    ];
    push(
        "group_by_1m_50groups",
        "parallel",
        min_ns(|| group_by(&t, &["k"], &aggs).expect("groups")),
    );
    push(
        "group_by_1m_50groups",
        "serial",
        min_ns(|| group_by_serial(&t, &["k"], &aggs).expect("groups")),
    );

    push(
        "hash_join_1m_x_1m",
        "parallel",
        min_ns(|| join(&t, &t, &["id"], &["id"], JoinType::Inner).expect("joins")),
    );
    push(
        "hash_join_1m_x_1m",
        "serial",
        min_ns(|| join_serial(&t, &t, &["id"], &["id"], JoinType::Inner).expect("joins")),
    );

    let keys = [SortKey::desc("v"), SortKey::asc("id")];
    push(
        "sort_1m",
        "parallel",
        min_ns(|| sort_by(&t, &keys).expect("sorts")),
    );
    push(
        "sort_1m",
        "serial",
        min_ns(|| sort_by_serial(&t, &keys).expect("sorts")),
    );

    // Hand-rolled JSON: the workspace deliberately carries no serde.
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"rows\": {}, \"mode\": \"{}\", \"threads\": {}, \"ns_per_op\": {}, \"out_rows\": {}}}{}\n",
            r.op, r.rows, r.mode, threads, r.ns_per_op, r.out_rows, sep
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");

    println!("\nthreads: {threads}");
    for op in [
        "filter_1m",
        "group_by_1m_50groups",
        "hash_join_1m_x_1m",
        "sort_1m",
    ] {
        let par = records
            .iter()
            .find(|r| r.op == op && r.mode == "parallel")
            .expect("parallel record");
        let ser = records
            .iter()
            .find(|r| r.op == op && r.mode == "serial")
            .expect("serial record");
        let speedup = ser.ns_per_op as f64 / par.ns_per_op as f64;
        println!("{op:<28} speedup {speedup:>5.2}x");
    }
    println!("wrote BENCH_engine.json");
}
