//! Regenerates **Figure 7**: the dev-split distribution over
//! misalignment (M) and degree of composition (C), with the paper's zone
//! counts — (low, low) 638, (high, low) 127, (low, high) 246,
//! (high, high) 29 — and thresholds M = 0.4, C = 30. Renders the scatter
//! as an ASCII density plot.

use dc_nl::metrics::{Zone, C_THRESHOLD, M_THRESHOLD};
use dc_spider::{dev_split, zone_histogram};

fn main() {
    let dev = dev_split(42);
    println!("Figure 7: dev split characterized by misalignment (M) and composition (C)");
    println!(
        "samples = {}, thresholds M = {M_THRESHOLD}, C = {C_THRESHOLD}\n",
        dev.len()
    );

    // ASCII density plot: x = M in [0, 1], y = C in [0, 80].
    const W: usize = 60;
    const H: usize = 20;
    let c_max = 80.0;
    let mut grid = vec![vec![0usize; W]; H];
    for s in &dev {
        let x = ((s.misalignment / 1.0) * (W - 1) as f64).round() as usize;
        let y = ((s.composition / c_max).min(1.0) * (H - 1) as f64).round() as usize;
        grid[H - 1 - y][x.min(W - 1)] += 1;
    }
    let glyph = |n: usize| match n {
        0 => ' ',
        1 => '.',
        2..=4 => 'o',
        5..=9 => 'O',
        _ => '#',
    };
    let c_line = H - 1 - ((C_THRESHOLD / c_max) * (H - 1) as f64).round() as usize;
    let m_col = (M_THRESHOLD * (W - 1) as f64).round() as usize;
    println!("C");
    for (r, row) in grid.iter().enumerate() {
        let mut line = String::with_capacity(W);
        for (c, &n) in row.iter().enumerate() {
            if c == m_col {
                line.push(if n > 0 { glyph(n) } else { '|' });
            } else {
                line.push(glyph(n));
            }
        }
        if r == c_line {
            let dashed: String = line
                .chars()
                .map(|ch| if ch == ' ' { '-' } else { ch })
                .collect();
            println!("{dashed}  <- C = {C_THRESHOLD}");
        } else {
            println!("{line}");
        }
    }
    println!(
        "{}^ M = {M_THRESHOLD}{}M ->",
        " ".repeat(m_col),
        " ".repeat(W.saturating_sub(m_col + 12))
    );

    println!("\nzone counts (paper in parentheses):");
    let paper = [
        (Zone::LowLow, 638),
        (Zone::HighLow, 127),
        (Zone::LowHigh, 246),
        (Zone::HighHigh, 29),
    ];
    for (zone, n) in zone_histogram(&dev) {
        let expected = paper.iter().find(|(z, _)| *z == zone).expect("zone").1;
        println!("  {:<14} {:>5}  ({expected})", zone.label(), n);
        assert_eq!(n, expected, "zone counts must match Figure 7");
    }
    println!("\nlong-tail check: most samples are (low, low), (high, high) is rare: OK");
}
