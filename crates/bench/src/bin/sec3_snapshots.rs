//! Regenerates the **§3 snapshots** experiment: iterating on a recipe
//! against a snapshot in the fixed-cost local store vs re-running the
//! pipeline against the consumption-priced cloud database. "Using a
//! snapshot for this type of iterative work provides significant savings
//! as the larger data pipeline does not need to be rerun to verify
//! incremental progress."

use dc_engine::ops::{filter, group_by, AggSpec};
use dc_engine::{AggFunc, Expr};
use dc_storage::{demo, CloudDatabase, Pricing, ScanOptions, SnapshotStore};

fn main() {
    let rows = 500_000usize;
    let iot = demo::iot_readings(rows, 9);
    let mut cloud = CloudDatabase::new(
        "cloud",
        Pricing::PerTbScanned {
            dollars_per_tb: 5_000.0,
        },
    );
    cloud.create_table("iot_readings", &iot).expect("create");
    let mut local = SnapshotStore::new();

    // The "expensive pipeline": scan + clean. Developing the downstream
    // recipe takes k iterations of trial and error.
    let iterations = 12;
    let develop_step = |t: &dc_engine::Table, i: usize| {
        let cleaned = filter(
            t,
            &Expr::col("temperature")
                .is_not_null()
                .and(Expr::col("temperature").gt(Expr::lit(i as i64 % 10))),
        )
        .expect("filter");
        group_by(
            &cleaned,
            &["status"],
            &[AggSpec::new(AggFunc::Avg, "temperature", "AvgTemp")],
        )
        .expect("group")
    };

    println!("Section 3: developing a recipe over {iterations} iterations\n");

    // Strategy A: hit the cloud every iteration.
    let mut cumulative_cloud = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let (t, _) = cloud
            .scan("iot_readings", &ScanOptions::full())
            .expect("scan");
        let _ = develop_step(&t, i);
        cumulative_cloud.push(cloud.meter().dollars());
    }
    let cloud_total = cloud.meter().dollars();

    // Strategy B: snapshot once (one metered scan, optionally sampled),
    // then iterate locally at zero marginal cost.
    cloud.meter().reset();
    let (snap_data, _) = cloud
        .scan("iot_readings", &ScanOptions::block_sampled(0.10, 3))
        .expect("scan");
    local
        .create(
            "iot_snapshot",
            snap_data,
            "cloud.iot_readings",
            vec![
                "Use the dataset iot_readings".into(),
                "Sample 10% of the rows".into(),
                "Snapshot this as iot_snapshot".into(),
            ],
            Some(0.10),
        )
        .expect("snapshot");
    let snapshot_cost = cloud.meter().dollars();
    let mut cumulative_snap = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let t = local.read("iot_snapshot").expect("read").clone();
        let _ = develop_step(&t, i);
        cumulative_snap.push(snapshot_cost + local.meter().dollars());
    }
    let snap_total = snapshot_cost + local.meter().dollars();

    println!(
        "{:>5} {:>18} {:>22}",
        "iter", "cloud-only ($)", "snapshot+local ($)"
    );
    for i in 0..iterations {
        println!(
            "{:>5} {:>18.4} {:>22.4}",
            i + 1,
            cumulative_cloud[i],
            cumulative_snap[i]
        );
    }
    println!(
        "\ntotals: cloud-only {cloud_total:.4}, snapshot {snap_total:.4} (plus fixed {:.2}/month local instance)",
        local.monthly_cost()
    );
    println!(
        "marginal savings: {:.0}x",
        cloud_total / snap_total.max(1e-12)
    );
    assert!(
        snap_total * 10.0 < cloud_total,
        "iterating on the snapshot must be far cheaper"
    );
    // The snapshot is an artifact with a recipe, so it can be refreshed.
    let snap = local.get("iot_snapshot").expect("get");
    assert_eq!(snap.recipe.len(), 3);
    println!(
        "snapshot carries its recipe ({} steps) and refreshes on demand: OK",
        snap.recipe.len()
    );
}
