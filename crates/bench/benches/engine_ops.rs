//! Criterion bench for the engine's core kernels — the substrate every
//! skill bottoms out in. Not a paper figure; a regression guard for the
//! operators whose cost the §2/§3 experiments depend on.
//!
//! Each kernel is measured twice: the dispatching entry point (morsel
//! path on a default build) against its `*_serial` reference, so the
//! morsel kernels' advantage is visible side by side.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_engine::ops::{
    filter, filter_serial, group_by, group_by_serial, join, join_serial, sort_by, sort_by_serial,
    AggFunc, AggSpec, JoinType, SortKey,
};
use dc_engine::{Column, Expr, Table};

fn events(n: usize) -> Table {
    Table::new(vec![
        ("id", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 50)).collect::<Vec<_>>()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| (i % 997) as f64).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds")
}

fn bench_engine(c: &mut Criterion) {
    let t = events(200_000);
    let small = events(20_000);

    let mut group = c.benchmark_group("engine_ops");
    group.sample_size(10);
    let pred = Expr::col("v").gt(Expr::lit(500.0));
    group.bench_function("filter_200k", |b| {
        b.iter(|| filter(&t, &pred).expect("filters"))
    });
    group.bench_function("filter_200k_serial", |b| {
        b.iter(|| filter_serial(&t, &pred).expect("filters"))
    });
    let aggs = [
        AggSpec::new(AggFunc::Sum, "v", "s"),
        AggSpec::count_records("n"),
    ];
    group.bench_function("group_by_200k_50groups", |b| {
        b.iter(|| group_by(&t, &["k"], &aggs).expect("groups"))
    });
    group.bench_function("group_by_200k_50groups_serial", |b| {
        b.iter(|| group_by_serial(&t, &["k"], &aggs).expect("groups"))
    });
    let sort_keys = [SortKey::desc("v"), SortKey::asc("id")];
    group.bench_function("sort_200k", |b| {
        b.iter(|| sort_by(&t, &sort_keys).expect("sorts"))
    });
    group.bench_function("sort_200k_serial", |b| {
        b.iter(|| sort_by_serial(&t, &sort_keys).expect("sorts"))
    });
    group.bench_function("hash_join_20k_x_20k", |b| {
        b.iter(|| join(&small, &small, &["id"], &["id"], JoinType::Inner).expect("joins"))
    });
    group.bench_function("hash_join_20k_x_20k_serial", |b| {
        b.iter(|| join_serial(&small, &small, &["id"], &["id"], JoinType::Inner).expect("joins"))
    });
    group.bench_function("csv_roundtrip_20k", |b| {
        b.iter(|| {
            let text = dc_engine::csv::write_csv(&small);
            dc_engine::csv::read_csv(&text).expect("parses")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
