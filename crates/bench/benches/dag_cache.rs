//! Criterion bench for §2.2's caching layer: re-requesting results over a
//! shared skill sub-DAG with the executor cache on (warm) vs a fresh
//! executor each time (cold). Ablations: caching on/off, morsel kernels
//! on/off (`set_min_parallel_rows`), and the pure-pointer-copy cost of a
//! fully warm `table_of`.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_engine::parallel::set_min_parallel_rows;
use dc_engine::{AggSpec, Column, Expr, Table};
use dc_skills::{Env, Executor, SkillCall, SkillDag};
use dc_storage::{CloudDatabase, Pricing};

fn setup() -> (Env, SkillDag, dc_skills::NodeId, dc_skills::NodeId) {
    let mut env = Env::new();
    let n = 100_000usize;
    let t = Table::new(vec![
        ("x", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 20)).collect::<Vec<_>>()),
        ),
    ])
    .expect("table builds");
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    db.create_table("events", &t).expect("create");
    env.catalog.add_database(db).expect("add db");

    let mut dag = SkillDag::new();
    let load = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "events".into(),
            },
            vec![],
        )
        .expect("load");
    let shared = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").gt(Expr::lit(1000i64)),
            },
            vec![load],
        )
        .expect("filter");
    let a = dag
        .add(
            SkillCall::Compute {
                aggs: vec![AggSpec::count_records("n")],
                for_each: vec!["k".into()],
            },
            vec![shared],
        )
        .expect("agg");
    let b = dag
        .add(SkillCall::Limit { n: 10 }, vec![shared])
        .expect("limit");
    (env, dag, a, b)
}

fn bench_dag_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_cache");
    group.sample_size(10);

    group.bench_function("cold_no_cache", |bch| {
        let (mut env, dag, a, b) = setup();
        bch.iter(|| {
            // A fresh executor per request: nothing shared.
            let mut ex = Executor::new();
            ex.run(&dag, a, &mut env).expect("run a");
            let mut ex = Executor::new();
            ex.run(&dag, b, &mut env).expect("run b")
        })
    });

    group.bench_function("cold_no_cache_serial_kernels", |bch| {
        let (mut env, dag, a, b) = setup();
        // Force every engine kernel down the single-threaded path so the
        // cold cost of the morsel kernels above is interpretable.
        let prev = set_min_parallel_rows(usize::MAX);
        bch.iter(|| {
            let mut ex = Executor::new();
            ex.run(&dag, a, &mut env).expect("run a");
            let mut ex = Executor::new();
            ex.run(&dag, b, &mut env).expect("run b")
        });
        set_min_parallel_rows(prev);
    });

    group.bench_function("warm_shared_subdag", |bch| {
        let (mut env, dag, a, b) = setup();
        let mut ex = Executor::new();
        ex.run(&dag, a, &mut env).expect("prime");
        bch.iter(|| {
            // The load+filter sub-DAG is shared; only the tails differ.
            ex.run(&dag, a, &mut env).expect("run a");
            ex.run(&dag, b, &mut env).expect("run b")
        })
    });

    group.bench_function("warm_cache_hit_table_of", |bch| {
        let (mut env, dag, a, _) = setup();
        let mut ex = Executor::new();
        ex.run(&dag, a, &mut env).expect("prime");
        bch.iter(|| {
            // Fully warm: the result table comes back as a shared Arc
            // handle — a pointer copy, not a deep clone of the table.
            ex.table_of(&dag, a, &mut env).expect("hit")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dag_cache);
criterion_main!(benches);
