//! Criterion bench for §3: block-level sampling scan time vs full scans
//! and row-level sampling. Wall-clock here tracks bytes touched, the
//! same quantity the dollar meter charges for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_storage::{demo, CloudDatabase, Pricing, ScanOptions};

fn bench_sampling(c: &mut Criterion) {
    let iot = demo::iot_readings(500_000, 11);
    let mut db = CloudDatabase::new("cloud", Pricing::default_cloud());
    db.create_table("iot", &iot).expect("create");

    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.bench_function("full_scan", |b| {
        b.iter(|| db.scan("iot", &ScanOptions::full()).expect("scan"))
    });
    for rate in [0.10, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("block_sample", format!("{}pct", (rate * 100.0) as u32)),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    db.scan("iot", &ScanOptions::block_sampled(rate, 7))
                        .expect("scan")
                })
            },
        );
    }
    // Ablation: row-level sampling reads everything.
    group.bench_function("row_sample_10pct", |b| {
        b.iter(|| {
            db.scan("iot", &ScanOptions::row_sampled(0.10, 7))
                .expect("scan")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
