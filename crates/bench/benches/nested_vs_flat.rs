//! Criterion bench for the §2.2 claim: a deep nested projection query
//! "will incur significant performance costs compared to its flattened
//! equivalent". Ablation: flattening on vs off in the DAG→SQL generator.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_engine::{Column, Table};
use dc_sql::{execute, generate_sql, ExecStats, QueryStep};

fn provider(rows: usize) -> HashMap<String, Table> {
    let mut m = HashMap::new();
    m.insert(
        "base_table".to_string(),
        Table::new(vec![
            ("a", Column::from_ints((0..rows as i64).collect())),
            (
                "b",
                Column::from_ints((0..rows as i64).map(|v| v * 2).collect()),
            ),
            (
                "c",
                Column::from_ints((0..rows as i64).map(|v| v * 3).collect()),
            ),
        ])
        .expect("table builds"),
    );
    m
}

fn steps(depth: usize) -> Vec<QueryStep> {
    let cols = ["a", "b", "c"];
    let mut out = vec![QueryStep::Scan {
        table: "base_table".into(),
    }];
    for i in 0..depth {
        let width = (cols.len() - (i * 2) / depth.max(1)).max(1);
        out.push(QueryStep::SelectColumns {
            columns: cols[..width].iter().map(|s| s.to_string()).collect(),
        });
    }
    out
}

fn bench_nested_vs_flat(c: &mut Criterion) {
    let prov = provider(100_000);
    let mut group = c.benchmark_group("nested_vs_flat");
    group.sample_size(10);
    for depth in [4usize, 16] {
        let nested = generate_sql(&steps(depth), false).expect("nested sql");
        let flat = generate_sql(&steps(depth), true).expect("flat sql");
        group.bench_with_input(BenchmarkId::new("nested", depth), &nested, |b, q| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                execute(q, &prov, &mut stats).expect("runs")
            })
        });
        group.bench_with_input(BenchmarkId::new("flattened", depth), &flat, |b, q| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                execute(q, &prov, &mut stats).expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nested_vs_flat);
criterion_main!(benches);
