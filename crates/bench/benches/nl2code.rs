//! Criterion bench for the NL2Code pipeline (§4): end-to-end generation
//! latency, plus the context-quality ablation — §4.2/§4.3 claim output
//! quality depends on the semantic layer and retrieved examples, so the
//! ablation measures accuracy with each disabled (reported by the
//! `nl2code_ablation` numbers printed once at startup) and benches the
//! pipeline stages.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_nl::{ExampleLibrary, Nl2Code, PromptComposer, SemanticLayer, SimulatedLlm};
use dc_spider::domains::pool_semantics;
use dc_spider::{evaluate, spider_example_library, t_spider};

fn system(use_examples: bool, use_semantics: bool) -> Nl2Code {
    Nl2Code {
        semantics: if use_semantics {
            pool_semantics(&dc_spider::spider_domains())
        } else {
            SemanticLayer::new()
        },
        library: if use_examples {
            spider_example_library(1)
        } else {
            ExampleLibrary::new()
        },
        composer: PromptComposer {
            use_examples,
            use_semantics,
            ..PromptComposer::default()
        },
        model: Box::new(SimulatedLlm::new(1)),
    }
}

/// Accuracy ablation, printed once (criterion measures time; the quality
/// deltas are the §4.2/§4.3 reproduction target).
fn print_ablation() {
    let samples: Vec<_> = t_spider(21).into_iter().take(40).collect();
    println!(
        "\nnl2code_ablation (mean EA over {} samples):",
        samples.len()
    );
    for (label, sys) in [
        ("full prompt            ", system(true, true)),
        ("no examples            ", system(false, true)),
        ("no semantic layer      ", system(true, false)),
        ("bare prompt            ", system(false, false)),
    ] {
        let rows = evaluate(&samples, &sys, 60);
        let total: usize = rows.iter().map(|r| r.samples).sum();
        let ok: f64 = rows.iter().map(|r| r.mean_ea * r.samples as f64).sum();
        println!("  {label} EA = {:.2}", ok / total.max(1) as f64);
    }
    println!();
}

fn bench_nl2code(c: &mut Criterion) {
    print_ablation();
    let sys = system(true, true);
    let samples = t_spider(33);
    let easy = &samples[0];
    let hard = samples
        .iter()
        .find(|s| s.zone == dc_nl::metrics::Zone::HighHigh)
        .expect("stratified set has all zones");

    let mut group = c.benchmark_group("nl2code");
    group.sample_size(20);
    group.bench_function("generate_shallow", |b| {
        b.iter(|| {
            sys.generate(&easy.question, &easy.schema)
                .expect("generates")
        })
    });
    group.bench_function("generate_deep", |b| {
        b.iter(|| {
            sys.generate(&hard.question, &hard.schema)
                .expect("generates")
        })
    });
    group.bench_function("prompt_compose_only", |b| {
        b.iter(|| {
            sys.composer
                .compose(&easy.question, &easy.schema, &sys.semantics, &sys.library)
        })
    });
    group.bench_function("checker_only", |b| {
        b.iter(|| dc_nl::check(&hard.gold_program, &hard.schema).expect("checks"))
    });
    group.finish();
}

criterion_group!(benches, bench_nl2code);
criterion_main!(benches);
