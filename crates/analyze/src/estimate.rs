//! Pass 4: static cost & cardinality estimation (the DC03xx family).
//!
//! Propagates **row-count intervals** and **scan-byte bounds** through
//! the whole planned DAG, priced with the same per-block `ColumnStats`
//! the storage scan prunes by. The pass mirrors the executor's plan
//! exactly: predicate pushdown is applied first (so a filter directly
//! above a load is priced as the fused `LoadTableFiltered` scan the
//! executor actually runs), block verdicts come from the same tri-state
//! evaluator `BlockTable::scan_with` consults, and totals are deduped by
//! the executor's own structural sub-DAG ids (a repeated sub-DAG runs —
//! and charges — once).
//!
//! ## Soundness contract
//!
//! Estimates are two-sided intervals with a *directional* guarantee,
//! mirroring the schema pass ("anything modeled is checked exactly the
//! way the interpreter does it; anything data-dependent degrades"):
//!
//! * `rows_hi` / `bytes_hi` are **upper bounds**: cold-cache, non-faulty
//!   execution never produces more rows or charges more scan bytes than
//!   estimated. Data-dependent cardinalities (joins, `RunSql`, `Pivot`
//!   headers) degrade *up* — to the cross-product, or to "unknown".
//! * `rows_lo` / `bytes_lo` are **guaranteed lower bounds** under the
//!   same cold-cache assumption: a warm materialized cache (or a
//!   degraded fault-injected scan) can only reduce the actual cost, so
//!   the DC0301 budget lint — which fires on the lower bound — is
//!   phrased as "executing this against storage must exhaust the
//!   budget", never the other way around.
//!
//! Retried scans under fault injection charge per attempt and can exceed
//! `bytes_hi`; the serve layer's budget settlement absorbs that overdraft
//! (see DESIGN.md §12 for the full degradation table).

use std::collections::{BTreeSet, HashMap};

use dc_engine::expr::prune::{nnf, prune_predicate, Tri};
use dc_engine::{ColumnStats, DataType, Expr, Schema, Value};
use dc_skills::{plan_pushdown, structural_ids, NodeId, SkillCall, SkillDag};

use crate::context::{AnalysisContext, TableStats};
use crate::diag::{Code, Diagnostic, Fix, Span};

/// DC0302 fires when a join's *guaranteed* output cardinality is at
/// least this many times both inputs' upper bounds.
pub const EXPLOSIVE_JOIN_FACTOR: u64 = 4;

/// Statically derived bounds for one node of the planned DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEstimate {
    pub node: NodeId,
    /// Guaranteed minimum output rows (cold cache, no faults).
    pub rows_lo: u64,
    /// Maximum possible output rows; `None` = statically unknown
    /// (data-dependent, e.g. `RunSql`).
    pub rows_hi: Option<u64>,
    /// Guaranteed scan bytes this node charges the §3 meter when it
    /// executes against storage (zero for pure transforms).
    pub bytes_lo: u64,
    /// Upper bound on the node's scan charge.
    pub bytes_hi: u64,
    /// Heuristic output footprint in bytes (drives DC0303); `None` when
    /// rows or schema are unknown.
    pub out_bytes: Option<u64>,
    /// Guaranteed lower bound (under the width model) on the transient
    /// state this operator must hold resident: the build side of a
    /// join, the full input of a sort, the input a group-by's
    /// admission check reserves against. Zero for streaming operators.
    /// Against a memory-governor budget this is the "will spill"
    /// signal — if it exceeds the budget, the governor is certain to
    /// deny the reservation and the operator runs out of core.
    pub state_bytes_lo: u64,
}

/// The whole-DAG estimate: per-node bounds plus structurally deduped
/// pipeline totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagEstimates {
    /// Estimates for every node reachable from the analysis targets, in
    /// topological (id) order.
    pub nodes: Vec<NodeEstimate>,
    /// Guaranteed pipeline scan bytes, with each structural sub-DAG
    /// priced once (the executor's cache runs duplicates once).
    pub scan_bytes_lo: u64,
    /// Upper bound on pipeline scan bytes, deduped the same way.
    pub scan_bytes_hi: u64,
}

impl DagEstimates {
    /// The estimate for one node, if it was reachable.
    pub fn get(&self, node: NodeId) -> Option<&NodeEstimate> {
        self.nodes.iter().find(|e| e.node == node)
    }

    /// Nodes whose guaranteed-lower-bound operator state exceeds
    /// `budget` bytes — the ones a memory governor with that budget is
    /// certain to push out of core.
    pub fn spilling_nodes(&self, budget: u64) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|e| e.state_bytes_lo > budget)
            .map(|e| e.node)
            .collect()
    }
}

/// Rows interval carried during propagation.
#[derive(Debug, Clone, Copy)]
struct RowBounds {
    lo: u64,
    hi: Option<u64>,
}

impl RowBounds {
    fn exact(n: u64) -> RowBounds {
        RowBounds { lo: n, hi: Some(n) }
    }
    fn unknown() -> RowBounds {
        RowBounds { lo: 0, hi: None }
    }
    /// `[0, input_hi]` — a filter-shaped op with unknown selectivity.
    fn filtered(self) -> RowBounds {
        RowBounds { lo: 0, hi: self.hi }
    }
    fn capped(self, n: u64) -> RowBounds {
        RowBounds {
            lo: self.lo.min(n),
            hi: Some(self.hi.map_or(n, |h| h.min(n))),
        }
    }
}

/// What a catalog scan will read and return, derived from per-block
/// statistics with the same verdicts `BlockTable::scan_with` computes.
#[derive(Debug, Clone, Copy)]
struct ScanEstimate {
    /// Bytes the scan charges. Exact when block detail is available
    /// (pruning decisions are deterministic functions of stored stats):
    /// `lo == hi`. Without detail, a filtered scan is `[0, full]`.
    bytes_lo: u64,
    bytes_hi: u64,
    rows: RowBounds,
}

/// Price one catalog scan. Replicates `scan_with` exactly: a predicate
/// naming any column absent from the schema is ignored wholesale; empty
/// blocks count as pruned under a predicate; the columns actually read
/// are the projection (all, when absent) plus every predicate column,
/// and each read column's shared dictionary is paid once if any block
/// is read.
fn scan_estimate(
    schema: &Schema,
    stats: &TableStats,
    predicate: Option<&Expr>,
    projection: Option<&[String]>,
) -> ScanEstimate {
    let predicate = predicate.filter(|p| {
        let mut cols = Vec::new();
        p.referenced_columns(&mut cols);
        cols.iter().all(|c| schema.index_of(c).is_some())
    });
    let detail = !stats.block_stats.is_empty() && stats.block_stats.len() == stats.blocks && {
        let cols = schema.fields().len();
        stats
            .block_stats
            .iter()
            .all(|b| b.columns.len() == cols && b.data_bytes.len() == cols)
    };
    // `None` = the scan reads every column (the pre-projection charge).
    let read_cols: Option<Vec<usize>> = projection.map(|cols| {
        let mut read: Vec<usize> = cols.iter().filter_map(|c| schema.index_of(c)).collect();
        if let Some(p) = predicate {
            let mut pred_cols = Vec::new();
            p.referenced_columns(&mut pred_cols);
            for c in &pred_cols {
                if let Some(i) = schema.index_of(c) {
                    if !read.contains(&i) {
                        read.push(i);
                    }
                }
            }
        }
        read
    });
    match (&read_cols, predicate) {
        // No projection, no (usable) predicate: the scan reads
        // everything and filters nothing — exact on whole-table
        // counters alone.
        (None, None) => ScanEstimate {
            bytes_lo: stats.bytes,
            bytes_hi: stats.bytes,
            rows: RowBounds::exact(stats.rows as u64),
        },
        (read, p) if detail => {
            let block_bytes = |bytes: &[u64]| -> u64 {
                match read {
                    Some(cols) => cols.iter().map(|&ci| bytes[ci]).sum(),
                    None => bytes.iter().sum(),
                }
            };
            let mut bytes = 0u64;
            let mut scanned = 0usize;
            let mut rows_lo = 0u64;
            let mut rows_hi = 0u64;
            for block in &stats.block_stats {
                let verdict = match p {
                    None => Tri::AllTrue,
                    Some(_) if block.rows == 0 => Tri::AllFalse,
                    Some(p) => {
                        let lookup =
                            |name: &str| schema.index_of(name).map(|ci| block.columns[ci].clone());
                        prune_predicate(p, &lookup)
                    }
                };
                match verdict {
                    Tri::AllFalse => {}
                    Tri::AllTrue => {
                        scanned += 1;
                        bytes += block_bytes(&block.data_bytes);
                        rows_lo += block.rows;
                        rows_hi += block.rows;
                    }
                    Tri::Unknown => {
                        scanned += 1;
                        bytes += block_bytes(&block.data_bytes);
                        rows_hi += block.rows;
                    }
                }
            }
            if scanned > 0 {
                bytes += match read {
                    Some(cols) => cols
                        .iter()
                        .map(|&ci| stats.dict_bytes.get(ci).copied().unwrap_or(0))
                        .sum(),
                    None => stats.dict_bytes.iter().sum::<u64>(),
                };
            }
            ScanEstimate {
                bytes_lo: bytes,
                bytes_hi: bytes,
                rows: RowBounds {
                    lo: rows_lo,
                    hi: Some(rows_hi),
                },
            }
        }
        // Projection and/or predicate but no block detail (builder-made
        // context): degrade bytes to the conservative two-sided bound.
        // A pure projection still returns every row.
        (_, p) => ScanEstimate {
            bytes_lo: 0,
            bytes_hi: stats.bytes,
            rows: if p.is_none() {
                RowBounds::exact(stats.rows as u64)
            } else {
                RowBounds {
                    lo: 0,
                    hi: Some(stats.rows as u64),
                }
            },
        },
    }
}

/// Fold per-block stats into one whole-table [`ColumnStats`] for `col`,
/// when block detail is available.
fn table_column_stats(schema: &Schema, stats: &TableStats, col: &str) -> Option<ColumnStats> {
    let ci = schema.index_of(col)?;
    let mut blocks = stats
        .block_stats
        .iter()
        .filter(|b| b.columns.len() > ci && b.rows > 0);
    let first = blocks.next()?.columns[ci].clone();
    let mut folded = first;
    for b in blocks {
        let s = &b.columns[ci];
        folded.null_count += s.null_count;
        folded.row_count += s.row_count;
        folded.min = match (folded.min.take(), s.min.clone()) {
            (Some(a), Some(b)) => Some(
                if a.partial_cmp_sql(&b) == Some(std::cmp::Ordering::Greater) {
                    b
                } else {
                    a
                },
            ),
            _ => None,
        };
        folded.max = match (folded.max.take(), s.max.clone()) {
            (Some(a), Some(b)) => {
                Some(if a.partial_cmp_sql(&b) == Some(std::cmp::Ordering::Less) {
                    b
                } else {
                    a
                })
            }
            _ => None,
        };
    }
    Some(folded)
}

/// Upper bound on the number of distinct values (including a null
/// group) a grouping key can take, from dictionary cardinality or
/// zone-map ranges. `None` = unbounded by statistics.
fn key_cardinality(schema: &Schema, stats: &TableStats, col: &str) -> Option<u64> {
    let null_group = |s: &ColumnStats| u64::from(s.null_count > 0);
    // Dictionary columns: the table-wide dictionary bounds distinct
    // values no matter how the rows were filtered downstream.
    if let Some(&(_, len)) = stats
        .dict_sizes
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(col))
    {
        let nulls = table_column_stats(schema, stats, col).map_or(1, |s| null_group(&s));
        return Some(len as u64 + nulls);
    }
    let s = table_column_stats(schema, stats, col)?;
    match s.dtype {
        DataType::Bool => Some(2 + null_group(&s)),
        DataType::Int | DataType::Date => match (&s.min, &s.max) {
            (Some(Value::Int(lo)), Some(Value::Int(hi))) => {
                Some((hi - lo).unsigned_abs().saturating_add(1) + null_group(&s))
            }
            (Some(Value::Date(lo)), Some(Value::Date(hi))) => Some(
                (i64::from(*hi) - i64::from(*lo))
                    .unsigned_abs()
                    .saturating_add(1)
                    + null_group(&s),
            ),
            _ => None,
        },
        _ => {
            // A provably constant column has exactly one distinct value.
            match (&s.min, &s.max) {
                (Some(a), Some(b)) if a.partial_cmp_sql(b) == Some(std::cmp::Ordering::Equal) => {
                    Some(1 + null_group(&s))
                }
                _ => None,
            }
        }
    }
}

/// Whether `col` provably holds one single non-null value across the
/// whole table (the degenerate join key that turns a join into a cross
/// product), and that value.
fn constant_key(schema: &Schema, stats: &TableStats, col: &str) -> Option<Value> {
    let s = table_column_stats(schema, stats, col)?;
    if s.null_count > 0 {
        return None;
    }
    match (&s.min, &s.max) {
        (Some(a), Some(b)) if a.partial_cmp_sql(b) == Some(std::cmp::Ordering::Equal) => {
            Some(a.clone())
        }
        _ => None,
    }
}

/// Heuristic bytes-per-row of a schema, mirroring `Column::byte_size`'s
/// per-dtype costs (validity bitmap amortized in; strings priced at the
/// 24-byte header plus a nominal 8-byte payload).
fn row_width(schema: &Schema) -> u64 {
    let w: u64 = schema
        .fields()
        .iter()
        .map(|f| match f.dtype {
            DataType::Bool => 2u64,
            DataType::Int | DataType::Float => 9,
            DataType::Date => 5,
            DataType::Str => 32,
        })
        .sum();
    w.max(1)
}

/// The `(schema, stats)` of a load node's table, when known.
fn load_table<'a>(ctx: &'a AnalysisContext, call: &SkillCall) -> Option<&'a (Schema, TableStats)> {
    match call {
        SkillCall::LoadTable { database, table }
        | SkillCall::LoadTableFiltered {
            database, table, ..
        }
        | SkillCall::LoadTableProjected {
            database, table, ..
        } => ctx.table(database, table),
        _ => None,
    }
}

/// The load predicate already fused into a node's scan, if any.
fn load_predicate(call: &SkillCall) -> Option<&Expr> {
    match call {
        SkillCall::LoadTableFiltered { predicate, .. } => Some(predicate),
        SkillCall::LoadTableProjected { predicate, .. } => predicate.as_ref(),
        _ => None,
    }
}

/// The column projection planned into a node's scan, if any.
fn load_projection(call: &SkillCall) -> Option<&[String]> {
    match call {
        SkillCall::LoadTableProjected { columns, .. } => Some(columns),
        _ => None,
    }
}

/// Refine a filter node's row bounds when its input is a catalog scan
/// with block detail: evaluate the filter's keep-condition per block with
/// the same tri-state verdicts the scan uses.
fn filter_over_scan(
    keep: &Expr,
    schema: &Schema,
    stats: &TableStats,
    scan_pred: Option<&Expr>,
) -> Option<RowBounds> {
    if stats.block_stats.is_empty() || stats.block_stats.len() != stats.blocks {
        return None;
    }
    let cols = schema.fields().len();
    if !stats.block_stats.iter().all(|b| b.columns.len() == cols) {
        return None;
    }
    // The scan ignores a predicate naming unknown columns; mirror that.
    let scan_pred = scan_pred.filter(|p| {
        let mut c = Vec::new();
        p.referenced_columns(&mut c);
        c.iter().all(|c| schema.index_of(c).is_some())
    });
    let mut lo = 0u64;
    let mut hi = 0u64;
    for block in &stats.block_stats {
        if block.rows == 0 {
            continue;
        }
        let lookup = |name: &str| schema.index_of(name).map(|ci| block.columns[ci].clone());
        let scan_v = match scan_pred {
            Some(p) => prune_predicate(p, &lookup),
            None => Tri::AllTrue,
        };
        if scan_pred.is_some() && scan_v == Tri::AllFalse {
            continue; // block never reaches the filter
        }
        let filter_v = prune_predicate(keep, &lookup);
        match filter_v {
            Tri::AllFalse => {}
            Tri::AllTrue => {
                hi += block.rows;
                // Every block row reaches the filter only when the scan
                // provably kept them all.
                if scan_v == Tri::AllTrue {
                    lo += block.rows;
                }
            }
            Tri::Unknown => hi += block.rows,
        }
    }
    Some(RowBounds { lo, hi: Some(hi) })
}

/// Run the estimation pass over the planned DAG and emit the DC03xx
/// lints. `schemas` is the schema pass's per-node result (used for the
/// footprint model); `targets` scope reachability (empty = whole DAG).
pub fn estimate_pass(
    dag: &SkillDag,
    targets: &[NodeId],
    ctx: &AnalysisContext,
    schemas: &HashMap<NodeId, Option<Schema>>,
    diags: &mut Vec<Diagnostic>,
) -> DagEstimates {
    // Price the plan the executor actually runs: the cost-based
    // optimizer first (projection pushdown, filter hoisting, join
    // ordering — the context implements the same `PlanStats` interface
    // the executor plans with, so both sides rewrite identically), then
    // predicate pushdown exactly as `run_resilient` will fuse it.
    // Whole-DAG analyses (empty target set) skip the optimizer: without
    // targets every node is observable and nothing may be rewritten.
    let optimized = if targets.is_empty() {
        None
    } else {
        dc_skills::optimize_dag(dag, targets, &[], ctx)
    };
    let dag = optimized.as_ref().unwrap_or(dag);
    let planned = plan_pushdown(dag, targets, &[]);
    let dag = planned.as_ref().unwrap_or(dag);

    // Reachability: union of the targets' ancestor chains (node ids are
    // topological — inputs always precede consumers).
    let reachable: BTreeSet<NodeId> = if targets.is_empty() {
        dag.nodes().iter().map(|n| n.id).collect()
    } else {
        let mut set = BTreeSet::new();
        for &t in targets {
            if let Ok(order) = dag.ancestors(t) {
                set.extend(order);
            }
        }
        set
    };

    let mut rows: HashMap<NodeId, RowBounds> = HashMap::new();
    let mut estimates: Vec<NodeEstimate> = Vec::new();
    for node in dag.nodes() {
        if !reachable.contains(&node.id) {
            continue;
        }
        let input = node.inputs.first().and_then(|i| rows.get(i)).copied();
        let second = node.inputs.get(1).and_then(|i| rows.get(i)).copied();
        let in_rows = input.unwrap_or_else(RowBounds::unknown);
        let other_rows = second.unwrap_or_else(RowBounds::unknown);

        let mut bytes_lo = 0u64;
        let mut bytes_hi = 0u64;
        let mut out_bytes_override: Option<u64> = None;
        let bounds = match &node.call {
            SkillCall::LoadTable { .. }
            | SkillCall::LoadTableFiltered { .. }
            | SkillCall::LoadTableProjected { .. } => match load_table(ctx, &node.call) {
                Some((schema, stats)) => {
                    let est = scan_estimate(
                        schema,
                        stats,
                        load_predicate(&node.call),
                        load_projection(&node.call),
                    );
                    bytes_lo = est.bytes_lo;
                    bytes_hi = est.bytes_hi;
                    // Loads re-emit stored rows: scale the stored
                    // footprint instead of the width model. Projected
                    // loads emit narrower rows — fall through to the
                    // width model over the projected schema instead.
                    if stats.rows > 0 && load_projection(&node.call).is_none() {
                        out_bytes_override = est.rows.hi.map(|h| {
                            (stats.bytes as u128 * u128::from(h) / stats.rows as u128) as u64
                        });
                    }
                    est.rows
                }
                None => RowBounds::unknown(),
            },
            // A bound `UseDataset` re-reads its producer; unbound falls
            // through to the environment (unknown to the analyzer).
            SkillCall::UseDataset { .. } => {
                if node.inputs.is_empty() {
                    RowBounds::unknown()
                } else {
                    in_rows
                }
            }
            SkillCall::UseSnapshot { .. }
            | SkillCall::LoadFile { .. }
            | SkillCall::LoadUrl { .. }
            | SkillCall::RunSql { .. }
            | SkillCall::ListDatasets => RowBounds::unknown(),

            SkillCall::KeepRows { predicate } | SkillCall::DropRows { predicate } => {
                let keep = match &node.call {
                    SkillCall::KeepRows { .. } => predicate.clone(),
                    _ => nnf(predicate.clone().not()),
                };
                let refined = node
                    .inputs
                    .first()
                    .and_then(|&i| dag.node(i).ok())
                    .and_then(|load| {
                        let (schema, stats) = load_table(ctx, &load.call)?;
                        filter_over_scan(&keep, schema, stats, load_predicate(&load.call))
                    });
                refined.unwrap_or_else(|| in_rows.filtered())
            }
            SkillCall::DropMissing { .. } => in_rows.filtered(),

            // Row-preserving transforms.
            SkillCall::KeepColumns { .. }
            | SkillCall::DropColumns { .. }
            | SkillCall::RenameColumn { .. }
            | SkillCall::CreateColumn { .. }
            | SkillCall::CreateConstantColumn { .. }
            | SkillCall::Sort { .. }
            | SkillCall::FillMissing { .. }
            | SkillCall::ReplaceValues { .. }
            | SkillCall::CastColumn { .. }
            | SkillCall::BinColumn { .. }
            | SkillCall::ExtractDatePart { .. }
            | SkillCall::TrimColumn { .. }
            | SkillCall::ShuffleRows { .. }
            | SkillCall::Predict { .. }
            | SkillCall::Cluster { .. } => in_rows,

            SkillCall::Limit { n } | SkillCall::Top { n, .. } => in_rows.capped(*n as u64),
            SkillCall::Sample { .. } => in_rows.filtered(),
            SkillCall::DetectOutliers { .. } => in_rows.filtered(),

            SkillCall::Compute { for_each, .. } => {
                if for_each.is_empty() {
                    // A global aggregate yields exactly one row (zero
                    // only if the aggregation itself fails).
                    RowBounds { lo: 0, hi: Some(1) }
                } else {
                    let card = group_cardinality(dag, ctx, node.inputs.first(), for_each);
                    let hi = match (in_rows.hi, card) {
                        (Some(r), Some(c)) => Some(r.min(c)),
                        (Some(r), None) => Some(r),
                        (None, Some(c)) => Some(c),
                        (None, None) => None,
                    };
                    RowBounds {
                        lo: u64::from(in_rows.lo > 0).min(1),
                        hi,
                    }
                }
            }
            SkillCall::Pivot { index, .. } => {
                let card =
                    group_cardinality(dag, ctx, node.inputs.first(), std::slice::from_ref(index));
                let hi = match (in_rows.hi, card) {
                    (Some(r), Some(c)) => Some(r.min(c)),
                    (Some(r), None) => Some(r),
                    (None, Some(c)) => Some(c),
                    (None, None) => None,
                };
                RowBounds { lo: 0, hi }
            }
            SkillCall::Distinct { columns } => {
                let card = if columns.is_empty() {
                    None
                } else {
                    group_cardinality(dag, ctx, node.inputs.first(), columns)
                };
                let hi = match (in_rows.hi, card) {
                    (Some(r), Some(c)) => Some(r.min(c)),
                    (Some(r), None) => Some(r),
                    (None, Some(c)) => Some(c),
                    (None, None) => None,
                };
                RowBounds {
                    lo: in_rows.lo.min(1),
                    hi,
                }
            }
            SkillCall::Concat {
                remove_duplicates, ..
            } => {
                let lo = in_rows.lo.saturating_add(other_rows.lo);
                RowBounds {
                    lo: if *remove_duplicates { lo.min(1) } else { lo },
                    hi: match (in_rows.hi, other_rows.hi) {
                        (Some(a), Some(b)) => Some(a.saturating_add(b)),
                        _ => None,
                    },
                }
            }
            SkillCall::Join { left_on, how, .. } => {
                let est = join_bounds(dag, ctx, node, in_rows, other_rows, left_on, how);
                // DC0302: the blow-up is *guaranteed* (lower bound ≥ k×
                // both inputs' upper bounds), i.e. an accidental cross
                // join, not a skew possibility.
                if let (Some(lh), Some(rh)) = (in_rows.hi, other_rows.hi) {
                    let k = EXPLOSIVE_JOIN_FACTOR;
                    if est.lo > 0
                        && est.lo >= lh.saturating_mul(k)
                        && est.lo >= rh.saturating_mul(k)
                    {
                        diags.push(
                            Diagnostic::new(
                                Code::ExplosiveJoin,
                                format!(
                                    "join output is guaranteed to reach {} rows — at least \
                                     {k}× both inputs (≤{lh} and ≤{rh} rows); the join keys \
                                     do not discriminate (empty or constant on both sides), \
                                     so this is effectively a cross join",
                                    est.lo
                                ),
                            )
                            .with_span(Span::node(node.id, node.call.name()))
                            .with_fix(Fix::new(
                                "join on a key that actually distinguishes rows, or filter \
                                 both sides before joining",
                            )),
                        );
                    }
                }
                est
            }
            SkillCall::PredictTimeSeries { horizon, .. } => RowBounds {
                lo: in_rows.lo,
                hi: in_rows.hi.map(|h| h.saturating_add(*horizon as u64)),
            },
            SkillCall::TrainModel { .. } => RowBounds::unknown(),

            // Non-transforming skills pass their input through.
            c if !c.transforms_data() => in_rows,
            // Anything else: degrade to fully unknown rather than guess.
            _ => RowBounds::unknown(),
        };

        let out_bytes = out_bytes_override.or_else(|| {
            let schema = schemas.get(&node.id).and_then(|s| s.as_ref())?;
            bounds.hi.map(|h| h.saturating_mul(row_width(schema)))
        });
        // Guaranteed-lower-bound resident state, mirroring the engine's
        // spill admission checks: a sort (or group-by admission) holds
        // its whole input, a hash join holds its build (second) side.
        // Rows are the inputs' guaranteed lower bounds; widths come
        // from the same model as `out_bytes`.
        let input_state = |idx: usize| -> u64 {
            let Some(&id) = node.inputs.get(idx) else {
                return 0;
            };
            let lo = rows.get(&id).map_or(0, |b| b.lo);
            let width = schemas
                .get(&id)
                .and_then(|s| s.as_ref())
                .map_or(0, row_width);
            lo.saturating_mul(width)
        };
        let state_bytes_lo = match &node.call {
            SkillCall::Sort { .. } | SkillCall::Compute { .. } => input_state(0),
            SkillCall::Join { .. } => input_state(1),
            _ => 0,
        };
        rows.insert(node.id, bounds);
        estimates.push(NodeEstimate {
            node: node.id,
            rows_lo: bounds.lo,
            rows_hi: bounds.hi,
            bytes_lo,
            bytes_hi,
            out_bytes,
            state_bytes_lo,
        });
    }

    // Pipeline totals, priced once per structural sub-DAG — the
    // executor's cache (and the cross-session materialized cache) runs
    // each unique sub-DAG at most once per session.
    let sids = structural_ids(dag);
    let mut priced: BTreeSet<u64> = BTreeSet::new();
    let mut scan_bytes_lo = 0u64;
    let mut scan_bytes_hi = 0u64;
    for est in &estimates {
        let fresh = match sids.get(&est.node) {
            Some(&sid) => priced.insert(sid),
            None => true,
        };
        if fresh {
            scan_bytes_lo = scan_bytes_lo.saturating_add(est.bytes_lo);
            scan_bytes_hi = scan_bytes_hi.saturating_add(est.bytes_hi);
        }
    }

    // DC0301: even the guaranteed-lower-bound cost exceeds the tenant's
    // remaining byte budget — execution *must* be evicted mid-run, so
    // reject preflight, before any scan is charged.
    if let Some(budget) = ctx.remaining_budget() {
        if scan_bytes_lo > budget {
            let worst = estimates
                .iter()
                .filter(|e| e.bytes_lo > 0)
                .max_by_key(|e| e.bytes_lo);
            let span = worst
                .and_then(|e| dag.node(e.node).ok().map(|n| (e.node, n.call.name())))
                .map(|(id, name)| Span::node(id, name))
                .unwrap_or_else(Span::none);
            diags.push(
                Diagnostic::new(
                    Code::PredictedBudgetExhaustion,
                    format!(
                        "this pipeline is guaranteed to scan at least {scan_bytes_lo} \
                         bytes, but the tenant's remaining byte budget is {budget}; \
                         execution would be evicted mid-run with BudgetExhausted"
                    ),
                )
                .with_span(span)
                .with_fix(Fix::new(
                    "filter or sample the scans to fit the budget, read a snapshot, \
                     or wait for the budget to refill",
                )),
            );
        }
    }

    // DC0208: the operator's guaranteed-lower-bound resident state
    // exceeds the executor's memory budget, so the governor is certain
    // to deny its reservation and the operator will run out of core.
    // Warning, not error — spilling is correct, just slower — with the
    // estimator-backed partition fan-out the executor will use.
    if let Some(budget) = ctx.mem_budget() {
        for est in &estimates {
            if est.state_bytes_lo <= budget {
                continue;
            }
            let Ok(node) = dag.node(est.node) else {
                continue;
            };
            let partitions = est.state_bytes_lo.div_ceil(budget.max(1)).max(2);
            diags.push(
                Diagnostic::new(
                    Code::PredictedSpill,
                    format!(
                        "{} must hold at least {} bytes of transient state, over the \
                         {budget}-byte operator-memory budget; the governor will deny \
                         the reservation and the operator runs out of core, spilling \
                         into ~{partitions} disk partitions",
                        node.call.name(),
                        est.state_bytes_lo,
                    ),
                )
                .with_span(Span::node(est.node, node.call.name()))
                .with_fix(Fix::new(format!(
                    "filter, project, or aggregate earlier so the {}'s state fits in \
                     memory, or raise the memory budget to at least {} bytes to keep \
                     it in core",
                    node.call.name(),
                    est.state_bytes_lo,
                ))),
            );
        }
    }

    // DC0303: the node's estimated output can never be admitted to the
    // shared materialized cache (residency double-counts the table), so
    // the sub-DAG is re-derived on every run. Reported once at the node
    // that first crosses the capacity line.
    if let Some(capacity) = ctx.cache_capacity() {
        let exceeds = |id: NodeId| {
            estimates
                .iter()
                .find(|e| e.node == id)
                .and_then(|e| e.out_bytes)
                .is_some_and(|b| b.saturating_mul(2) > capacity)
        };
        for est in &estimates {
            let Some(out) = est.out_bytes else { continue };
            if out.saturating_mul(2) <= capacity {
                continue;
            }
            let Ok(node) = dag.node(est.node) else {
                continue;
            };
            if !node.call.transforms_data() || node.inputs.iter().any(|&i| exceeds(i)) {
                continue; // pass-throughs and already-flagged lineage
            }
            diags.push(
                Diagnostic::new(
                    Code::UncacheableResult,
                    format!(
                        "estimated output footprint (~{out} bytes, doubled for cache \
                         residency) exceeds the materialized cache capacity \
                         ({capacity} bytes); this result can never be shared and \
                         every re-run re-pays the full derivation"
                    ),
                )
                .with_span(Span::node(est.node, node.call.name()))
                .with_fix(Fix::new(
                    "reduce the result (filter, aggregate, or project) before the \
                     expensive step, or snapshot it instead of relying on the cache",
                )),
            );
        }
    }

    DagEstimates {
        nodes: estimates,
        scan_bytes_lo,
        scan_bytes_hi,
    }
}

/// Upper bound on the distinct combinations of `keys`, traced to the
/// nearest upstream catalog scan through value-preserving operators.
fn group_cardinality(
    dag: &SkillDag,
    ctx: &AnalysisContext,
    input: Option<&NodeId>,
    keys: &[String],
) -> Option<u64> {
    let (schema, stats) = source_table(dag, ctx, *input?)?;
    let mut product = 1u64;
    for key in keys {
        let card = key_cardinality(schema, stats, key)?;
        product = product.saturating_mul(card.max(1));
    }
    Some(product)
}

/// Walk up a single-input chain of operators that cannot introduce new
/// values into existing columns (filters, sorts, caps, projections,
/// samples, non-transforms) until a catalog scan is found.
fn source_table<'a>(
    dag: &SkillDag,
    ctx: &'a AnalysisContext,
    mut node: NodeId,
) -> Option<&'a (Schema, TableStats)> {
    for _ in 0..dag.nodes().len() {
        let n = dag.node(node).ok()?;
        if let Some(found) = load_table(ctx, &n.call) {
            return Some(found);
        }
        let safe = matches!(
            n.call,
            SkillCall::KeepRows { .. }
                | SkillCall::DropRows { .. }
                | SkillCall::DropMissing { .. }
                | SkillCall::KeepColumns { .. }
                | SkillCall::DropColumns { .. }
                | SkillCall::Sort { .. }
                | SkillCall::Limit { .. }
                | SkillCall::Top { .. }
                | SkillCall::Sample { .. }
                | SkillCall::ShuffleRows { .. }
                | SkillCall::Distinct { .. }
        ) || !n.call.transforms_data();
        if !safe {
            return None;
        }
        node = *n.inputs.first()?;
    }
    None
}

/// Output-cardinality interval of a join, degrading to the
/// cross-product upper bound whenever statistics cannot do better.
fn join_bounds(
    dag: &SkillDag,
    ctx: &AnalysisContext,
    node: &dc_skills::SkillNode,
    left: RowBounds,
    right: RowBounds,
    left_on: &[String],
    how: &dc_engine::JoinType,
) -> RowBounds {
    use dc_engine::JoinType;
    let hi = match (left.hi, right.hi) {
        (Some(l), Some(r)) => Some(l.saturating_mul(r)),
        _ => None,
    };
    // A join degenerates to a cross product when it has no keys, or when
    // every key column provably holds one identical constant on both
    // sides — then every left row matches every right row.
    let cross = left_on.is_empty() || {
        let keys = join_key_constants(dag, ctx, node);
        keys.is_some_and(|pairs| {
            !pairs.is_empty()
                && pairs
                    .iter()
                    .all(|(l, r)| l.partial_cmp_sql(r) == Some(std::cmp::Ordering::Equal))
        })
    };
    let lo = if cross {
        left.lo.saturating_mul(right.lo)
    } else {
        match how {
            JoinType::Inner => 0,
            JoinType::Left => left.lo,
            JoinType::Right => right.lo,
            JoinType::Full => left.lo.max(right.lo),
        }
    };
    RowBounds { lo, hi }
}

/// When both join inputs are catalog scans with block detail, the
/// provably constant value of every key pair (`None` if any key is not
/// provably constant on either side).
fn join_key_constants(
    dag: &SkillDag,
    ctx: &AnalysisContext,
    node: &dc_skills::SkillNode,
) -> Option<Vec<(Value, Value)>> {
    let SkillCall::Join {
        left_on, right_on, ..
    } = &node.call
    else {
        return None;
    };
    let &[li, ri] = &node.inputs[..] else {
        return None;
    };
    let (ls, lstats) = load_table(ctx, &dag.node(li).ok()?.call)?;
    let (rs, rstats) = load_table(ctx, &dag.node(ri).ok()?.call)?;
    left_on
        .iter()
        .zip(right_on)
        .map(|(l, r)| Some((constant_key(ls, lstats, l)?, constant_key(rs, rstats, r)?)))
        .collect()
}

/// Per-step admission estimates for a linear chat program (`dc-serve`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepEstimates {
    /// Scan-byte upper bound per step (zero for non-scanning steps).
    pub per_step: Vec<u64>,
    /// Total reservation: per-step bounds deduped by load identity, the
    /// same dedup the executor's structural cache applies (a program
    /// loading one table twice scans it once).
    pub reserve: u64,
}

/// Price a serve request's steps directly against the live environment,
/// reading only block *metadata* (free under the §3 meter). The steps
/// are priced as submitted — run them through
/// `dc_skills::pushdown::plan_linear_pushdown` first to price the fused
/// plan the service will execute.
pub fn estimate_steps(env: &dc_skills::Env, steps: &[SkillCall]) -> StepEstimates {
    let mut cache: HashMap<(String, String), Option<(Schema, TableStats)>> = HashMap::new();
    let mut priced: BTreeSet<String> = BTreeSet::new();
    let mut per_step = Vec::with_capacity(steps.len());
    let mut reserve = 0u64;
    for step in steps {
        let (database, table) = match step {
            SkillCall::LoadTable { database, table }
            | SkillCall::LoadTableFiltered {
                database, table, ..
            }
            | SkillCall::LoadTableProjected {
                database, table, ..
            } => (database.clone(), table.clone()),
            _ => {
                per_step.push(0);
                continue;
            }
        };
        let entry = cache
            .entry((database.clone(), table.clone()))
            .or_insert_with(|| {
                env.catalog
                    .database(&database)
                    .ok()
                    .and_then(|db| db.table(&table).ok())
                    .map(|bt| (bt.schema().clone(), TableStats::from_block_table(bt)))
            });
        let bytes = match entry {
            Some((schema, stats)) => {
                scan_estimate(schema, stats, load_predicate(step), load_projection(step)).bytes_hi
            }
            None => 0, // unknown table: the step will fail before scanning
        };
        per_step.push(bytes);
        // Structural identity of a zero-input load is its call; identical
        // loads hit the session cache and charge once.
        if priced.insert(step.cache_key()) {
            reserve = reserve.saturating_add(bytes);
        }
    }
    StepEstimates { per_step, reserve }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_dag;
    use dc_engine::Field;
    use dc_storage::BlockTable;

    /// A table whose `day` column is monotone (0,0,1,1,2,2,...), split
    /// into 2-row blocks so zone maps genuinely prune.
    fn clustered_table(rows: usize) -> (Schema, TableStats) {
        let mut csv = String::from("day,label\n");
        for i in 0..rows {
            csv.push_str(&format!("{},r{}\n", i / 2, i % 3));
        }
        let t = dc_engine::csv::read_csv(&csv).unwrap().encode_strings();
        let bt = BlockTable::new(&t, 2).unwrap();
        (bt.schema().clone(), TableStats::from_block_table(&bt))
    }

    fn ctx_with(rows: usize) -> AnalysisContext {
        let (schema, stats) = clustered_table(rows);
        let mut ctx = AnalysisContext::new();
        ctx.add_table("db", "history", schema, stats);
        ctx
    }

    fn load() -> SkillCall {
        SkillCall::LoadTable {
            database: "db".into(),
            table: "history".into(),
        }
    }

    #[test]
    fn filtered_scan_prunes_blocks_statically() {
        let ctx = ctx_with(20);
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("day").ge(Expr::lit(8i64)),
                },
                vec![l],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[f], &ctx);
        let full = ctx.table("db", "history").unwrap().1.bytes;
        let scan = a.estimates.get(l).unwrap();
        // Blocks with day < 8 are pruned: the bound is far below full
        // scan but still nonzero (tail blocks + dictionary).
        assert!(
            scan.bytes_hi > 0 && scan.bytes_hi < full,
            "{scan:?} vs {full}"
        );
        assert_eq!(scan.bytes_lo, scan.bytes_hi);
        // day ∈ [8, 9] → exactly 4 rows, and the pruned blocks make the
        // bound tight: rows_lo = rows_hi = 4 (every kept block is AllTrue).
        assert_eq!(a.estimates.get(f).unwrap().rows_hi, Some(4));
        assert_eq!(a.estimates.get(f).unwrap().rows_lo, 4);
    }

    #[test]
    fn unfiltered_load_is_exact() {
        let ctx = ctx_with(10);
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = analyze_dag(&dag, &[l], &ctx);
        let stats = &ctx.table("db", "history").unwrap().1;
        let e = a.estimates.get(l).unwrap();
        assert_eq!(e.bytes_lo, stats.bytes);
        assert_eq!(e.bytes_hi, stats.bytes);
        assert_eq!(e.rows_hi, Some(stats.rows as u64));
        assert_eq!(e.rows_lo, stats.rows as u64);
    }

    #[test]
    fn duplicate_loads_priced_once() {
        let ctx = ctx_with(10);
        let mut dag = SkillDag::new();
        let a1 = dag.add(load(), vec![]).unwrap();
        let a2 = dag.add(load(), vec![]).unwrap();
        let c = dag
            .add(
                SkillCall::Concat {
                    other: "x".into(),
                    remove_duplicates: false,
                },
                vec![a1, a2],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[c], &ctx);
        let full = ctx.table("db", "history").unwrap().1.bytes;
        assert_eq!(a.estimates.scan_bytes_hi, full, "structural dedup");
        // Concat output doubles the rows.
        assert_eq!(a.estimates.get(c).unwrap().rows_hi, Some(20));
    }

    #[test]
    fn group_by_bounded_by_dictionary_cardinality() {
        let ctx = ctx_with(60); // label has 3 distinct values
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let g = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec::count_records("n")],
                    for_each: vec!["label".into()],
                },
                vec![l],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[g], &ctx);
        assert_eq!(a.estimates.get(g).unwrap().rows_hi, Some(3));
    }

    #[test]
    fn budget_lint_fires_on_guaranteed_overrun() {
        let mut ctx = ctx_with(20);
        ctx.set_remaining_budget(1); // far below any full scan
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = analyze_dag(&dag, &[l], &ctx);
        let hits = a.with_code(Code::PredictedBudgetExhaustion);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_error());
        assert_eq!(hits[0].span.node, Some(l));
    }

    #[test]
    fn budget_lint_respects_lower_bound() {
        // A filtered load's guaranteed cost without block detail is 0 —
        // the lint must not fire on an upper bound.
        let mut ctx = AnalysisContext::new();
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        ctx.add_table(
            "db",
            "t",
            schema,
            TableStats {
                rows: 1000,
                blocks: 4,
                bytes: 1 << 20,
                ..TableStats::default()
            },
        );
        ctx.set_remaining_budget(1);
        let mut dag = SkillDag::new();
        let l = dag
            .add(
                SkillCall::LoadTableFiltered {
                    database: "db".into(),
                    table: "t".into(),
                    predicate: Expr::col("x").gt(Expr::lit(5i64)),
                },
                vec![],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[l], &ctx);
        assert!(a.with_code(Code::PredictedBudgetExhaustion).is_empty());
        let e = a.estimates.get(l).unwrap();
        assert_eq!(e.bytes_lo, 0);
        assert_eq!(e.bytes_hi, 1 << 20);
    }

    #[test]
    fn constant_key_join_flagged_explosive() {
        // Both sides' `k` column is the constant 7.
        let mut csv = String::from("k,v\n");
        for i in 0..40 {
            csv.push_str(&format!("7,{i}\n"));
        }
        let t = dc_engine::csv::read_csv(&csv).unwrap();
        let bt = BlockTable::new(&t, 8).unwrap();
        let mut ctx = AnalysisContext::new();
        ctx.add_table(
            "db",
            "pairs",
            bt.schema().clone(),
            TableStats::from_block_table(&bt),
        );
        let mut dag = SkillDag::new();
        let a1 = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "pairs".into(),
                },
                vec![],
            )
            .unwrap();
        let a2 = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "pairs".into(),
                },
                vec![],
            )
            .unwrap();
        let j = dag
            .add(
                SkillCall::Join {
                    other: "x".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["k".into()],
                    how: dc_engine::JoinType::Inner,
                },
                vec![a1, a2],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[j], &ctx);
        let hits = a.with_code(Code::ExplosiveJoin);
        assert_eq!(hits.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(hits[0].span.node, Some(j));
        // 40×40 guaranteed.
        assert_eq!(a.estimates.get(j).unwrap().rows_lo, 1600);
    }

    #[test]
    fn discriminating_join_not_flagged() {
        let ctx = ctx_with(20);
        let mut dag = SkillDag::new();
        let a1 = dag.add(load(), vec![]).unwrap();
        let a2 = dag.add(load(), vec![]).unwrap();
        let j = dag
            .add(
                SkillCall::Join {
                    other: "x".into(),
                    left_on: vec!["day".into()],
                    right_on: vec!["day".into()],
                    how: dc_engine::JoinType::Inner,
                },
                vec![a1, a2],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[j], &ctx);
        assert!(a.with_code(Code::ExplosiveJoin).is_empty());
    }

    #[test]
    fn uncacheable_result_flagged_once_at_entry() {
        let mut ctx = ctx_with(40);
        ctx.set_cache_capacity(64); // tiny: any real table exceeds it
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let s = dag
            .add(
                SkillCall::Sort {
                    keys: vec![("day".into(), true)],
                },
                vec![l],
            )
            .unwrap();
        let a = analyze_dag(&dag, &[s], &ctx);
        let hits = a.with_code(Code::UncacheableResult);
        // Fires at the load (the first node over capacity), not again at
        // the sort whose input already exceeded.
        assert_eq!(hits.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(hits[0].span.node, Some(l));
        assert_eq!(hits[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn estimate_steps_dedupes_and_prunes() {
        let mut env = dc_skills::Env::new();
        let mut csv = String::from("day,label\n");
        for i in 0..40 {
            csv.push_str(&format!("{},r{}\n", i / 2, i % 3));
        }
        let t = dc_engine::csv::read_csv(&csv).unwrap();
        let mut db = dc_storage::CloudDatabase::new("db", dc_storage::Pricing::default_cloud());
        db.create_table_with_blocks("history", &t, 4).unwrap();
        env.catalog.add_database(db).unwrap();

        let full = env
            .catalog
            .database("db")
            .unwrap()
            .table("history")
            .unwrap()
            .total_bytes();
        // Duplicate full loads reserve once.
        let est = estimate_steps(&env, &[load(), load()]);
        assert_eq!(est.per_step, vec![full, full]);
        assert_eq!(est.reserve, full);
        // A selective fused load reserves far less than full.
        let fused = SkillCall::LoadTableFiltered {
            database: "db".into(),
            table: "history".into(),
            predicate: Expr::col("day").ge(Expr::lit(18i64)),
        };
        let est = estimate_steps(&env, &[fused]);
        assert!(est.reserve > 0 && est.reserve < full, "{est:?} vs {full}");
    }

    #[test]
    fn limits_and_unknowns_degrade_conservatively() {
        let ctx = ctx_with(20);
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let sql = dag
            .add(
                SkillCall::RunSql {
                    query: "select 1".into(),
                },
                vec![],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 5 }, vec![l]).unwrap();
        let a = analyze_dag(&dag, &[lim, sql], &ctx);
        assert_eq!(a.estimates.get(lim).unwrap().rows_hi, Some(5));
        assert_eq!(a.estimates.get(lim).unwrap().rows_lo, 5);
        assert_eq!(a.estimates.get(sql).unwrap().rows_hi, None);
    }
}
