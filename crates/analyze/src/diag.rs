//! The shared diagnostics framework: stable codes, severities, source
//! spans, and optional structured fixes.
//!
//! Every static check in the platform — the DAG analyzer in this crate,
//! the GEL recipe validator, and the NL2Code program checker (§4.5) —
//! reports through [`Diagnostic`], so callers see one uniform shape with
//! a stable machine-readable code (`DC0xxx`) regardless of which layer
//! found the problem.

use std::fmt;

/// Severity of a diagnostic.
///
/// Ordered: `Fixed < Warning < Error`, so `max()` over a report gives
/// the overall status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Repaired automatically (e.g. a removed print statement). Fixed
    /// findings are informational: the pipeline already healed them, and
    /// they are excluded from misalignment error tallies.
    Fixed,
    /// Suspicious but runnable.
    Warning,
    /// The pipeline cannot run as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Fixed => write!(f, "fixed"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// The numeric ranges group by pass: `DC00xx` schema/type/composition,
/// `DC01xx` dataflow, `DC02xx` cost, `DC03xx` cost/cardinality
/// estimation, `DC04xx` GEL parsing, `DC05xx` NL2Code streamlining.
/// Codes are append-only — tooling (golden tests, the `analyze_corpus`
/// gate) keys on them. (Historical exception: the NL2Code pair shipped
/// as `DC0301`/`DC0302` before any external tooling existed and moved to
/// `DC05xx` when the estimation family claimed `DC03xx`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `DC0001` — a dataset name resolves to nothing: not a DAG binding,
    /// not a saved artifact, not a catalog table.
    UnknownDataset,
    /// `DC0002` — a referenced column is absent from the inferred schema.
    UnknownColumn,
    /// `DC0003` — a column has the wrong type for the operation (numeric
    /// aggregate over text, date-part extraction from a non-date, ...).
    TypeMismatch,
    /// `DC0004` — two inputs cannot be composed (concat with incompatible
    /// schemas, join keys that do not unify or differ in arity).
    BadComposition,
    /// `DC0005` — a skill that needs an input dataset has none wired.
    MissingInput,
    /// `DC0006` — a file, URL, or catalog table source does not exist.
    UnknownSource,
    /// `DC0007` — `UseSnapshot` names a snapshot that was never created.
    UnknownSnapshot,
    /// `DC0008` — `Predict`/`EvaluateModel` names a model that is neither
    /// registered nor trained earlier in the DAG.
    UnknownModel,
    /// `DC0009` — a parameter is statically invalid (sample fraction out
    /// of (0, 1], zero forecast horizon, zero clusters, non-positive bin
    /// width).
    InvalidArgument,
    /// `DC0101` — the node feeds no analysis target; `slice()` would drop
    /// it and it only wastes compute (and scan budget) if executed.
    DeadNode,
    /// `DC0102` — the node is structurally identical to an earlier
    /// sub-DAG. The executor's structural cache runs it once, but the
    /// duplication usually means redundant recipe steps.
    DuplicateSubDag,
    /// `DC0103` — `UseDataset` references a name that is only bound by a
    /// *later* node, so at execution time it falls through to the
    /// environment and will not see the intended dataset.
    UseBeforeDefine,
    /// `DC0201` — a full catalog scan feeds a `Sample` node; a
    /// block-sampled scan (§3) would read a fraction of the bytes.
    FullScanCouldSample,
    /// `DC0202` — a full catalog scan re-reads a table that already has a
    /// same-named snapshot; reading the snapshot is fixed-cost.
    FullScanCouldSnapshot,
    /// `DC0203` — a scanned table has a string column whose dictionary is
    /// nearly as large as the table (≈ one distinct value per row), so
    /// dictionary encoding stores the payload *and* a code per row
    /// without ever deduplicating anything.
    HighCardinalityDict,
    /// `DC0204` — a `KeepRows` sits directly above a `LoadTable` but its
    /// predicate has no prunable conjunct, so predicate pushdown cannot
    /// skip any blocks; an equivalent column-vs-literal form would.
    UnprunablePredicate,
    /// `DC0205` — a step re-derives, from live table scans, the exact
    /// sub-DAG that an earlier `Snapshot` step already materializes;
    /// reading the snapshot is fixed-cost while the re-derivation re-pays
    /// the scan bytes every run.
    SnapshotPrefixReload,
    /// `DC0206` — a scan loads columns the pipeline provably never
    /// reads and the dead payload is substantial; the optimizer's
    /// projected scan would skip those bytes entirely.
    DeadColumnLoaded,
    /// `DC0207` — a chain of inner joins is written in a provably
    /// suboptimal order: statistics bound every join's fan-out, and the
    /// best order's intermediate-row bound is at least 4× smaller.
    SuboptimalJoinOrder,
    /// `DC0208` — an operator's *guaranteed-lower-bound* transient
    /// state already exceeds the executor's operator-memory budget, so
    /// the memory governor is certain to deny its reservation and the
    /// operator will run out of core (partitioned spill to disk).
    PredictedSpill,
    /// `DC0301` — the pipeline's *guaranteed-lower-bound* scan cost
    /// already exceeds the tenant's remaining byte budget, so execution
    /// is certain to be evicted mid-run with `BudgetExhausted`. Fires
    /// preflight, before any scan is charged.
    PredictedBudgetExhaustion,
    /// `DC0302` — a join is statically guaranteed to explode: its output
    /// cardinality lower bound is ≥ k× *both* inputs (an accidental
    /// cross join — empty key list, or key columns that are constant on
    /// both sides).
    ExplosiveJoin,
    /// `DC0303` — a node's estimated output footprint exceeds the
    /// materialized cache's capacity, so its result can never be
    /// admitted to the shared cache and every re-run re-pays the full
    /// derivation.
    UncacheableResult,
    /// `DC0401` — a GEL sentence failed to parse, or a recipe does not
    /// lower to a DAG.
    GelParse,
    /// `DC0501` — the NL2Code checker removed a print statement.
    RemovedPrint,
    /// `DC0502` — the NL2Code checker removed an assignment whose target
    /// is never used.
    RemovedUnusedCode,
}

impl Code {
    /// The stable `DC0xxx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnknownDataset => "DC0001",
            Code::UnknownColumn => "DC0002",
            Code::TypeMismatch => "DC0003",
            Code::BadComposition => "DC0004",
            Code::MissingInput => "DC0005",
            Code::UnknownSource => "DC0006",
            Code::UnknownSnapshot => "DC0007",
            Code::UnknownModel => "DC0008",
            Code::InvalidArgument => "DC0009",
            Code::DeadNode => "DC0101",
            Code::DuplicateSubDag => "DC0102",
            Code::UseBeforeDefine => "DC0103",
            Code::FullScanCouldSample => "DC0201",
            Code::FullScanCouldSnapshot => "DC0202",
            Code::HighCardinalityDict => "DC0203",
            Code::UnprunablePredicate => "DC0204",
            Code::SnapshotPrefixReload => "DC0205",
            Code::DeadColumnLoaded => "DC0206",
            Code::SuboptimalJoinOrder => "DC0207",
            Code::PredictedSpill => "DC0208",
            Code::PredictedBudgetExhaustion => "DC0301",
            Code::ExplosiveJoin => "DC0302",
            Code::UncacheableResult => "DC0303",
            Code::GelParse => "DC0401",
            Code::RemovedPrint => "DC0501",
            Code::RemovedUnusedCode => "DC0502",
        }
    }

    /// Short human title for registries and docs.
    pub fn title(self) -> &'static str {
        match self {
            Code::UnknownDataset => "unknown dataset",
            Code::UnknownColumn => "unknown column",
            Code::TypeMismatch => "type mismatch",
            Code::BadComposition => "invalid composition",
            Code::MissingInput => "missing input",
            Code::UnknownSource => "unknown source",
            Code::UnknownSnapshot => "unknown snapshot",
            Code::UnknownModel => "unknown model",
            Code::InvalidArgument => "invalid argument",
            Code::DeadNode => "dead node",
            Code::DuplicateSubDag => "duplicate sub-DAG",
            Code::UseBeforeDefine => "use before define",
            Code::FullScanCouldSample => "full scan could be sampled",
            Code::FullScanCouldSnapshot => "full scan could read a snapshot",
            Code::HighCardinalityDict => "high-cardinality dictionary column",
            Code::UnprunablePredicate => "filter above a scan cannot be pushed down",
            Code::SnapshotPrefixReload => "re-derives a snapshot-materialized sub-DAG",
            Code::DeadColumnLoaded => "scan loads columns the pipeline never reads",
            Code::SuboptimalJoinOrder => "join order provably suboptimal",
            Code::PredictedSpill => "operator state exceeds the memory budget",
            Code::PredictedBudgetExhaustion => "predicted budget exhaustion",
            Code::ExplosiveJoin => "join output guaranteed to explode",
            Code::UncacheableResult => "estimated result exceeds cache capacity",
            Code::GelParse => "GEL parse error",
            Code::RemovedPrint => "removed print statement",
            Code::RemovedUnusedCode => "removed unused code",
        }
    }

    /// The severity this code carries unless a pass overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::RemovedPrint | Code::RemovedUnusedCode => Severity::Fixed,
            Code::DeadNode
            | Code::DuplicateSubDag
            | Code::FullScanCouldSample
            | Code::FullScanCouldSnapshot
            | Code::HighCardinalityDict
            | Code::UnprunablePredicate
            | Code::SnapshotPrefixReload
            | Code::DeadColumnLoaded
            | Code::SuboptimalJoinOrder
            | Code::PredictedSpill
            | Code::ExplosiveJoin
            | Code::UncacheableResult => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Every registered code, in `DC0xxx` order.
    pub fn all() -> &'static [Code] {
        &[
            Code::UnknownDataset,
            Code::UnknownColumn,
            Code::TypeMismatch,
            Code::BadComposition,
            Code::MissingInput,
            Code::UnknownSource,
            Code::UnknownSnapshot,
            Code::UnknownModel,
            Code::InvalidArgument,
            Code::DeadNode,
            Code::DuplicateSubDag,
            Code::UseBeforeDefine,
            Code::FullScanCouldSample,
            Code::FullScanCouldSnapshot,
            Code::HighCardinalityDict,
            Code::UnprunablePredicate,
            Code::SnapshotPrefixReload,
            Code::DeadColumnLoaded,
            Code::SuboptimalJoinOrder,
            Code::PredictedSpill,
            Code::PredictedBudgetExhaustion,
            Code::ExplosiveJoin,
            Code::UncacheableResult,
            Code::GelParse,
            Code::RemovedPrint,
            Code::RemovedUnusedCode,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where a diagnostic points. Layers fill what they know: the DAG
/// analyzer sets `node`, the GEL validator remaps nodes to recipe
/// `step`s and source `line`s, the NL checker sets program statement
/// `step`s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// DAG node id.
    pub node: Option<usize>,
    /// 1-based recipe step / program statement.
    pub step: Option<usize>,
    /// 1-based source line.
    pub line: Option<usize>,
    /// The skill name or source excerpt the span covers.
    pub fragment: String,
}

impl Span {
    /// A span with no position (whole-pipeline findings).
    pub fn none() -> Span {
        Span::default()
    }

    /// A span anchored to a DAG node.
    pub fn node(id: usize, fragment: impl Into<String>) -> Span {
        Span {
            node: Some(id),
            fragment: fragment.into(),
            ..Span::default()
        }
    }

    /// A span anchored to a 1-based program statement / recipe step.
    pub fn step(step: usize, fragment: impl Into<String>) -> Span {
        Span {
            step: Some(step),
            fragment: fragment.into(),
            ..Span::default()
        }
    }

    /// A span anchored to a 1-based source line.
    pub fn line(line: usize, fragment: impl Into<String>) -> Span {
        Span {
            line: Some(line),
            fragment: fragment.into(),
            ..Span::default()
        }
    }

    /// Whether the span carries any position at all.
    pub fn is_none(&self) -> bool {
        self.node.is_none() && self.step.is_none() && self.line.is_none()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(s) = self.step {
            write!(f, "step {s}")?;
            wrote = true;
        } else if let Some(n) = self.node {
            write!(f, "node {n}")?;
            wrote = true;
        }
        if let Some(l) = self.line {
            if wrote {
                write!(f, ", ")?;
            }
            write!(f, "line {l}")?;
            wrote = true;
        }
        if !self.fragment.is_empty() {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "({})", self.fragment)?;
            wrote = true;
        }
        if !wrote {
            write!(f, "pipeline")?;
        }
        Ok(())
    }
}

/// A structured, machine-applicable suggestion attached to a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// What the fix does, in one sentence.
    pub summary: String,
    /// Replacement source for the spanned fragment, when one exists.
    pub replacement: Option<String>,
}

impl Fix {
    /// A fix with a summary only.
    pub fn new(summary: impl Into<String>) -> Fix {
        Fix {
            summary: summary.into(),
            replacement: None,
        }
    }

    /// A fix that rewrites the spanned fragment.
    pub fn replace(summary: impl Into<String>, replacement: impl Into<String>) -> Fix {
        Fix {
            summary: summary.into(),
            replacement: Some(replacement.into()),
        }
    }
}

/// One finding from any static check in the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub message: String,
    pub span: Span,
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity with no span.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span: Span::none(),
            fix: None,
        }
    }

    /// Attach a span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = span;
        self
    }

    /// Attach a structured fix.
    pub fn with_fix(mut self, fix: Fix) -> Diagnostic {
        self.fix = Some(fix);
        self
    }

    /// Override the default severity.
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Whether this diagnostic blocks execution.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        write!(f, " — at {}", self.span)?;
        if let Some(fix) = &self.fix {
            write!(f, " (fix: {})", fix.summary)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::all();
        let mut strs: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len(), "duplicate DC codes");
        assert!(strs.iter().all(|s| s.starts_with("DC0") && s.len() == 6));
        assert_eq!(Code::UnknownColumn.as_str(), "DC0002");
        assert_eq!(Code::DeadNode.as_str(), "DC0101");
        assert_eq!(Code::FullScanCouldSample.as_str(), "DC0201");
        assert_eq!(Code::PredictedBudgetExhaustion.as_str(), "DC0301");
        assert_eq!(Code::ExplosiveJoin.as_str(), "DC0302");
        assert_eq!(Code::UncacheableResult.as_str(), "DC0303");
        assert_eq!(Code::RemovedPrint.as_str(), "DC0501");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Fixed < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_renders_code_span_and_fix() {
        let d = Diagnostic::new(Code::UnknownColumn, "column \"bogus\" not found")
            .with_span(Span::step(3, "KeepRows"))
            .with_fix(Fix::new("did you mean \"bonus\"?"));
        let s = d.to_string();
        assert!(s.contains("error[DC0002]"), "{s}");
        assert!(s.contains("step 3"), "{s}");
        assert!(s.contains("did you mean"), "{s}");
        let none = Diagnostic::new(Code::GelParse, "oops");
        assert!(none.to_string().contains("pipeline"));
    }

    #[test]
    fn default_severities() {
        assert_eq!(Code::RemovedPrint.default_severity(), Severity::Fixed);
        assert_eq!(Code::DeadNode.default_severity(), Severity::Warning);
        assert_eq!(Code::ExplosiveJoin.default_severity(), Severity::Warning);
        assert_eq!(
            Code::UncacheableResult.default_severity(),
            Severity::Warning
        );
        assert_eq!(
            Code::PredictedBudgetExhaustion.default_severity(),
            Severity::Error
        );
        assert_eq!(Code::UnknownColumn.default_severity(), Severity::Error);
    }
}
