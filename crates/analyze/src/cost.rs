//! Pass 3: cost lints, priced with `dc-storage` block statistics.
//!
//! §3's consumption meter charges recipes by bytes scanned. Two shapes
//! waste scan budget without changing results, and both are visible
//! statically:
//!
//! * **DC0201** — a full `LoadTable` scan that only feeds a `Sample`
//!   node. Block sampling reads `ceil(fraction × blocks)` blocks instead
//!   of all of them; the full scan pays for rows the sampler discards.
//! * **DC0202** — a `LoadTable` of a table that already has a same-named
//!   snapshot. Snapshot reads are priced at a fixed per-read cost, so
//!   re-scanning the live table re-pays the full byte price every run.
//! * **DC0203** — a scanned table has a string column whose dictionary is
//!   nearly as large as the table itself. Dictionary encoding only pays
//!   off when values repeat; at ≈ one distinct value per row the table
//!   stores every string *plus* a 4-byte code per row, and dict-aware
//!   kernels degenerate to per-row string work.
//! * **DC0204** — a `KeepRows` directly above a `LoadTable` whose
//!   predicate has no prunable conjunct. The planner pushes prunable
//!   conjuncts into the scan, where zone maps skip whole blocks; a
//!   predicate with none (e.g. `NOT (price <= 10)` or `x + 1 > 5`)
//!   forces a full scan even when an equivalent column-vs-literal form
//!   would prune.
//! * **DC0205** — a step re-derives, through live table scans, the exact
//!   sub-DAG an earlier `Snapshot` step materializes. The snapshot holds
//!   that result at a fixed per-read price (and the shared materialized
//!   cache holds it at zero), so the recomputation re-pays the scan
//!   bytes for a result that already exists.

use std::collections::HashMap;

use dc_engine::expr::prune::{nnf, prunable_conjuncts};
use dc_skills::{structural_ids, NodeId, SkillCall, SkillDag};

use crate::context::AnalysisContext;
use crate::diag::{Code, Diagnostic, Fix, Span};
use crate::schema_pass::ancestor_sets;

/// DC0206 fires only when the dead columns' payload reaches this many
/// bytes — narrowing a scan that saves less than a block of I/O is
/// noise, not advice.
pub const DEAD_COLUMN_BYTES: u64 = 32 * 1024;

/// Estimated scan price of one node, from block statistics. Only nodes
/// that touch storage appear; pure transforms are free under the §3
/// meter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCost {
    pub node: NodeId,
    /// Bytes a full scan of the node's source reads.
    pub bytes: u64,
    /// Blocks backing the source (granularity of block sampling).
    pub blocks: usize,
}

/// Run the cost lints; returns the per-node scan estimates.
pub fn cost_pass(
    dag: &SkillDag,
    ctx: &AnalysisContext,
    diags: &mut Vec<Diagnostic>,
) -> Vec<NodeCost> {
    let mut costs = Vec::new();
    for node in dag.nodes() {
        // Filtered loads are scans too: they carry the same full-scan
        // worst case (an unselective predicate prunes nothing), so they
        // get a NodeCost and the same lints as plain loads.
        if let SkillCall::LoadTable { database, table }
        | SkillCall::LoadTableFiltered {
            database, table, ..
        }
        | SkillCall::LoadTableProjected {
            database, table, ..
        } = &node.call
        {
            let Some((_, stats)) = ctx.table(database, table) else {
                continue; // unknown table: the schema pass already errored
            };
            costs.push(NodeCost {
                node: node.id,
                bytes: stats.bytes,
                blocks: stats.blocks,
            });
            if let Some(snap) = ctx.snapshot_like(table) {
                diags.push(
                    Diagnostic::new(
                        Code::FullScanCouldSnapshot,
                        format!(
                            "full scan of {database:?}.{table:?} (~{} bytes) re-reads a \
                             table that snapshot {snap:?} already captures",
                            stats.bytes
                        ),
                    )
                    .with_span(Span::node(node.id, node.call.name()))
                    .with_fix(Fix::replace(
                        format!("read the fixed-cost snapshot {snap:?} instead"),
                        format!("Use the snapshot {snap}"),
                    )),
                );
            }
            // DC0203: a dictionary that covers ≥90% of the rows never
            // deduplicates; the 100-row floor keeps tiny fixtures quiet.
            for (column, dict_len) in &stats.dict_sizes {
                if stats.rows >= 100 && dict_len * 10 >= stats.rows * 9 {
                    diags.push(
                        Diagnostic::new(
                            Code::HighCardinalityDict,
                            format!(
                                "column {column:?} of {database:?}.{table:?} has {dict_len} \
                                 distinct values over {} rows; its dictionary deduplicates \
                                 almost nothing, so encoding adds 4 bytes/row of codes on \
                                 top of the full string payload",
                                stats.rows
                            ),
                        )
                        .with_span(Span::node(node.id, node.call.name()))
                        .with_fix(Fix::new(format!(
                            "treat {column:?} as an identifier: avoid grouping or joining \
                             on it, or project it away before wide scans"
                        ))),
                    );
                }
            }
        }
    }

    // DC0204: a filter directly above a scan that pushdown cannot use.
    // The pushdown planner takes KeepRows predicates verbatim, so only
    // conjuncts already in column-vs-literal form reach the zone maps.
    for node in dag.nodes() {
        let SkillCall::KeepRows { predicate } = &node.call else {
            continue;
        };
        let [input] = node.inputs[..] else { continue };
        let feeds_scan = dag
            .node(input)
            .is_ok_and(|n| matches!(n.call, SkillCall::LoadTable { .. }));
        if !feeds_scan || !prunable_conjuncts(predicate).is_empty() {
            continue;
        }
        let mut diag = Diagnostic::new(
            Code::UnprunablePredicate,
            format!(
                "the filter above the scan at step {input} has no prunable conjunct, \
                 so predicate pushdown cannot skip any blocks and the scan stays full"
            ),
        )
        .with_span(Span::node(node.id, node.call.name()));
        // Suggest the normalized form only when it actually unlocks
        // pruning (e.g. `NOT (price <= 10)` → `price > 10`).
        let normalized = nnf(predicate.clone());
        if !prunable_conjuncts(&normalized).is_empty() {
            diag = diag.with_fix(Fix::replace(
                "rewrite the predicate in prunable column-vs-literal form".to_string(),
                format!("Keep the rows where {}", normalized.to_sql()),
            ));
        }
        diags.push(diag);
    }

    // DC0201: a Sample node downstream of a multi-block full scan.
    let ancestors = ancestor_sets(dag);
    let upstream_of = |node: NodeId, candidate: NodeId| {
        ancestors
            .get(node)
            .is_some_and(|set| set.get(candidate).copied().unwrap_or(false))
    };
    for node in dag.nodes() {
        let SkillCall::Sample { fraction, .. } = &node.call else {
            continue;
        };
        for cost in &costs {
            let upstream = ancestors
                .get(node.id)
                .is_some_and(|set| set.get(cost.node).copied().unwrap_or(false));
            if upstream && cost.blocks >= 2 {
                let sampled = ((cost.blocks as f64) * fraction).ceil() as usize;
                diags.push(
                    Diagnostic::new(
                        Code::FullScanCouldSample,
                        format!(
                            "sampling {fraction} of a full scan (step {}, {} blocks, \
                             ~{} bytes); a block-sampled scan would read ~{} block(s)",
                            cost.node,
                            cost.blocks,
                            cost.bytes,
                            sampled.max(1)
                        ),
                    )
                    .with_span(Span::node(node.id, node.call.name())),
                );
            }
        }
    }

    // DC0205: a step downstream of fresh scans recomputes the exact
    // sub-DAG a Snapshot step already materializes. Keyed on the same
    // structural ids the executor's cache uses; only re-derivations that
    // actually touch storage are flagged (a pure duplicate is DC0102's
    // business and costs nothing under the §3 meter).
    let sids = structural_ids(dag);
    let mut materialized: HashMap<u64, (NodeId, &str)> = HashMap::new();
    for node in dag.nodes() {
        let SkillCall::Snapshot { name } = &node.call else {
            continue;
        };
        let [input] = node.inputs[..] else { continue };
        if let Some(&sid) = sids.get(&input) {
            materialized.entry(sid).or_insert((node.id, name.as_str()));
        }
    }
    if !materialized.is_empty() {
        let load_ids: Vec<NodeId> = dag
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.call,
                    SkillCall::LoadTable { .. } | SkillCall::LoadTableFiltered { .. }
                )
            })
            .map(|n| n.id)
            .collect();
        for node in dag.nodes() {
            let Some(&sid) = sids.get(&node.id) else {
                continue;
            };
            let Some(&(snap, name)) = materialized.get(&sid) else {
                continue;
            };
            if node.id <= snap {
                continue; // the materialized prefix itself
            }
            let rescans = load_ids
                .iter()
                .any(|&l| l == node.id || upstream_of(node.id, l));
            if !rescans {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    Code::SnapshotPrefixReload,
                    format!(
                        "step re-loads and recomputes the exact sub-DAG that snapshot \
                         {name:?} (step {snap}) already materializes at fixed read cost"
                    ),
                )
                .with_span(Span::node(node.id, node.call.name()))
                .with_fix(Fix::replace(
                    format!("read the materialized snapshot {name:?} instead of re-scanning"),
                    format!("Use the snapshot {name}"),
                )),
            );
        }
    }
    costs
}

/// Optimizer-backed lints: rewrites the cost optimizer would apply that
/// are worth surfacing to the author even though the executor applies
/// them transparently.
///
/// * **DC0206** — a scan loads columns no reachable step ever reads.
///   Detected by running the plan optimizer and diffing which loads it
///   narrowed to [`SkillCall::LoadTableProjected`]. Fires only with full
///   per-block statistics and only when the dead columns' payload
///   (block data bytes plus their dictionaries) reaches
///   [`DEAD_COLUMN_BYTES`] — the executor already skips the waste, but
///   the recipe as written over-states its own byte footprint.
/// * **DC0207** — an inner-join chain whose written order is provably
///   ≥4× worse (by the sound intermediate-row bound) than the best
///   order. Advised on the *written* DAG via
///   [`dc_skills::join_order_advice`], so it fires even when
///   name-bindings block the automatic rewrite.
pub fn optimizer_lints(
    dag: &SkillDag,
    targets: &[NodeId],
    ctx: &AnalysisContext,
    diags: &mut Vec<Diagnostic>,
) {
    // DC0206: diff the optimizer's projected plan against the written one.
    let optimized = if targets.is_empty() {
        None
    } else {
        dc_skills::optimize_dag(dag, targets, &[], ctx)
    };
    if let Some(opt) = &optimized {
        for node in opt.nodes() {
            let SkillCall::LoadTableProjected {
                database,
                table,
                columns,
                ..
            } = &node.call
            else {
                continue;
            };
            // Only loads the optimizer itself narrowed; a projected load
            // the author wrote is already as narrow as they asked for.
            let written = dag.node(node.id).map(|n| &n.call);
            if !written.is_ok_and(|call| {
                matches!(
                    call,
                    SkillCall::LoadTable { .. } | SkillCall::LoadTableFiltered { .. }
                )
            }) {
                continue;
            }
            let Some((schema, stats)) = ctx.table(database, table) else {
                continue;
            };
            let ncols = schema.fields().len();
            let detail = !stats.block_stats.is_empty()
                && stats.block_stats.len() == stats.blocks
                && stats.dict_bytes.len() == ncols
                && stats
                    .block_stats
                    .iter()
                    .all(|b| b.columns.len() == ncols && b.data_bytes.len() == ncols);
            if !detail {
                continue;
            }
            let live: Vec<usize> = columns.iter().filter_map(|c| schema.index_of(c)).collect();
            let dead: Vec<usize> = (0..ncols).filter(|ci| !live.contains(ci)).collect();
            let dead_bytes: u64 = dead
                .iter()
                .map(|&ci| {
                    stats
                        .block_stats
                        .iter()
                        .map(|b| b.data_bytes[ci])
                        .sum::<u64>()
                        + stats.dict_bytes[ci]
                })
                .sum();
            if dead_bytes < DEAD_COLUMN_BYTES {
                continue;
            }
            let dead_names: Vec<&str> = dead
                .iter()
                .map(|&ci| schema.fields()[ci].name.as_str())
                .collect();
            let written_name = dag.node(node.id).map_or("LoadTable", |n| n.call.name());
            let replacement = match &node.call {
                SkillCall::LoadTableProjected {
                    predicate: Some(p), ..
                } => format!(
                    "Load the columns {} of the table {table} from the database {database} \
                     where {}",
                    columns.join(", "),
                    p.to_sql()
                ),
                _ => format!(
                    "Load the columns {} of the table {table} from the database {database}",
                    columns.join(", ")
                ),
            };
            diags.push(
                Diagnostic::new(
                    Code::DeadColumnLoaded,
                    format!(
                        "the scan of {database:?}.{table:?} loads {} column(s) ({}) that no \
                         reachable step reads, ~{dead_bytes} wasted bytes per run",
                        dead.len(),
                        dead_names.join(", "),
                    ),
                )
                .with_span(Span::node(node.id, written_name))
                .with_fix(Fix::replace(
                    format!(
                        "load only the columns the recipe uses ({})",
                        columns.join(", ")
                    ),
                    replacement,
                )),
            );
        }
    }

    // DC0207: join_order_advice only returns chains whose written cost is
    // provably ≥4× the best order's bound, so every entry is a finding.
    for advice in dc_skills::join_order_advice(dag, ctx) {
        let ratio = advice.written_cost / advice.best_cost.max(1);
        let name = dag.node(advice.join).map_or("Join", |n| n.call.name());
        diags.push(
            Diagnostic::new(
                Code::SuboptimalJoinOrder,
                format!(
                    "this inner-join chain joins [{}] in written order with an \
                     intermediate-row bound of {}; joining [{}] instead bounds it at {} \
                     ({ratio}x smaller)",
                    advice.written_tables.join(", "),
                    advice.written_cost,
                    advice.best_tables.join(", "),
                    advice.best_cost,
                ),
            )
            .with_span(Span::node(advice.join, name))
            .with_fix(Fix::new(
                "join the most selective (unique-key) dimensions first and the \
                 fan-out dimension last",
            )),
        );
    }
}
