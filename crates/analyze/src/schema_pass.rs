//! Pass 1: schema and type propagation over a planned [`SkillDag`].
//!
//! Walks the DAG in append (= topological) order, inferring each node's
//! downstream-facing *flow schema* — the typed schema of the table the
//! executor's cache would hand to consumers — and rejecting calls the
//! interpreter would reject at run time: unknown columns, dtype
//! mismatches, invalid function composition, unresolvable sources.
//!
//! Soundness contract: the pass mirrors `execute_call` /
//! `execute_pure_call` exactly for every construct it models, erring on
//! the side of *rejecting* when semantics are data-dependent. A DAG the
//! analyzer accepts therefore fails at run time only for data-dependent
//! reasons the schema cannot see (e.g. fewer than three valid time
//! points for a forecast). Column lookups are case-insensitive
//! ([`Schema::field`]); environment lookups are exact, matching the
//! runtime stores.

use std::collections::HashMap;

use dc_engine::{AggFunc, BinaryOp, DataType, Expr, Field, ScalarFunc, Schema, UnaryOp};
use dc_ml::MlMethod;
use dc_skills::{NodeId, SkillCall, SkillDag};

use crate::context::{AnalysisContext, ModelInfo};
use crate::diag::{Code, Diagnostic, Span};

/// Per-node flow schemas inferred by the pass. `None` = statically
/// unknown (e.g. downstream of `RunSql` or `Pivot`); unknown inputs
/// disable checking, they never produce diagnostics.
pub type FlowSchemas = HashMap<NodeId, Option<Schema>>;

/// Ancestor sets, one per node, indexed by `NodeId` (nodes are
/// append-ordered). `sets[n]` contains every transitive input of `n`.
pub(crate) fn ancestor_sets(dag: &SkillDag) -> Vec<Vec<bool>> {
    let n = dag.len();
    let mut sets: Vec<Vec<bool>> = Vec::with_capacity(n);
    for node in dag.nodes() {
        let mut set = vec![false; n];
        for &i in &node.inputs {
            set[i] = true;
            for (j, anc) in sets[i].iter().enumerate() {
                if *anc {
                    set[j] = true;
                }
            }
        }
        sets.push(set);
    }
    sets
}

/// Run the schema/type pass, appending diagnostics and returning the
/// inferred flow schema per node.
pub fn schema_pass(
    dag: &SkillDag,
    ctx: &AnalysisContext,
    diags: &mut Vec<Diagnostic>,
) -> FlowSchemas {
    let ancestors = ancestor_sets(dag);
    let mut pass = Pass {
        dag,
        ctx,
        ancestors,
        flows: HashMap::with_capacity(dag.len()),
        saved_in_dag: HashMap::new(),
        snaps_in_dag: HashMap::new(),
        trained_in_dag: HashMap::new(),
    };
    for node in dag.nodes() {
        let flow = pass.infer_node(node.id, &node.call, &node.inputs, diags);
        pass.flows.insert(node.id, flow);
    }
    pass.flows
}

/// A model trained inside the DAG, keyed by name, with the node that
/// trains it (prediction is only sound downstream of that node).
struct DagModel {
    node: NodeId,
    info: ModelInfo,
}

struct Pass<'a> {
    dag: &'a SkillDag,
    ctx: &'a AnalysisContext,
    ancestors: Vec<Vec<bool>>,
    flows: FlowSchemas,
    /// `SaveArtifact` nodes seen so far: name → (node, schema).
    saved_in_dag: HashMap<String, (NodeId, Option<Schema>)>,
    /// `Snapshot` nodes seen so far: name → (node, schema).
    snaps_in_dag: HashMap<String, (NodeId, Option<Schema>)>,
    trained_in_dag: HashMap<String, DagModel>,
}

impl Pass<'_> {
    /// The flow schema arriving at `node` from input slot `slot`.
    /// `Ok(None)` = present but unknown; `Err(())` = the slot is missing
    /// (already diagnosed).
    fn input(
        &self,
        node: NodeId,
        call: &SkillCall,
        inputs: &[NodeId],
        slot: usize,
        diags: &mut Vec<Diagnostic>,
    ) -> Result<Option<Schema>, ()> {
        match inputs.get(slot) {
            Some(i) => Ok(self.flows.get(i).cloned().flatten()),
            None => {
                let what = if slot == 0 {
                    "an input dataset"
                } else {
                    "a second dataset"
                };
                diags.push(
                    Diagnostic::new(Code::MissingInput, format!("{} needs {what}", call.name()))
                        .with_span(Span::node(node, call.name())),
                );
                Err(())
            }
        }
    }

    /// True when `maybe_ancestor` is upstream of `node` — the only
    /// position from which an environment write (save, snapshot, train)
    /// is guaranteed to have happened before `node` runs.
    fn is_upstream(&self, maybe_ancestor: NodeId, node: NodeId) -> bool {
        self.ancestors
            .get(node)
            .is_some_and(|set| set.get(maybe_ancestor).copied().unwrap_or(false))
    }

    fn infer_node(
        &mut self,
        id: NodeId,
        call: &SkillCall,
        inputs: &[NodeId],
        diags: &mut Vec<Diagnostic>,
    ) -> Option<Schema> {
        use SkillCall::*;
        let span = || Span::node(id, call.name());
        // A couple of local helpers so the per-variant arms stay short.
        macro_rules! primary {
            () => {
                match self.input(id, call, inputs, 0, diags) {
                    Ok(f) => f,
                    Err(()) => return None,
                }
            };
        }

        match call {
            // ----- ingestion -----
            LoadFile { path } => match self.ctx.file(path) {
                Some(s) => Some(s.clone()),
                None => {
                    diags.push(
                        Diagnostic::new(
                            Code::UnknownSource,
                            format!("no file fixture registered at {path:?}"),
                        )
                        .with_span(span()),
                    );
                    None
                }
            },
            LoadUrl { url } => match self.ctx.url(url) {
                Some(s) => Some(s.clone()),
                None => {
                    diags.push(
                        Diagnostic::new(
                            Code::UnknownSource,
                            format!("no URL fixture registered at {url:?}"),
                        )
                        .with_span(span()),
                    );
                    None
                }
            },
            LoadTable { database, table }
            | LoadTableFiltered {
                database, table, ..
            } => match self.ctx.table(database, table) {
                Some((schema, _stats)) => Some(schema.clone()),
                None => {
                    diags.push(
                        Diagnostic::new(
                            Code::UnknownDataset,
                            format!("unknown table {database:?}.{table:?} in the catalog"),
                        )
                        .with_span(span()),
                    );
                    None
                }
            },
            // Planner-internal projected scan: the output carries the
            // projected columns only, in the call's column order.
            LoadTableProjected {
                database,
                table,
                columns,
                ..
            } => match self.ctx.table(database, table) {
                Some((schema, _stats)) => {
                    let fields: Vec<_> = columns
                        .iter()
                        .filter_map(|c| schema.field(c).cloned())
                        .collect();
                    dc_engine::Schema::new(fields).ok()
                }
                None => {
                    diags.push(
                        Diagnostic::new(
                            Code::UnknownDataset,
                            format!("unknown table {database:?}.{table:?} in the catalog"),
                        )
                        .with_span(span()),
                    );
                    None
                }
            },
            UseDataset { name, .. } => {
                if !inputs.is_empty() {
                    // The DAG wired the named node as our input.
                    return primary!();
                }
                // Runtime resolves against saved artifacts (exact name).
                if let Some((saver, schema)) = self.saved_in_dag.get(name) {
                    if self.is_upstream(*saver, id) {
                        return schema.clone();
                    }
                }
                if let Some(schema) = self.ctx.saved(name) {
                    return Some(schema.clone());
                }
                // The platform rewrites bare catalog names to LoadTable
                // before execution; accept them here with the same
                // case-insensitive match so pre-rewrite DAGs analyze.
                if let Some((schema, _)) = self.ctx.any_table(name) {
                    return Some(schema.clone());
                }
                if let Some((_, bound)) = self
                    .dag
                    .dataset_names()
                    .iter()
                    .find(|(n, _)| n.eq_ignore_ascii_case(name))
                {
                    diags.push(
                        Diagnostic::new(
                            Code::UseBeforeDefine,
                            format!(
                                "dataset {name:?} is bound at step {bound}, which is not an \
                                 upstream input of this node"
                            ),
                        )
                        .with_span(span()),
                    );
                } else {
                    diags.push(
                        Diagnostic::new(
                            Code::UnknownDataset,
                            format!(
                                "unknown dataset {name:?}: not a saved artifact or catalog table"
                            ),
                        )
                        .with_span(span()),
                    );
                }
                None
            }
            UseSnapshot { name } => {
                if let Some((creator, schema)) = self.snaps_in_dag.get(name) {
                    if self.is_upstream(*creator, id) {
                        return schema.clone();
                    }
                }
                if let Some(schema) = self.ctx.snapshot(name) {
                    return Some(schema.clone());
                }
                diags.push(
                    Diagnostic::new(Code::UnknownSnapshot, format!("unknown snapshot {name:?}"))
                        .with_span(span()),
                );
                None
            }
            ListDatasets => Some(Schema::default()),

            // ----- exploration (flow = input) -----
            DescribeColumn { column } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    self.require_col(s, column, &span(), diags);
                }
                flow
            }
            DescribeDataset | ShowHead { .. } | CountRows | ProfileMissing | ExportCsv => {
                primary!()
            }

            // ----- visualization (flow = input) -----
            Visualize { kpi, by } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    self.require_col(s, kpi, &span(), diags);
                    for b in by {
                        self.require_col(s, b, &span(), diags);
                    }
                }
                flow
            }
            Plot {
                x,
                y,
                color,
                size,
                for_each,
                ..
            } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    for c in [x, y, color, size, for_each].into_iter().flatten() {
                        self.require_col(s, c, &span(), diags);
                    }
                }
                flow
            }

            // ----- wrangling -----
            KeepRows { predicate } | DropRows { predicate } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    let ty = self.infer_expr(s, predicate, &span(), diags);
                    if let Known(dt) = ty {
                        if dt != DataType::Bool {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!(
                                        "predicate must evaluate to Bool, but this expression \
                                         produces {dt}"
                                    ),
                                )
                                .with_span(span()),
                            );
                        }
                    }
                }
                flow
            }
            KeepColumns { columns } => {
                let s = primary!()?;
                let mut fields = Vec::with_capacity(columns.len());
                for c in columns {
                    if let Some(f) = self.require_col(&s, c, &span(), diags) {
                        fields.push(f);
                    }
                }
                self.build_schema(fields, &span(), diags)
            }
            DropColumns { columns } => {
                let s = primary!()?;
                let mut out = s.fields().to_vec();
                for c in columns {
                    match out.iter().position(|f| f.name.eq_ignore_ascii_case(c)) {
                        Some(i) => {
                            out.remove(i);
                        }
                        // Sequential drops: a column absent here is absent
                        // at run time too (either never existed or was
                        // named twice in the list).
                        None => {
                            self.unknown_col(&s, c, &span(), diags);
                        }
                    }
                }
                self.build_schema(out, &span(), diags)
            }
            RenameColumn { from, to } => {
                let s = primary!()?;
                let idx = s.index_of(from);
                if idx.is_none() {
                    self.unknown_col(&s, from, &span(), diags);
                    return None;
                }
                if s.index_of(to).is_some_and(|j| Some(j) != idx) {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            format!("cannot rename {from:?} to {to:?}: column already exists"),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let mut fields = s.fields().to_vec();
                let i = idx.unwrap();
                fields[i] = Field::new(to, fields[i].dtype);
                self.build_schema(fields, &span(), diags)
            }
            CreateColumn { name, expr } => {
                let s = primary!()?;
                let ty = self.infer_expr(&s, expr, &span(), diags);
                match ty {
                    Known(dt) => self.with_col(&s, name, dt, &span(), diags),
                    Unknown => None,
                }
            }
            CreateConstantColumn { name, value } => {
                let s = primary!()?;
                // Null literals broadcast as a Str column of nulls.
                let dt = value.dtype().unwrap_or(DataType::Str);
                self.with_col(&s, name, dt, &span(), diags)
            }
            Compute { aggs, for_each } => {
                let s = primary!()?;
                if aggs.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            "group_by requires at least one aggregate".to_string(),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let mut fields = Vec::new();
                let mut ok = true;
                for k in for_each {
                    match self.require_col(&s, k, &span(), diags) {
                        Some(f) => fields.push(f),
                        None => ok = false,
                    }
                }
                for agg in aggs {
                    match (&agg.column, agg.func) {
                        (_, AggFunc::CountRecords) => {
                            fields.push(Field::new(&agg.output, DataType::Int));
                        }
                        (Some(c), func) => match self.require_col(&s, c, &span(), diags) {
                            Some(f) => {
                                if func.requires_numeric() && !f.dtype.is_numeric() {
                                    diags.push(
                                        Diagnostic::new(
                                            Code::TypeMismatch,
                                            format!(
                                                "{} requires a numeric column, but {c} is {}",
                                                func.name(),
                                                f.dtype
                                            ),
                                        )
                                        .with_span(span()),
                                    );
                                    ok = false;
                                } else {
                                    fields.push(Field::new(&agg.output, agg_output(func, f.dtype)));
                                }
                            }
                            None => ok = false,
                        },
                        (None, func) => {
                            diags.push(
                                Diagnostic::new(
                                    Code::InvalidArgument,
                                    format!("{} requires an argument column", func.name()),
                                )
                                .with_span(span()),
                            );
                            ok = false;
                        }
                    }
                }
                if !ok {
                    return None;
                }
                self.build_schema(fields, &span(), diags)
            }
            Pivot {
                index,
                columns,
                values,
                agg,
            } => {
                let s = primary!()?;
                if index.eq_ignore_ascii_case(columns) {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            "pivot index and columns must differ".to_string(),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                self.require_col(&s, index, &span(), diags);
                self.require_col(&s, columns, &span(), diags);
                if let Some(f) = self.require_col(&s, values, &span(), diags) {
                    if agg.requires_numeric() && !f.dtype.is_numeric() {
                        diags.push(
                            Diagnostic::new(
                                Code::TypeMismatch,
                                format!(
                                    "{} requires a numeric column, but {values} is {}",
                                    agg.name(),
                                    f.dtype
                                ),
                            )
                            .with_span(span()),
                        );
                    }
                }
                // Output headers are data values: statically unknown.
                None
            }
            Sort { keys } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    for (k, _) in keys {
                        self.require_col(s, k, &span(), diags);
                    }
                }
                flow
            }
            Top { column, .. } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    self.require_col(s, column, &span(), diags);
                }
                flow
            }
            Limit { .. } | ShuffleRows { .. } => primary!(),
            Sample { fraction, .. } => {
                let flow = primary!();
                if !(*fraction > 0.0 && *fraction <= 1.0) {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            format!("sample fraction must be in (0, 1], got {fraction}"),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                flow
            }
            Concat { .. } => {
                let left = primary!();
                let right = match self.input(id, call, inputs, 1, diags) {
                    Ok(f) => f,
                    Err(()) => return None,
                };
                match (left, right) {
                    (Some(l), Some(r)) => match l.concat_compatible(&r) {
                        Ok(unified) => Some(unified),
                        Err(e) => {
                            diags.push(
                                Diagnostic::new(
                                    Code::BadComposition,
                                    format!("datasets cannot be concatenated: {e}"),
                                )
                                .with_span(span()),
                            );
                            None
                        }
                    },
                    _ => None,
                }
            }
            Join {
                left_on, right_on, ..
            } => {
                let left = primary!();
                let right = match self.input(id, call, inputs, 1, diags) {
                    Ok(f) => f,
                    Err(()) => return None,
                };
                if left_on.len() != right_on.len() || left_on.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            Code::BadComposition,
                            "join requires equal, non-empty key lists".to_string(),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let (Some(l), Some(r)) = (left, right) else {
                    return None;
                };
                let mut ok = true;
                for (lk, rk) in left_on.iter().zip(right_on) {
                    let lf = self.require_col(&l, lk, &span(), diags);
                    let rf = self.require_col(&r, rk, &span(), diags);
                    match (lf, rf) {
                        (Some(lf), Some(rf)) => {
                            if lf.dtype.unify(rf.dtype).is_none() {
                                diags.push(
                                    Diagnostic::new(
                                        Code::TypeMismatch,
                                        format!(
                                            "join keys {lk:?} ({}) and {rk:?} ({}) have \
                                             incompatible types",
                                            lf.dtype, rf.dtype
                                        ),
                                    )
                                    .with_span(span()),
                                );
                                ok = false;
                            }
                        }
                        _ => ok = false,
                    }
                }
                if !ok {
                    return None;
                }
                // Output: all left fields, then right non-key fields with
                // `_right` suffixes on name collisions.
                let mut fields = l.fields().to_vec();
                for f in r.fields() {
                    if right_on.iter().any(|k| f.name.eq_ignore_ascii_case(k)) {
                        continue;
                    }
                    let name = if l.field(&f.name).is_some() {
                        format!("{}_right", f.name)
                    } else {
                        f.name.clone()
                    };
                    fields.push(Field::new(name, f.dtype));
                }
                self.build_schema(fields, &span(), diags)
            }
            Distinct { columns } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    for c in columns {
                        self.require_col(s, c, &span(), diags);
                    }
                }
                flow
            }
            DropMissing { columns } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    if columns.is_empty() && s.is_empty() {
                        diags.push(
                            Diagnostic::new(
                                Code::InvalidArgument,
                                "no columns to check for missing values".to_string(),
                            )
                            .with_span(span()),
                        );
                        return None;
                    }
                    for c in columns {
                        self.require_col(s, c, &span(), diags);
                    }
                }
                flow
            }
            FillMissing { column, value } => {
                let s = primary!()?;
                let f = self.require_col(&s, column, &span(), diags)?;
                match value.dtype() {
                    // Coalesce unifies the column with the fill value.
                    Some(v) => match f.dtype.unify(v) {
                        Some(dt) => self.with_col(&s, column, dt, &span(), diags),
                        None => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!(
                                        "cannot fill {column:?} ({}) with a {v} value",
                                        f.dtype
                                    ),
                                )
                                .with_span(span()),
                            );
                            None
                        }
                    },
                    None => Some(s),
                }
            }
            ReplaceValues { column, from, to } => {
                let s = primary!()?;
                let f = self.require_col(&s, column, &span(), diags)?;
                // Desugars to If(col == from, to, col).
                if let Some(fv) = from.dtype() {
                    if fv.unify(f.dtype).is_none() && !(fv.is_numeric() && f.dtype.is_numeric()) {
                        diags.push(
                            Diagnostic::new(
                                Code::TypeMismatch,
                                format!("cannot compare {} with {fv}", f.dtype),
                            )
                            .with_span(span()),
                        );
                        return None;
                    }
                }
                match to.dtype() {
                    Some(tv) => match tv.unify(f.dtype) {
                        Some(dt) => self.with_col(&s, column, dt, &span(), diags),
                        None => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!(
                                        "if branches have incompatible types {tv} and {}",
                                        f.dtype
                                    ),
                                )
                                .with_span(span()),
                            );
                            None
                        }
                    },
                    None => Some(s),
                }
            }
            CastColumn { column, to } => {
                let s = primary!()?;
                self.require_col(&s, column, &span(), diags)?;
                // cast_value is total (unconvertible values become null),
                // so any cast succeeds structurally.
                self.with_col(&s, column, *to, &span(), diags)
            }
            BinColumn {
                column,
                width,
                name,
            } => {
                let s = primary!()?;
                let f = self.require_col(&s, column, &span(), diags)?;
                if !f.dtype.is_numeric() {
                    diags.push(
                        Diagnostic::new(
                            Code::TypeMismatch,
                            format!("bin requires a numeric column, but {column} is {}", f.dtype),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                if *width <= 0 {
                    // The kernel nulls every row instead of erroring; warn.
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            format!("bin width {width} produces only nulls"),
                        )
                        .with_span(span())
                        .with_severity(crate::diag::Severity::Warning),
                    );
                }
                let out_name = name
                    .clone()
                    .unwrap_or_else(|| format!("{column}Int{width}"));
                // bin(Int, Int) stays Int; float inputs bin to Float.
                let dt = if f.dtype == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                };
                self.with_col(&s, &out_name, dt, &span(), diags)
            }
            ExtractDatePart { column, part, name } => {
                let s = primary!()?;
                let f = self.require_col(&s, column, &span(), diags)?;
                if f.dtype != DataType::Date {
                    diags.push(
                        Diagnostic::new(
                            Code::TypeMismatch,
                            format!(
                                "{} requires a Date column, but {column} is {}",
                                part.name(),
                                f.dtype
                            ),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let out_name = name
                    .clone()
                    .unwrap_or_else(|| format!("{column}_{}", part.name()));
                self.with_col(&s, &out_name, DataType::Int, &span(), diags)
            }
            TrimColumn { column } => {
                let s = primary!()?;
                let f = self.require_col(&s, column, &span(), diags)?;
                if f.dtype != DataType::Str {
                    diags.push(
                        Diagnostic::new(
                            Code::TypeMismatch,
                            format!("trim requires a Str column, but {column} is {}", f.dtype),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                Some(s)
            }

            // ----- machine learning -----
            TrainModel {
                name,
                target,
                features,
                method,
            } => {
                let flow = primary!();
                if let Some(s) = &flow {
                    let Some(tf) = self.require_col(s, target, &span(), diags) else {
                        return flow;
                    };
                    if *method == MlMethod::Linear && !tf.dtype.is_numeric() {
                        diags.push(
                            Diagnostic::new(
                                Code::TypeMismatch,
                                format!(
                                    "linear regression needs a numeric target, but {target} \
                                     is {}",
                                    tf.dtype
                                ),
                            )
                            .with_span(span()),
                        );
                        return flow;
                    }
                    let resolved: Vec<String> = if features.is_empty() {
                        s.fields()
                            .iter()
                            .filter(|f| {
                                f.dtype.is_numeric() && !f.name.eq_ignore_ascii_case(target)
                            })
                            .map(|f| f.name.clone())
                            .collect()
                    } else {
                        features.clone()
                    };
                    if resolved.is_empty() {
                        diags.push(
                            Diagnostic::new(
                                Code::InvalidArgument,
                                "at least one feature column required (no numeric non-target \
                                 columns to default to)"
                                    .to_string(),
                            )
                            .with_span(span()),
                        );
                        return flow;
                    }
                    let mut ok = true;
                    for feat in &resolved {
                        match self.require_col(s, feat, &span(), diags) {
                            Some(f) if !f.dtype.is_numeric() && f.dtype != DataType::Date => {
                                diags.push(
                                    Diagnostic::new(
                                        Code::TypeMismatch,
                                        format!("feature {feat} is not numeric ({})", f.dtype),
                                    )
                                    .with_span(span()),
                                );
                                ok = false;
                            }
                            Some(_) => {}
                            None => ok = false,
                        }
                    }
                    if ok {
                        let numeric_target = tf.dtype.is_numeric();
                        let output = match method {
                            MlMethod::Linear => DataType::Float,
                            MlMethod::DecisionTree => DataType::Str,
                            MlMethod::Auto if numeric_target => DataType::Float,
                            MlMethod::Auto => DataType::Str,
                        };
                        self.trained_in_dag.insert(
                            name.clone(),
                            DagModel {
                                node: id,
                                info: ModelInfo {
                                    target: target.clone(),
                                    features: resolved,
                                    output,
                                },
                            },
                        );
                    }
                }
                flow
            }
            Predict { model } => {
                let flow = primary!();
                let info = match self.resolve_model(model, id) {
                    Some(info) => info,
                    None => {
                        diags.push(
                            Diagnostic::new(Code::UnknownModel, format!("unknown model {model:?}"))
                                .with_span(span()),
                        );
                        return flow;
                    }
                };
                let s = flow?;
                let mut ok = true;
                for feat in &info.features {
                    match self.require_col(&s, feat, &span(), diags) {
                        Some(f) if !f.dtype.is_numeric() && f.dtype != DataType::Date => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("feature {feat} is not numeric ({})", f.dtype),
                                )
                                .with_span(span()),
                            );
                            ok = false;
                        }
                        Some(_) => {}
                        None => ok = false,
                    }
                }
                if !ok {
                    return None;
                }
                let name = s.fresh_name(&format!("Predicted_{}", info.target));
                self.with_col(&s, &name, info.output, &span(), diags)
            }
            PredictTimeSeries {
                measures,
                horizon,
                time_column,
            } => {
                let flow = primary!();
                if *horizon == 0 {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            "horizon must be positive".to_string(),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                if measures.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            "at least one measure column required".to_string(),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let s = flow?;
                let mut fields = Vec::new();
                match self.require_col(&s, time_column, &span(), diags) {
                    Some(tf) => {
                        if !tf.dtype.is_numeric() && tf.dtype != DataType::Date {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!(
                                        "time column {time_column} must be numeric or Date, \
                                         not {}",
                                        tf.dtype
                                    ),
                                )
                                .with_span(span()),
                            );
                            return None;
                        }
                        fields.push(tf);
                    }
                    None => return None,
                }
                for m in measures {
                    match self.require_col(&s, m, &span(), diags) {
                        Some(f) if !f.dtype.is_numeric() => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("measure {m} is not numeric ({})", f.dtype),
                                )
                                .with_span(span()),
                            );
                            return None;
                        }
                        Some(f) => fields.push(Field::new(&f.name, DataType::Float)),
                        None => return None,
                    }
                }
                fields.push(Field::new("RecordType", DataType::Str));
                self.build_schema(fields, &span(), diags)
            }
            DetectOutliers { column, .. } => {
                let s = primary!()?;
                let f = self.require_col(&s, column, &span(), diags)?;
                if !f.dtype.is_numeric() && f.dtype != DataType::Date {
                    diags.push(
                        Diagnostic::new(
                            Code::TypeMismatch,
                            format!(
                                "outlier detection requires a numeric column, but {column} \
                                 is {}",
                                f.dtype
                            ),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let name = s.fresh_name(&format!("IsOutlier_{column}"));
                self.with_col(&s, &name, DataType::Bool, &span(), diags)
            }
            Cluster { k, features } => {
                let s = primary!()?;
                if *k == 0 {
                    diags.push(
                        Diagnostic::new(Code::InvalidArgument, "k must be positive".to_string())
                            .with_span(span()),
                    );
                    return None;
                }
                if features.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            "clustering requires at least one feature column".to_string(),
                        )
                        .with_span(span()),
                    );
                    return None;
                }
                let mut ok = true;
                for feat in features {
                    match self.require_col(&s, feat, &span(), diags) {
                        Some(f) if !f.dtype.is_numeric() && f.dtype != DataType::Date => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("feature {feat} is not numeric ({})", f.dtype),
                                )
                                .with_span(span()),
                            );
                            ok = false;
                        }
                        Some(_) => {}
                        None => ok = false,
                    }
                }
                if !ok {
                    return None;
                }
                let name = s.fresh_name("Cluster");
                self.with_col(&s, &name, DataType::Int, &span(), diags)
            }
            EvaluateModel { model, target } => {
                let flow = primary!();
                if self.resolve_model(model, id).is_none() {
                    diags.push(
                        Diagnostic::new(Code::UnknownModel, format!("unknown model {model:?}"))
                            .with_span(span()),
                    );
                    return flow;
                }
                if let Some(s) = &flow {
                    self.require_col(s, target, &span(), diags);
                }
                flow
            }

            // ----- SQL -----
            RunSql { .. } => None,

            // ----- collaboration / platform -----
            SaveArtifact { name } => {
                let flow = primary!();
                self.saved_in_dag.insert(name.clone(), (id, flow.clone()));
                flow
            }
            Snapshot { name } => {
                let flow = primary!();
                if self.ctx.snapshot(name).is_some() || self.snaps_in_dag.contains_key(name) {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            format!("snapshot {name:?} already exists"),
                        )
                        .with_span(span()),
                    );
                    return flow;
                }
                self.snaps_in_dag.insert(name.clone(), (id, flow.clone()));
                flow
            }
            Define { .. } | Comment { .. } => {
                if inputs.is_empty() {
                    Some(Schema::default())
                } else {
                    self.flows.get(&inputs[0]).cloned().flatten()
                }
            }
            ShareArtifact { artifact, .. } => {
                // Sharing never fails at run time, but an artifact nobody
                // created is almost certainly a typo — warn.
                let known = self
                    .saved_in_dag
                    .get(artifact)
                    .is_some_and(|(saver, _)| self.is_upstream(*saver, id))
                    || self.ctx.saved(artifact).is_some();
                if !known {
                    diags.push(
                        Diagnostic::new(
                            Code::UnknownDataset,
                            format!("shared artifact {artifact:?} is not saved anywhere"),
                        )
                        .with_span(span())
                        .with_severity(crate::diag::Severity::Warning),
                    );
                }
                if inputs.is_empty() {
                    Some(Schema::default())
                } else {
                    self.flows.get(&inputs[0]).cloned().flatten()
                }
            }
        }
    }

    /// Resolve a model name: in-DAG training upstream of `node` first,
    /// then the environment registry (exact names, like the runtime).
    fn resolve_model(&self, name: &str, node: NodeId) -> Option<ModelInfo> {
        if let Some(m) = self.trained_in_dag.get(name) {
            if self.is_upstream(m.node, node) {
                return Some(m.info.clone());
            }
        }
        self.ctx.model(name).cloned()
    }

    /// Look up `name` in `schema` (case-insensitive, like the engine),
    /// diagnosing DC0002 when absent.
    fn require_col(
        &self,
        schema: &Schema,
        name: &str,
        span: &Span,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<Field> {
        match schema.field(name) {
            Some(f) => Some(f.clone()),
            None => {
                self.unknown_col(schema, name, span, diags);
                None
            }
        }
    }

    fn unknown_col(&self, schema: &Schema, name: &str, span: &Span, diags: &mut Vec<Diagnostic>) {
        let have = schema.names().join(", ");
        diags.push(
            Diagnostic::new(
                Code::UnknownColumn,
                format!("unknown column {name:?} (have: {have})"),
            )
            .with_span(span.clone()),
        );
    }

    /// Mirror `Table::with_column`: replace a same-named field in place
    /// (keeping its original casing) or append a new one.
    fn with_col(
        &self,
        schema: &Schema,
        name: &str,
        dtype: DataType,
        span: &Span,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<Schema> {
        let mut fields = schema.fields().to_vec();
        match schema.index_of(name) {
            Some(i) => {
                let preserved = fields[i].name.clone();
                fields[i] = Field::new(preserved, dtype);
            }
            None => fields.push(Field::new(name, dtype)),
        }
        self.build_schema(fields, span, diags)
    }

    /// Assemble a schema, converting constraint violations (duplicate
    /// column names) into DC0004 diagnostics.
    fn build_schema(
        &self,
        fields: Vec<Field>,
        span: &Span,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<Schema> {
        match Schema::new(fields) {
            Ok(s) => Some(s),
            Err(e) => {
                diags.push(
                    Diagnostic::new(
                        Code::BadComposition,
                        format!("output schema is invalid: {e}"),
                    )
                    .with_span(span.clone()),
                );
                None
            }
        }
    }

    /// Conservative expression typing, mirroring `dc_engine::eval`.
    /// Every rejection here is a rejection there; `Unknown` is returned
    /// whenever the type depends on something we cannot see.
    fn infer_expr(
        &self,
        schema: &Schema,
        expr: &Expr,
        span: &Span,
        diags: &mut Vec<Diagnostic>,
    ) -> ExprTy {
        use DataType as T;
        match expr {
            Expr::Column(name) => match schema.field(name) {
                Some(f) => Known(f.dtype),
                None => {
                    self.unknown_col(schema, name, span, diags);
                    Unknown
                }
            },
            Expr::Literal(v) => v.dtype().map(Known).unwrap_or(Unknown),
            Expr::Binary { left, op, right } => {
                let l = self.infer_expr(schema, left, span, diags);
                let r = self.infer_expr(schema, right, span, diags);
                if op.is_logical() {
                    for side in [l, r] {
                        if let Known(dt) = side {
                            if dt != T::Bool {
                                diags.push(
                                    Diagnostic::new(
                                        Code::TypeMismatch,
                                        format!("logical operand must be Bool, not {dt}"),
                                    )
                                    .with_span(span.clone()),
                                );
                            }
                        }
                    }
                    Known(T::Bool)
                } else if op.is_comparison() {
                    if let (Known(a), Known(b)) = (l, r) {
                        if a.unify(b).is_none() && !(a.is_numeric() && b.is_numeric()) {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("cannot compare {a} with {b}"),
                                )
                                .with_span(span.clone()),
                            );
                        }
                    }
                    Known(T::Bool)
                } else {
                    // Arithmetic.
                    match (l, r) {
                        (Known(a), Known(b)) => match (a, b) {
                            (T::Int, T::Int) if *op != BinaryOp::Div => Known(T::Int),
                            (T::Date, T::Int) if matches!(op, BinaryOp::Add | BinaryOp::Sub) => {
                                Known(T::Date)
                            }
                            (T::Date, T::Date) if *op == BinaryOp::Sub => Known(T::Int),
                            (T::Str, T::Str) if *op == BinaryOp::Add => Known(T::Str),
                            (a, b) if a.is_numeric() && b.is_numeric() => Known(T::Float),
                            (a, b) => {
                                diags.push(
                                    Diagnostic::new(
                                        Code::TypeMismatch,
                                        format!(
                                            "arithmetic {:?} not defined for {a} and {b}",
                                            op.sql()
                                        ),
                                    )
                                    .with_span(span.clone()),
                                );
                                Unknown
                            }
                        },
                        _ => Unknown,
                    }
                }
            }
            Expr::Unary { op, expr } => {
                let t = self.infer_expr(schema, expr, span, diags);
                match op {
                    UnaryOp::Not => {
                        if let Known(dt) = t {
                            if dt != T::Bool {
                                diags.push(
                                    Diagnostic::new(
                                        Code::TypeMismatch,
                                        format!("NOT operand must be Bool, not {dt}"),
                                    )
                                    .with_span(span.clone()),
                                );
                            }
                        }
                        Known(T::Bool)
                    }
                    UnaryOp::Neg => match t {
                        Known(dt) if dt.is_numeric() => Known(dt),
                        Known(dt) => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("cannot negate a {dt} value"),
                                )
                                .with_span(span.clone()),
                            );
                            Unknown
                        }
                        Unknown => Unknown,
                    },
                }
            }
            Expr::Func { func, args } => {
                let (min, max) = func.arity();
                if args.len() < min || args.len() > max {
                    diags.push(
                        Diagnostic::new(
                            Code::InvalidArgument,
                            format!(
                                "{} expects between {min} and {} arguments, got {}",
                                func.name(),
                                if max == usize::MAX {
                                    "unbounded".to_string()
                                } else {
                                    max.to_string()
                                },
                                args.len()
                            ),
                        )
                        .with_span(span.clone()),
                    );
                    return Unknown;
                }
                let tys: Vec<ExprTy> = args
                    .iter()
                    .map(|a| self.infer_expr(schema, a, span, diags))
                    .collect();
                self.infer_func(*func, &tys, span, diags)
            }
            Expr::Cast { expr, to } => {
                self.infer_expr(schema, expr, span, diags);
                Known(*to)
            }
            Expr::IsNull(e) | Expr::IsNotNull(e) => {
                self.infer_expr(schema, e, span, diags);
                Known(T::Bool)
            }
            Expr::InList { expr, .. } => {
                // Membership compares via SQL value equality; mismatched
                // types simply never match, they do not error.
                self.infer_expr(schema, expr, span, diags);
                Known(T::Bool)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                let e = self.infer_expr(schema, expr, span, diags);
                for bound in [low, high] {
                    let b = self.infer_expr(schema, bound, span, diags);
                    if let (Known(a), Known(b)) = (e, b) {
                        if a.unify(b).is_none() && !(a.is_numeric() && b.is_numeric()) {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("cannot compare {a} with {b}"),
                                )
                                .with_span(span.clone()),
                            );
                        }
                    }
                }
                Known(T::Bool)
            }
        }
    }

    fn infer_func(
        &self,
        func: ScalarFunc,
        tys: &[ExprTy],
        span: &Span,
        diags: &mut Vec<Diagnostic>,
    ) -> ExprTy {
        use DataType as T;
        use ScalarFunc::*;
        let mut mismatch = |want: &str, got: DataType| {
            diags.push(
                Diagnostic::new(
                    Code::TypeMismatch,
                    format!("{} requires {want}, got {got}", func.name()),
                )
                .with_span(span.clone()),
            );
        };
        let numeric = |t: &ExprTy| !matches!(t, Known(dt) if !dt.is_numeric());
        let stringy = |t: &ExprTy| !matches!(t, Known(dt) if *dt != T::Str);
        match func {
            Abs => {
                if !numeric(&tys[0]) {
                    mismatch("a numeric argument", known(&tys[0]));
                    return Unknown;
                }
                // Abs preserves integer-ness.
                tys[0]
            }
            Ceil | Floor | Sqrt | Ln | Exp => {
                if !numeric(&tys[0]) {
                    mismatch("a numeric argument", known(&tys[0]));
                    return Unknown;
                }
                Known(T::Float)
            }
            Round => {
                if !numeric(&tys[0]) {
                    mismatch("a numeric argument", known(&tys[0]));
                    return Unknown;
                }
                if let Some(Known(dt)) = tys.get(1) {
                    if *dt != T::Int {
                        mismatch("constant Int digits", *dt);
                    }
                }
                Known(T::Float)
            }
            Pow => {
                if !numeric(&tys[0]) || !numeric(&tys[1]) {
                    mismatch(
                        "numeric arguments",
                        known(if numeric(&tys[0]) { &tys[1] } else { &tys[0] }),
                    );
                    return Unknown;
                }
                Known(T::Float)
            }
            Bin => {
                if !numeric(&tys[0]) || !numeric(&tys[1]) {
                    mismatch(
                        "numeric arguments",
                        known(if numeric(&tys[0]) { &tys[1] } else { &tys[0] }),
                    );
                    return Unknown;
                }
                // bin(Int, Int) stays Int; anything else goes float.
                match (tys[0], tys[1]) {
                    (Known(T::Int), Known(T::Int)) => Known(T::Int),
                    (Known(_), Known(_)) => Known(T::Float),
                    _ => Unknown,
                }
            }
            Lower | Upper | Trim => {
                if !stringy(&tys[0]) {
                    mismatch("a Str argument", known(&tys[0]));
                    return Unknown;
                }
                Known(T::Str)
            }
            Length => {
                if !stringy(&tys[0]) {
                    mismatch("a Str argument", known(&tys[0]));
                    return Unknown;
                }
                Known(T::Int)
            }
            Concat => Known(T::Str),
            Contains | StartsWith | EndsWith => {
                for t in &tys[..2] {
                    if !stringy(t) {
                        mismatch("Str arguments", known(t));
                    }
                }
                Known(T::Bool)
            }
            Replace => {
                for t in &tys[..3] {
                    if !stringy(t) {
                        mismatch("Str arguments", known(t));
                    }
                }
                Known(T::Str)
            }
            Substring => {
                if !stringy(&tys[0]) {
                    mismatch("a Str argument", known(&tys[0]));
                }
                for t in &tys[1..3] {
                    if let Known(dt) = t {
                        if *dt != T::Int {
                            mismatch("constant Int bounds", *dt);
                        }
                    }
                }
                Known(T::Str)
            }
            Year | Month | Day => {
                if let Known(dt) = tys[0] {
                    if dt != T::Date {
                        mismatch("a Date argument", dt);
                        return Unknown;
                    }
                }
                Known(T::Int)
            }
            Coalesce => {
                let mut acc: Option<DataType> = None;
                for t in tys {
                    if let Known(dt) = t {
                        acc = match acc {
                            None => Some(*dt),
                            // Runtime coalesce falls back to the first
                            // dtype and null-casts stragglers, so a
                            // non-unifiable mix is lossy but legal.
                            Some(prev) => Some(prev.unify(*dt).unwrap_or(prev)),
                        };
                    } else {
                        return Unknown;
                    }
                }
                acc.map(Known).unwrap_or(Unknown)
            }
            If => {
                if let Known(dt) = tys[0] {
                    if dt != T::Bool {
                        mismatch("a Bool condition", dt);
                    }
                }
                match (tys[1], tys[2]) {
                    (Known(a), Known(b)) => match a.unify(b) {
                        Some(dt) => Known(dt),
                        None => {
                            diags.push(
                                Diagnostic::new(
                                    Code::TypeMismatch,
                                    format!("if branches have incompatible types {a} and {b}"),
                                )
                                .with_span(span.clone()),
                            );
                            Unknown
                        }
                    },
                    _ => Unknown,
                }
            }
        }
    }
}

/// What the agg output column's dtype will be.
fn agg_output(func: AggFunc, input: DataType) -> DataType {
    use AggFunc::*;
    match func {
        Count | CountRecords | CountDistinct => DataType::Int,
        Sum => {
            if input == DataType::Int {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        Avg | Median | StdDev | Variance => DataType::Float,
        Min | Max | First | Last => input,
    }
}

/// An inferred expression type: a concrete dtype or statically unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprTy {
    Known(DataType),
    Unknown,
}
use ExprTy::{Known, Unknown};

/// The dtype inside a [`Known`], or `Str` as a harmless display default.
fn known(t: &ExprTy) -> DataType {
    match t {
        Known(dt) => *dt,
        Unknown => DataType::Str,
    }
}
