//! What the analyzer knows about the world: catalog table schemas and
//! block stats, saved artifacts, snapshots, registered models, and
//! file/URL fixtures.
//!
//! The context is a *pure snapshot* — building it from an [`Env`] reads
//! schemas from stored block metadata, never scans data — so analysis is
//! free under the §3 bytes-scanned cost model.
//!
//! Lookup case-sensitivity mirrors execution exactly: catalog, snapshot,
//! saved-artifact, model, and fixture lookups are exact-match (they back
//! `BTreeMap`/`HashMap` stores at runtime), while bare-name catalog
//! resolution ([`AnalysisContext::any_table`]) is case-insensitive, like
//! the platform's `UseDataset` → `LoadTable` rewrite.

use std::collections::BTreeMap;

use dc_engine::{ColumnStats, DataType, Schema};
use dc_skills::Env;
use dc_storage::BlockTable;

/// Zone-map statistics for one stored block: the per-column stats the
/// tri-state prune evaluator consumes, plus the block's payload bytes.
/// Columns follow the table's schema order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockStats {
    /// Rows stored in the block.
    pub rows: u64,
    /// Per-column payload bytes (shared dictionaries excluded).
    pub data_bytes: Vec<u64>,
    /// Per-column zone-map stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

/// Storage-layer statistics for one catalog table, lifted from
/// `dc-storage` block metadata. This is what the cost lints price scans
/// with.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Rows stored.
    pub rows: usize,
    /// Immutable blocks (micro-partitions); block sampling reads a
    /// fraction of these.
    pub blocks: usize,
    /// Total stored bytes — the full-scan price.
    pub bytes: u64,
    /// Dictionary cardinality of each dictionary-encoded string column.
    /// High cardinality (≈ row count) means the encoding buys nothing;
    /// the DC0203 lint flags it.
    pub dict_sizes: Vec<(String, usize)>,
    /// Per-block zone-map detail, in block order. Empty when unknown
    /// (builder-made contexts); the estimator then degrades to the
    /// whole-table bound instead of pruning.
    pub block_stats: Vec<BlockStats>,
    /// Per-column shared-dictionary bytes, in schema order (zero for
    /// non-dict columns). Empty when unknown.
    pub dict_bytes: Vec<u64>,
}

impl TableStats {
    /// Lift the full statistics of a stored [`BlockTable`] — whole-table
    /// counters plus the per-block zone maps the estimator prices scans
    /// with. Reads only metadata, never block payloads.
    pub fn from_block_table(bt: &BlockTable) -> TableStats {
        let cols = bt.column_names().len();
        let block_stats = (0..bt.num_blocks())
            .map(|bi| BlockStats {
                rows: bt.block_rows(bi) as u64,
                data_bytes: bt.block_data_bytes(bi).to_vec(),
                columns: (0..cols).map(|ci| bt.column_stats(bi, ci)).collect(),
            })
            .collect();
        TableStats {
            rows: bt.num_rows(),
            blocks: bt.num_blocks(),
            bytes: bt.total_bytes(),
            dict_sizes: bt.dict_sizes(),
            block_stats,
            dict_bytes: bt.dict_byte_sizes().to_vec(),
        }
    }
}

/// A registered model's statically known surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The column the model predicts.
    pub target: String,
    /// Feature columns the model reads at prediction time.
    pub features: Vec<String>,
    /// Dtype of the predicted column: `Float` for regressions, `Str` for
    /// classifiers (predicted class labels are rendered).
    pub output: DataType,
}

/// The analyzer's view of the execution environment.
#[derive(Debug, Clone, Default)]
pub struct AnalysisContext {
    /// Catalog tables: (database, table) → typed schema + stats.
    tables: BTreeMap<(String, String), (Schema, TableStats)>,
    /// Saved artifact tables by name.
    saved: BTreeMap<String, Schema>,
    /// Snapshots by name.
    snapshots: BTreeMap<String, Schema>,
    /// Registered models by name.
    models: BTreeMap<String, ModelInfo>,
    /// File fixtures: path → schema (parsed from the CSV header the same
    /// way `LoadFile` will).
    files: BTreeMap<String, Schema>,
    /// URL fixtures: URL → schema.
    urls: BTreeMap<String, Schema>,
    /// The submitting tenant's remaining `ByteBudget`, when known. Gates
    /// the DC0301 predicted-budget-exhaustion lint; `None` disables it.
    remaining_budget: Option<u64>,
    /// Capacity of the shared materialized cache, when known. Gates the
    /// DC0303 uncacheable-result lint; `None` disables it.
    cache_capacity: Option<u64>,
    /// The executor's operator-memory budget (the memory governor's
    /// byte budget), when known. Gates the DC0208 predicted-spill lint;
    /// `None` disables it.
    mem_budget: Option<u64>,
}

impl AnalysisContext {
    /// An empty context (nothing resolves).
    pub fn new() -> AnalysisContext {
        AnalysisContext::default()
    }

    /// Snapshot an execution environment: catalog schemas and block
    /// stats, saved artifacts, snapshots, models, and CSV fixtures.
    pub fn from_env(env: &Env) -> AnalysisContext {
        let mut ctx = AnalysisContext::new();
        for db_name in env.catalog.database_names() {
            let Ok(db) = env.catalog.database(db_name) else {
                continue;
            };
            for table_name in db.table_names() {
                let Ok(bt) = db.table(table_name) else {
                    continue;
                };
                let stats = TableStats::from_block_table(bt);
                ctx.add_table(db_name, table_name, bt.schema().clone(), stats);
            }
        }
        for (name, table) in env.saved_tables() {
            ctx.add_saved(name, table.schema().clone());
        }
        // `get` (not `read`) so building the context never meters a
        // snapshot read.
        for name in env.snapshots.names() {
            if let Ok(snap) = env.snapshots.get(name) {
                ctx.add_snapshot(name, snap.data.schema().clone());
            }
        }
        for model in env.models() {
            let output = match model.kind {
                dc_ml::ModelKind::Regression(_) => DataType::Float,
                dc_ml::ModelKind::Classification(_) => DataType::Str,
            };
            ctx.add_model(&model.name, &model.target, model.features.clone(), output);
        }
        // Fixture schemas come from the same CSV reader `LoadFile`/
        // `LoadUrl` use, so inferred dtypes match execution exactly.
        for (path, text) in env.files() {
            if let Ok(t) = dc_engine::csv::read_csv(text) {
                ctx.files.insert(path.to_string(), t.schema().clone());
            }
        }
        for (url, text) in env.urls() {
            if let Ok(t) = dc_engine::csv::read_csv(text) {
                ctx.urls.insert(url.to_string(), t.schema().clone());
            }
        }
        if let Some(cache) = &env.shared_cache {
            ctx.cache_capacity = Some(cache.capacity_bytes());
        }
        if let Some(memory) = &env.memory {
            ctx.mem_budget = Some(memory.governor.budget());
        }
        ctx
    }

    /// Declare how many budget bytes the submitting tenant has left.
    /// Enables the DC0301 predicted-budget-exhaustion lint.
    pub fn set_remaining_budget(&mut self, bytes: u64) -> &mut Self {
        self.remaining_budget = Some(bytes);
        self
    }

    /// Declare the shared materialized-cache capacity. Enables the
    /// DC0303 uncacheable-result lint. (`from_env` fills this
    /// automatically when the environment carries a shared cache.)
    pub fn set_cache_capacity(&mut self, bytes: u64) -> &mut Self {
        self.cache_capacity = Some(bytes);
        self
    }

    /// The tenant's remaining budget bytes, when declared.
    pub fn remaining_budget(&self) -> Option<u64> {
        self.remaining_budget
    }

    /// The materialized-cache capacity, when known.
    pub fn cache_capacity(&self) -> Option<u64> {
        self.cache_capacity
    }

    /// Declare the executor's operator-memory budget (the byte budget
    /// its memory governor admits transient join/group-by/sort state
    /// against). Enables the DC0208 predicted-spill lint.
    pub fn set_mem_budget(&mut self, bytes: u64) -> &mut Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// The executor's operator-memory budget, when declared.
    pub fn mem_budget(&self) -> Option<u64> {
        self.mem_budget
    }

    /// Register a catalog table.
    pub fn add_table(
        &mut self,
        database: &str,
        table: &str,
        schema: Schema,
        stats: TableStats,
    ) -> &mut Self {
        self.tables
            .insert((database.to_string(), table.to_string()), (schema, stats));
        self
    }

    /// Register a saved artifact table.
    pub fn add_saved(&mut self, name: &str, schema: Schema) -> &mut Self {
        self.saved.insert(name.to_string(), schema);
        self
    }

    /// Register a snapshot.
    pub fn add_snapshot(&mut self, name: &str, schema: Schema) -> &mut Self {
        self.snapshots.insert(name.to_string(), schema);
        self
    }

    /// Register a model.
    pub fn add_model(
        &mut self,
        name: &str,
        target: &str,
        features: Vec<String>,
        output: DataType,
    ) -> &mut Self {
        self.models.insert(
            name.to_string(),
            ModelInfo {
                target: target.to_string(),
                features,
                output,
            },
        );
        self
    }

    /// Register a file fixture by its (exact) path.
    pub fn add_file(&mut self, path: &str, schema: Schema) -> &mut Self {
        self.files.insert(path.to_string(), schema);
        self
    }

    /// Register a URL fixture by its (exact) URL.
    pub fn add_url(&mut self, url: &str, schema: Schema) -> &mut Self {
        self.urls.insert(url.to_string(), schema);
        self
    }

    /// Look up a catalog table (exact names, like the catalog itself).
    pub fn table(&self, database: &str, table: &str) -> Option<&(Schema, TableStats)> {
        self.tables.get(&(database.to_string(), table.to_string()))
    }

    /// Look up a catalog table by bare name across all databases,
    /// case-insensitively (the platform resolves `Use the dataset X`
    /// against the catalog when no binding or artifact matches).
    pub fn any_table(&self, table: &str) -> Option<&(Schema, TableStats)> {
        self.tables
            .iter()
            .find(|((_, t), _)| t.eq_ignore_ascii_case(table))
            .map(|(_, v)| v)
    }

    /// Look up a saved artifact (exact name, like `Env::saved_table`).
    pub fn saved(&self, name: &str) -> Option<&Schema> {
        self.saved.get(name)
    }

    /// Look up a snapshot (exact name, like the snapshot store).
    pub fn snapshot(&self, name: &str) -> Option<&Schema> {
        self.snapshots.get(name)
    }

    /// The exact name of a snapshot matching `name` case-insensitively,
    /// if one exists — used by the could-read-a-snapshot cost lint.
    pub fn snapshot_like(&self, name: &str) -> Option<&str> {
        self.snapshots
            .keys()
            .find(|k| k.eq_ignore_ascii_case(name))
            .map(|k| k.as_str())
    }

    /// Look up a model (exact name, like the model registry).
    pub fn model(&self, name: &str) -> Option<&ModelInfo> {
        self.models.get(name)
    }

    /// Look up a file fixture schema.
    pub fn file(&self, path: &str) -> Option<&Schema> {
        self.files.get(path)
    }

    /// Look up a URL fixture schema.
    pub fn url(&self, url: &str) -> Option<&Schema> {
        self.urls.get(url)
    }
}

/// The static half of the plan-time statistics contract: the analyzer's
/// snapshot answers the optimizer's questions exactly the way the live
/// [`Env`] does (same schema source, same dictionary cardinalities, same
/// per-block uniqueness proof), so the estimation pass prices the *same*
/// rewritten plan the executor runs.
impl dc_skills::PlanStats for AnalysisContext {
    fn table_schema(&self, database: &str, table: &str) -> Option<Schema> {
        self.table(database, table).map(|(s, _)| s.clone())
    }

    fn table_rows(&self, database: &str, table: &str) -> Option<u64> {
        self.table(database, table).map(|(_, st)| st.rows as u64)
    }

    fn column_distinct(&self, database: &str, table: &str, column: &str) -> Option<u64> {
        let (_, st) = self.table(database, table)?;
        st.dict_sizes
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(column))
            .map(|(_, n)| *n as u64)
    }

    fn column_unique(&self, database: &str, table: &str, column: &str) -> bool {
        let Some((schema, st)) = self.table(database, table) else {
            return false;
        };
        let Some(ci) = schema.index_of(column) else {
            return false;
        };
        let stats: Vec<ColumnStats> = st
            .block_stats
            .iter()
            .filter_map(|b| b.columns.get(ci).cloned())
            .collect();
        if stats.len() != st.block_stats.len() || st.block_stats.is_empty() {
            return false;
        }
        if stats.iter().map(|s| s.null_count).sum::<u64>() == 0 {
            if let Some((_, dict)) = st
                .dict_sizes
                .iter()
                .find(|(name, _)| name.eq_ignore_ascii_case(column))
            {
                if *dict == st.rows {
                    return true;
                }
            }
        }
        dc_skills::int_blocks_unique(&stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{DataType, Field};
    use dc_storage::{CloudDatabase, Pricing};

    #[test]
    fn from_env_snapshots_catalog_and_fixtures() {
        let mut env = Env::new();
        let t = dc_engine::csv::read_csv("region,price\nwest,1.5\neast,2.0\n").unwrap();
        let mut db = CloudDatabase::new("Main", Pricing::default_cloud());
        db.create_table_with_blocks("sales", &t, 1).unwrap();
        env.catalog.add_database(db).unwrap();
        env.add_file("nums.csv", "x,y\n1,2\n");
        env.snapshots
            .create("snap", t.clone(), "test", vec![], None)
            .unwrap();
        env.save_table("kept", t.clone());

        let ctx = AnalysisContext::from_env(&env);
        let (schema, stats) = ctx.table("Main", "sales").expect("exact lookup");
        assert_eq!(schema.field("price").unwrap().dtype, DataType::Float);
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.blocks, 2);
        assert!(stats.bytes > 0);
        assert_eq!(stats.dict_sizes, vec![("region".to_string(), 2)]);
        // Per-block zone detail rides along for the estimator.
        assert_eq!(stats.block_stats.len(), 2);
        assert_eq!(stats.block_stats[0].rows, 1);
        assert_eq!(stats.block_stats[0].columns.len(), 2);
        assert_eq!(stats.dict_bytes.len(), 2);
        assert_eq!(
            stats.bytes,
            stats
                .block_stats
                .iter()
                .flat_map(|b| &b.data_bytes)
                .sum::<u64>()
                + stats.dict_bytes.iter().sum::<u64>()
        );
        // Exact-match mirrors the catalog; bare-name resolution is the
        // case-insensitive platform path.
        assert!(ctx.table("main", "SALES").is_none());
        assert!(ctx.any_table("SALES").is_some());
        assert_eq!(
            ctx.file("nums.csv").unwrap().field("x").unwrap().dtype,
            DataType::Int
        );
        assert!(ctx.snapshot("snap").is_some());
        assert!(ctx.snapshot("SNAP").is_none());
        assert_eq!(ctx.snapshot_like("SNAP"), Some("snap"));
        assert!(ctx.saved("kept").is_some());
        assert!(ctx.saved("other").is_none());
    }

    #[test]
    fn builders_roundtrip() {
        let mut ctx = AnalysisContext::new();
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        ctx.add_saved("Art", schema.clone())
            .add_model("m", "a", vec![], DataType::Float)
            .add_url("http://x/y.csv", schema);
        assert!(ctx.saved("Art").is_some());
        assert_eq!(ctx.model("m").unwrap().target, "a");
        assert!(ctx.url("http://x/y.csv").is_some());
        assert!(ctx.url("http://other").is_none());
    }
}
