//! Pass 2: dataflow lints — dead nodes and duplicate sub-DAGs.
//!
//! Use-before-define (DC0103) lives in the schema pass, where dataset
//! resolution already happens; this module covers the whole-graph
//! properties that need the final node set: which nodes feed no target
//! (the serial executor would never run them, the parallel engines run
//! them for nothing) and which nodes recompute a sub-DAG that an
//! earlier node already computes (the structural cache deduplicates the
//! work, but the recipe carries redundant steps).

use std::collections::HashMap;

use dc_skills::{structural_ids, NodeId, SkillDag};

use crate::diag::{Code, Diagnostic, Span};

/// Run the dataflow lints for a DAG analyzed against `targets` (the
/// nodes whose results the pipeline actually delivers).
pub fn dataflow_pass(dag: &SkillDag, targets: &[NodeId], diags: &mut Vec<Diagnostic>) {
    dead_nodes(dag, targets, diags);
    duplicate_subdags(dag, diags);
}

/// DC0101: nodes outside the ancestor cone of every target.
fn dead_nodes(dag: &SkillDag, targets: &[NodeId], diags: &mut Vec<Diagnostic>) {
    let mut live = vec![false; dag.len()];
    for &t in targets {
        let Ok(ancestors) = dag.ancestors(t) else {
            continue; // bogus target id; nothing to mark
        };
        for id in ancestors {
            live[id] = true;
        }
    }
    for node in dag.nodes() {
        if !live[node.id] {
            diags.push(
                Diagnostic::new(
                    Code::DeadNode,
                    "step does not feed any analysis target and would never execute",
                )
                .with_span(Span::node(node.id, node.call.name())),
            );
        }
    }
}

/// DC0102: nodes whose (call, inputs) sub-DAG is structurally identical
/// to an earlier node's. The earliest node of each group is the
/// representative; later ones are flagged.
fn duplicate_subdags(dag: &SkillDag, diags: &mut Vec<Diagnostic>) {
    let ids = structural_ids(dag);
    let mut first: HashMap<u64, NodeId> = HashMap::new();
    for node in dag.nodes() {
        let Some(&sid) = ids.get(&node.id) else {
            continue;
        };
        match first.get(&sid) {
            None => {
                first.insert(sid, node.id);
            }
            Some(&original) => {
                diags.push(
                    Diagnostic::new(
                        Code::DuplicateSubDag,
                        format!(
                            "step recomputes the same sub-DAG as step {original}; the \
                             structural cache will reuse that result"
                        ),
                    )
                    .with_span(Span::node(node.id, node.call.name())),
                );
            }
        }
    }
}
