//! # dc-analyze — whole-pipeline static analysis (§2.2, §3, §4.5)
//!
//! DataChat plans an entire skill DAG before executing any of it, which
//! makes the platform unusually amenable to static analysis: every
//! dataset, column, model, and scan is named in the plan. This crate
//! analyzes a planned [`SkillDag`] *before* `Executor::run`, in three
//! passes over one shared [`Diagnostic`] framework:
//!
//! 1. **Schema & type propagation** ([`schema_pass`]) — infers each
//!    node's output schema from skill signatures and catalog metadata,
//!    rejecting unknown columns (`DC0002`), dtype mismatches (`DC0003`),
//!    and invalid composition (`DC0004`) with node-level provenance.
//! 2. **Dataflow lints** ([`dataflow`]) — dead nodes (`DC0101`),
//!    duplicate sub-DAGs (`DC0102`) via the executor's own structural
//!    interning, use-before-define (`DC0103`).
//! 3. **Cost lints** ([`cost`]) — bytes-scanned estimates from
//!    `dc-storage` block stats, flagging full scans that could be block
//!    samples (`DC0201`), snapshot reads (`DC0202`), and string columns
//!    whose dictionaries deduplicate nothing (`DC0203`).
//! 4. **Cost & cardinality estimation** ([`estimate`]) — propagates
//!    row-count intervals and scan-byte bounds through the planned DAG
//!    using the storage layer's own per-block zone maps and tri-state
//!    prune verdicts, deduped by structural sub-DAG identity. Emits
//!    `DC0301` (guaranteed budget exhaustion), `DC0302` (join output
//!    guaranteed to explode), and `DC0303` (result too large for the
//!    shared materialized cache). `dc-serve` admission reserves the
//!    estimator's byte bound instead of full table bytes.
//!
//! The same [`Diagnostic`] type is emitted by the GEL recipe validator
//! (`dc-gel`) and the NL2Code program checker (`dc-nl`), so every layer
//! of the platform reports findings in one shape with stable codes.
//!
//! The analyzer is *sound for accepted pipelines*: anything it models it
//! checks exactly the way the interpreter does (same case sensitivity,
//! same dtype rules, same naming), so an accepted DAG only fails at run
//! time for data-dependent reasons no schema can see. When semantics are
//! data-dependent (`Pivot` headers, `RunSql`), the schema becomes
//! unknown and downstream checking disables rather than guessing.

pub mod context;
pub mod cost;
pub mod dataflow;
pub mod diag;
pub mod estimate;
pub mod schema_pass;

use std::collections::HashMap;

use dc_skills::{NodeId, SkillDag};

pub use context::{AnalysisContext, BlockStats, ModelInfo, TableStats};
pub use cost::{cost_pass, NodeCost};
pub use dataflow::dataflow_pass;
pub use diag::{Code, Diagnostic, Fix, Severity, Span};
pub use estimate::{estimate_pass, estimate_steps, DagEstimates, NodeEstimate, StepEstimates};
pub use schema_pass::{schema_pass, FlowSchemas};

/// What the platform does with analyzer findings before executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AnalysisPolicy {
    /// Report diagnostics but execute anyway (errors surface at run
    /// time, as before the analyzer existed).
    #[default]
    Warn,
    /// Refuse to execute a pipeline with `Error`-severity diagnostics.
    Deny,
}

/// The result of analyzing one pipeline.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// All findings, in pass order (schema, dataflow, cost, estimate).
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred output schema per node (`None` = statically unknown).
    pub schemas: HashMap<NodeId, Option<dc_engine::Schema>>,
    /// Scan-cost estimates for storage-touching nodes.
    pub costs: Vec<NodeCost>,
    /// Row-count and scan-byte bounds per reachable node, with
    /// structurally deduped pipeline totals.
    pub estimates: DagEstimates,
}

impl Analysis {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any finding blocks execution.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.is_error())
    }

    /// The highest severity present, or `None` for a clean report.
    pub fn status(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Error findings grouped by the DAG node they reject, for the
    /// resilient executor's preflight: each entry is a node that must
    /// not run, with its (first) reason.
    pub fn rejections(&self) -> Vec<(NodeId, String)> {
        let mut seen: Vec<NodeId> = Vec::new();
        let mut out = Vec::new();
        for d in self.errors() {
            if let Some(node) = d.span.node {
                if !seen.contains(&node) {
                    seen.push(node);
                    out.push((node, format!("{}: {}", d.code, d.message)));
                }
            }
        }
        out
    }

    /// Findings with a given code, for tests and tooling.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Render the report as stable, line-oriented text (one diagnostic
    /// per line, then a summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let fixed = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Fixed)
            .count();
        out.push_str(&format!(
            "analysis: {errors} error(s), {warnings} warning(s), {fixed} auto-fixed\n"
        ));
        out
    }
}

/// Analyze a planned DAG against `targets` — the nodes whose results the
/// pipeline delivers (for a linear recipe, the last node). All three
/// passes run; the report is never short-circuited, so one call yields
/// every finding the analyzer can make.
pub fn analyze_dag(dag: &SkillDag, targets: &[NodeId], ctx: &AnalysisContext) -> Analysis {
    let mut diagnostics = Vec::new();
    let schemas = schema_pass::schema_pass(dag, ctx, &mut diagnostics);
    dataflow::dataflow_pass(dag, targets, &mut diagnostics);
    let costs = cost::cost_pass(dag, ctx, &mut diagnostics);
    cost::optimizer_lints(dag, targets, ctx, &mut diagnostics);
    let estimates = estimate::estimate_pass(dag, targets, ctx, &schemas, &mut diagnostics);
    Analysis {
        diagnostics,
        schemas,
        costs,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{AggFunc, AggSpec, DataType, Expr, Field, Schema};
    use dc_skills::SkillCall;

    fn sales_schema() -> Schema {
        Schema::new(vec![
            Field::new("order_id", DataType::Int),
            Field::new("region", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("quantity", DataType::Int),
            Field::new("order_date", DataType::Date),
        ])
        .unwrap()
    }

    fn ctx() -> AnalysisContext {
        let mut ctx = AnalysisContext::new();
        ctx.add_table(
            "Main",
            "sales",
            sales_schema(),
            TableStats {
                rows: 100,
                blocks: 4,
                bytes: 4096,
                ..TableStats::default()
            },
        );
        ctx
    }

    fn load(dag: &mut SkillDag) -> NodeId {
        dag.add(
            SkillCall::LoadTable {
                database: "Main".into(),
                table: "sales".into(),
            },
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn clean_pipeline_reports_nothing() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("price").gt(Expr::lit(1.0)),
                },
                vec![l],
            )
            .unwrap();
        let g = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![AggSpec {
                        func: AggFunc::Sum,
                        column: Some("price".into()),
                        output: "total".into(),
                    }],
                    for_each: vec!["region".into()],
                },
                vec![f],
            )
            .unwrap();
        let report = analyze_dag(&dag, &[g], &ctx());
        assert!(report.diagnostics.is_empty(), "{}", report.render());
        let schema = report.schemas[&g].as_ref().unwrap();
        assert_eq!(schema.names(), vec!["region", "total"]);
        assert_eq!(schema.field("total").unwrap().dtype, DataType::Float);
        assert_eq!(report.costs.len(), 1);
        assert_eq!(report.costs[0].bytes, 4096);
    }

    #[test]
    fn unknown_column_and_dead_node_and_costs() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let bad = dag
            .add(
                SkillCall::DescribeColumn {
                    column: "bogus".into(),
                },
                vec![l],
            )
            .unwrap();
        let dead = dag.add(SkillCall::CountRows, vec![l]).unwrap();
        let report = analyze_dag(&dag, &[bad], &ctx());
        assert!(report.has_errors());
        assert_eq!(report.with_code(Code::UnknownColumn).len(), 1);
        let dn = report.with_code(Code::DeadNode);
        assert_eq!(dn.len(), 1);
        assert_eq!(dn[0].span.node, Some(dead));
        let rejections = report.rejections();
        assert_eq!(rejections.len(), 1);
        assert_eq!(rejections[0].0, bad);
        assert!(
            rejections[0].1.starts_with("DC0002:"),
            "{}",
            rejections[0].1
        );
    }

    #[test]
    fn unprunable_filter_warns_with_a_prunable_rewrite() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        // `NOT (price <= 1)` defeats verbatim pushdown, but its
        // negation-normal-form `price > 1` would prune.
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("price").le(Expr::lit(1.0)).not(),
                },
                vec![l],
            )
            .unwrap();
        let c = dag.add(SkillCall::CountRows, vec![f]).unwrap();
        let report = analyze_dag(&dag, &[c], &ctx());
        let hits = report.with_code(Code::UnprunablePredicate);
        assert_eq!(hits.len(), 1, "{}", report.render());
        assert_eq!(hits[0].severity, Severity::Warning);
        assert_eq!(hits[0].span.node, Some(f));
        let fix = hits[0].fix.as_ref().expect("rewrite exists");
        let replacement = fix.replacement.as_ref().unwrap();
        assert!(replacement.contains("price"), "{replacement}");
        assert!(replacement.contains('>'), "{replacement}");

        // A genuinely unprunable predicate still warns, but without a
        // suggested rewrite — there is no equivalent prunable form.
        let mut dag2 = SkillDag::new();
        let l2 = load(&mut dag2);
        let f2 = dag2
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("price")
                        .add(Expr::col("quantity"))
                        .gt(Expr::lit(1.0)),
                },
                vec![l2],
            )
            .unwrap();
        let c2 = dag2.add(SkillCall::CountRows, vec![f2]).unwrap();
        let report = analyze_dag(&dag2, &[c2], &ctx());
        let hits = report.with_code(Code::UnprunablePredicate);
        assert_eq!(hits.len(), 1, "{}", report.render());
        assert!(hits[0].fix.is_none());

        // A prunable filter above a scan is exactly what pushdown wants.
        let mut dag3 = SkillDag::new();
        let l3 = load(&mut dag3);
        let f3 = dag3
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("price").gt(Expr::lit(1.0)),
                },
                vec![l3],
            )
            .unwrap();
        let c3 = dag3.add(SkillCall::CountRows, vec![f3]).unwrap();
        let report = analyze_dag(&dag3, &[c3], &ctx());
        assert!(report.with_code(Code::UnprunablePredicate).is_empty());
    }

    #[test]
    fn snapshot_prefix_reload_flagged_on_rescanning_duplicate() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let pred = Expr::col("price").gt(Expr::lit(1.0));
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: pred.clone(),
                },
                vec![l],
            )
            .unwrap();
        let snap = dag
            .add(
                SkillCall::Snapshot {
                    name: "pricey".into(),
                },
                vec![f],
            )
            .unwrap();
        // The same prefix rebuilt from a fresh scan after the snapshot.
        let l2 = load(&mut dag);
        let f2 = dag
            .add(SkillCall::KeepRows { predicate: pred }, vec![l2])
            .unwrap();
        let c = dag.add(SkillCall::CountRows, vec![f2]).unwrap();
        let report = analyze_dag(&dag, &[snap, c], &ctx());
        let hits = report.with_code(Code::SnapshotPrefixReload);
        assert_eq!(hits.len(), 1, "{}", report.render());
        assert_eq!(hits[0].severity, Severity::Warning);
        assert_eq!(hits[0].span.node, Some(f2));
        let fix = hits[0].fix.as_ref().expect("snapshot rewrite");
        assert_eq!(fix.replacement.as_deref(), Some("Use the snapshot pricey"));
        // The duplicates themselves stay DC0102's findings.
        assert_eq!(report.with_code(Code::DuplicateSubDag).len(), 2);
    }

    #[test]
    fn policy_default_is_warn() {
        assert_eq!(AnalysisPolicy::default(), AnalysisPolicy::Warn);
    }

    #[test]
    fn high_cardinality_dict_flagged() {
        let mut ctx = AnalysisContext::new();
        ctx.add_table(
            "Main",
            "sales",
            sales_schema(),
            TableStats {
                rows: 1000,
                blocks: 4,
                bytes: 65_536,
                // order_id-like column: ~one distinct string per row.
                dict_sizes: vec![("region".into(), 950), ("product".into(), 12)],
                ..TableStats::default()
            },
        );
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let c = dag.add(SkillCall::CountRows, vec![l]).unwrap();
        let report = analyze_dag(&dag, &[c], &ctx);
        let hits = report.with_code(Code::HighCardinalityDict);
        assert_eq!(hits.len(), 1, "{}", report.render());
        assert_eq!(hits[0].severity, Severity::Warning);
        assert_eq!(hits[0].span.node, Some(l));
        assert!(hits[0].message.contains("region"), "{}", hits[0].message);
        // Under the 100-row floor nothing fires even at full cardinality.
        let mut small = AnalysisContext::new();
        small.add_table(
            "Main",
            "sales",
            sales_schema(),
            TableStats {
                rows: 50,
                blocks: 1,
                bytes: 512,
                dict_sizes: vec![("region".into(), 50)],
                ..TableStats::default()
            },
        );
        let report = analyze_dag(&dag, &[c], &small);
        assert!(report.with_code(Code::HighCardinalityDict).is_empty());
    }
}
