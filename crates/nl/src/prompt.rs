//! The prompt composer (§4.4).
//!
//! Assembles the four prompt sections the paper lists — API
//! documentation, examples, dataset schema + semantic information, and
//! the user intent — under a token budget, trading examples for semantic
//! context on complex queries ("the prompt composer can decide to omit
//! examples in favor of additional information from the semantic layer").

use crate::examples::{Example, ExampleLibrary};
use crate::semantic::{tokenize, SchemaHints, ScoredConcept, SemanticLayer};

/// A composed prompt: structured (for the simulated model and for tests)
/// and renderable as text (what a hosted LLM would receive).
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// Condensed API documentation (function names + signatures).
    pub api_doc: String,
    /// Selected few-shot examples.
    pub examples: Vec<Example>,
    /// Schema hints for the candidate datasets.
    pub schema: SchemaHints,
    /// Retrieved semantic concepts, most relevant first.
    pub concepts: Vec<ScoredConcept>,
    /// The user's natural-language intent.
    pub intent: String,
}

impl Prompt {
    /// Approximate token count (whitespace tokens — the budget unit).
    pub fn token_count(&self) -> usize {
        self.render().split_whitespace().count()
    }

    /// Render the full prompt text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("### DataChat Python API\n");
        s.push_str(&self.api_doc);
        s.push_str("\n\n### Examples\n");
        for e in &self.examples {
            s.push_str(&e.render());
            s.push_str("\n\n");
        }
        s.push_str("### Schema\n");
        s.push_str(&self.schema.render());
        if !self.concepts.is_empty() {
            s.push_str("\n\n### Domain knowledge\n");
            for c in &self.concepts {
                s.push_str(&c.concept.render());
                s.push('\n');
            }
        }
        s.push_str("\n### Question\nQ: ");
        s.push_str(&self.intent);
        s.push_str("\nA:");
        s
    }
}

/// The condensed API documentation section (§4.4 item 1: "the names of
/// all the functions in the DataChat Python API, and their signatures").
pub fn api_doc() -> String {
    [
        "dataset.filter(condition: str)",
        "dataset.select(columns: list[str])",
        "dataset.drop_columns(columns: list[str])",
        "dataset.with_column(name: str, expression: str)",
        "dataset.with_constant(name: str, value)",
        "dataset.compute(aggregates: list[Agg], for_each: list[str], names: list[str])",
        "dataset.pivot(index: str, columns: str, values: str, agg: str)",
        "dataset.sort(by: list[str], ascending: list[bool])",
        "dataset.top(n: int, by: str)",
        "dataset.head(n: int)",
        "dataset.distinct(columns: list[str] = [])",
        "dataset.dropna(columns: list[str] = [])",
        "dataset.fillna(column: str, value)",
        "dataset.sample(fraction: float, seed: int = 42)",
        "dataset.concat(other: str, remove_duplicates: bool = False)",
        "dataset.join(other: str, on: list[str], how: str = 'inner')",
        "dataset.visualize(kpi: str, by: list[str] = [])",
        "dataset.plot(chart: str, x: str, y: str, color: str, size: str, for_each: str)",
        "dataset.train_model(target: str, features: list[str], method: str = 'auto')",
        "dataset.predict(model: str)",
        "dataset.predict_time_series(measures: list[str], horizon: int, time_column: str)",
        "dataset.detect_outliers(column: str, method: str = 'zscore')",
        "dataset.cluster(k: int, features: list[str])",
        "dataset.describe(column: str = None)",
        "Agg constructors: Count(col), Sum(col), Average(col), Median(col), Min(col), Max(col), CountDistinct(col), StdDev(col)",
    ]
    .join("\n")
}

/// Composer configuration. The ablation bench toggles `use_examples` and
/// `use_semantics` to reproduce §4.2/§4.3's claims about context quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromptComposer {
    /// Total prompt token budget ("LLMs can only process a fixed number
    /// of tokens").
    pub token_budget: usize,
    /// Cap on few-shot examples for simple queries.
    pub max_examples: usize,
    /// Cap on retrieved semantic concepts.
    pub max_concepts: usize,
    /// Ablation switch: include retrieved examples.
    pub use_examples: bool,
    /// Ablation switch: include the semantic layer.
    pub use_semantics: bool,
}

impl Default for PromptComposer {
    fn default() -> Self {
        PromptComposer {
            token_budget: 900,
            max_examples: 4,
            max_concepts: 5,
            use_examples: true,
            use_semantics: true,
        }
    }
}

impl PromptComposer {
    /// Estimate intent complexity: longer, clause-heavy questions demand
    /// more solution steps (§4: "performance of LLMs degrades as the
    /// number of solution steps needed for a task increases").
    pub fn intent_complexity(intent: &str) -> usize {
        let tokens = tokenize(intent).len();
        let clauses = intent.to_lowercase().split([',', ';']).count()
            + ["for each", "then", "and then", "sorted", "top", "join"]
                .iter()
                .filter(|k| intent.to_lowercase().contains(**k))
                .count();
        tokens + 3 * clauses
    }

    /// Compose a prompt for `intent`.
    pub fn compose(
        &self,
        intent: &str,
        schema: &SchemaHints,
        semantics: &SemanticLayer,
        library: &ExampleLibrary,
    ) -> Prompt {
        // Trade-off: complex queries get fewer examples, more concepts.
        let complexity = Self::intent_complexity(intent);
        let (n_examples, n_concepts) = if complexity > 20 {
            (
                self.max_examples.saturating_sub(2).max(1),
                self.max_concepts + 2,
            )
        } else {
            (self.max_examples, self.max_concepts)
        };

        let examples: Vec<Example> = if self.use_examples {
            library
                .select(intent, n_examples)
                .into_iter()
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        let concepts = if self.use_semantics {
            semantics.retrieve(intent, n_concepts)
        } else {
            Vec::new()
        };

        let mut prompt = Prompt {
            api_doc: api_doc(),
            examples,
            schema: schema.clone(),
            concepts,
            intent: intent.to_string(),
        };
        // Enforce the budget by dropping the least-similar examples first
        // (they're appended in rank order), then trailing concepts.
        while prompt.token_count() > self.token_budget && !prompt.examples.is_empty() {
            prompt.examples.pop();
        }
        while prompt.token_count() > self.token_budget && prompt.concepts.len() > 1 {
            prompt.concepts.pop();
        }
        prompt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaHints {
        SchemaHints::single(
            "sales",
            vec![
                "order_id".into(),
                "region".into(),
                "price".into(),
                "PurchaseStatus".into(),
            ],
        )
    }

    #[test]
    fn prompt_has_all_four_sections() {
        let c = PromptComposer::default();
        let p = c.compose(
            "How many purchases were successful",
            &schema(),
            &SemanticLayer::sales_demo(),
            &ExampleLibrary::builtin(),
        );
        let text = p.render();
        assert!(text.contains("### DataChat Python API"));
        assert!(text.contains("### Examples"));
        assert!(text.contains("### Schema"));
        assert!(text.contains("### Domain knowledge"));
        assert!(text.contains("Q: How many purchases were successful"));
        assert!(text.contains("PurchaseStatus = 'Successful'"));
        assert!(!p.examples.is_empty());
    }

    #[test]
    fn budget_drops_examples_first() {
        let generous = PromptComposer::default();
        let lib = ExampleLibrary::builtin();
        let sem = SemanticLayer::sales_demo();
        let big = generous.compose("How many orders per region", &schema(), &sem, &lib);
        assert!(!big.examples.is_empty());
        // A budget just below the full prompt's size must shed examples.
        let tight = PromptComposer {
            token_budget: big.token_count().saturating_sub(10),
            ..PromptComposer::default()
        };
        let small = tight.compose("How many orders per region", &schema(), &sem, &lib);
        assert!(small.examples.len() < big.examples.len());
        assert!(small.token_count() < big.token_count());
    }

    #[test]
    fn complex_intent_shifts_budget_to_semantics() {
        let c = PromptComposer::default();
        let lib = ExampleLibrary::builtin();
        let sem = SemanticLayer::sales_demo();
        let simple = c.compose("count orders", &schema(), &sem, &lib);
        let complex = c.compose(
            "for the successful purchases, compute the total revenue for each region and product, sorted by revenue, then keep the top 5",
            &schema(),
            &sem,
            &lib,
        );
        assert!(complex.examples.len() <= simple.examples.len());
    }

    #[test]
    fn ablation_switches() {
        let no_ex = PromptComposer {
            use_examples: false,
            ..PromptComposer::default()
        };
        let p = no_ex.compose(
            "count orders",
            &schema(),
            &SemanticLayer::sales_demo(),
            &ExampleLibrary::builtin(),
        );
        assert!(p.examples.is_empty());
        let no_sem = PromptComposer {
            use_semantics: false,
            ..PromptComposer::default()
        };
        let p = no_sem.compose(
            "successful purchases",
            &schema(),
            &SemanticLayer::sales_demo(),
            &ExampleLibrary::builtin(),
        );
        assert!(p.concepts.is_empty());
    }

    #[test]
    fn intent_complexity_monotone_in_clauses() {
        let a = PromptComposer::intent_complexity("count orders");
        let b = PromptComposer::intent_complexity(
            "count orders for each region, then keep the top 3 sorted by count",
        );
        assert!(b > a + 5);
    }
}
