//! Phrase-based translation (§4.8).
//!
//! "The input text consists of predefined phrases ... extracting
//! information from user utterances is just a lookup of the concepts
//! (phrases) represented in the semantic layer." Drives the `Visualize`
//! functionality: `Visualize <KPI> <grouping phrase> <filter phrase>`,
//! with `and`/`or` combining filter phrases. Deterministic matching is
//! the point — "higher accuracy in translating the intent to the
//! response".

use dc_engine::Expr;
use dc_skills::SkillCall;

use crate::error::{NlError, Result};
use crate::semantic::{ConceptKind, SchemaHints, SemanticLayer};

/// Result of a phrase translation: the skill calls plus which phrases
/// were consumed (for transparency).
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseTranslation {
    pub calls: Vec<SkillCall>,
    pub matched_phrases: Vec<String>,
}

/// Translate a `Visualize ...` utterance using only deterministic phrase
/// lookups. Grammar:
///
/// ```text
/// Visualize <KPI> [by <grouping columns>] [where <filter phrases>]
/// filter phrases := phrase (("and" | "or") phrase)*
/// ```
///
/// The KPI may be a raw column, a defined metric (expanded into a
/// computed column), or a defined phrase. Unknown phrases are errors —
/// the phrase layer never guesses (that is the LLM path's job).
pub fn translate_visualize(
    input: &str,
    semantics: &SemanticLayer,
    schema: &SchemaHints,
) -> Result<PhraseTranslation> {
    let trimmed = input.trim();
    let rest = trimmed
        .strip_prefix("Visualize")
        .or_else(|| trimmed.strip_prefix("visualize"))
        .ok_or_else(|| NlError::translation("phrase input must start with Visualize"))?
        .trim();

    // Split off the filter phrase first, then the grouping phrase.
    let (head, filter_part) = match split_marker(rest, " where ") {
        Some((h, f)) => (h, Some(f)),
        None => (rest, None),
    };
    let (kpi_part, group_part) = match split_marker(head, " by ") {
        Some((k, g)) => (k, Some(g)),
        None => (head, None),
    };

    let mut calls: Vec<SkillCall> = Vec::new();
    let mut matched: Vec<String> = Vec::new();

    // Filters: deterministic semantic-layer lookups joined by and/or.
    if let Some(filters) = filter_part {
        let predicate = parse_filter_phrases(filters, semantics, &mut matched)?;
        calls.push(SkillCall::KeepRows { predicate });
    }

    // KPI resolution.
    let kpi_part = kpi_part.trim();
    let kpi: String = if column_exists(schema, kpi_part) {
        kpi_part.to_string()
    } else if let Some(concept) = semantics.lookup_phrase(kpi_part) {
        matched.push(concept.name.clone());
        match &concept.kind {
            ConceptKind::Metric { formula } => {
                // Materialize the metric formula as a column to visualize.
                let inner = formula
                    .trim()
                    .strip_prefix("sum(")
                    .and_then(|r| r.strip_suffix(')'))
                    .unwrap_or(formula);
                let expr =
                    dc_sql::parse_expr(inner).map_err(|e| NlError::translation(e.to_string()))?;
                let name = concept.name.replace(' ', "_");
                calls.push(SkillCall::CreateColumn {
                    name: name.clone(),
                    expr,
                });
                name
            }
            ConceptKind::Dimension { column } => column.clone(),
            ConceptKind::ValueMapping { predicate } => {
                // A KPI phrase that is a predicate: filter, then count.
                let expr = dc_sql::parse_expr(predicate)
                    .map_err(|e| NlError::translation(e.to_string()))?;
                calls.push(SkillCall::KeepRows { predicate: expr });
                // Fall back to counting records of the filtered set; the
                // Visualize skill handles a synthetic constant KPI poorly,
                // so use the predicate's first column.
                let mut cols = Vec::new();
                dc_sql::parse_expr(predicate)
                    .map_err(|e| NlError::translation(e.to_string()))?
                    .referenced_columns(&mut cols);
                cols.first()
                    .cloned()
                    .ok_or_else(|| NlError::translation("phrase predicate names no column"))?
            }
            ConceptKind::Hierarchy { levels } => levels
                .first()
                .cloned()
                .ok_or_else(|| NlError::translation("empty hierarchy"))?,
            ConceptKind::Annotation { column, .. } => column.clone(),
        }
    } else {
        return Err(NlError::translation(format!(
            "unknown KPI phrase {kpi_part:?} (not a column or defined phrase)"
        )));
    };

    // Grouping columns: raw columns or dimension phrases.
    let mut by: Vec<String> = Vec::new();
    if let Some(group) = group_part {
        for item in dc_gel::parse_list(group) {
            if column_exists(schema, &item) {
                by.push(item);
            } else if let Some(c) = semantics.lookup_phrase(&item) {
                matched.push(c.name.clone());
                match &c.kind {
                    ConceptKind::Dimension { column } => by.push(column.clone()),
                    ConceptKind::Hierarchy { levels } => {
                        by.extend(levels.first().cloned());
                    }
                    _ => {
                        return Err(NlError::translation(format!(
                            "phrase {item:?} is not usable as a grouping"
                        )))
                    }
                }
            } else {
                return Err(NlError::translation(format!(
                    "unknown grouping phrase {item:?}"
                )));
            }
        }
    }

    calls.push(SkillCall::Visualize { kpi, by });
    Ok(PhraseTranslation {
        calls,
        matched_phrases: matched,
    })
}

fn split_marker<'a>(s: &'a str, marker: &str) -> Option<(&'a str, &'a str)> {
    let lower = s.to_lowercase();
    lower
        .find(marker)
        .map(|pos| (s[..pos].trim(), s[pos + marker.len()..].trim()))
}

fn column_exists(schema: &SchemaHints, name: &str) -> bool {
    schema
        .all_columns()
        .iter()
        .any(|c| c.eq_ignore_ascii_case(name.trim()))
}

/// Parse `phrase (and|or phrase)*` where each phrase is a semantic-layer
/// value mapping (or a raw SQL condition as a convenience).
fn parse_filter_phrases(
    text: &str,
    semantics: &SemanticLayer,
    matched: &mut Vec<String>,
) -> Result<Expr> {
    // Split on standalone and/or, preserving the connective order
    // (left-associative).
    let mut parts: Vec<(Option<&str>, String)> = Vec::new(); // (connective, phrase)
    let mut current = String::new();
    let mut pending_conn: Option<&str> = None;
    for word in text.split_whitespace() {
        match word.to_lowercase().as_str() {
            "and" | "or" if !current.is_empty() => {
                parts.push((pending_conn, std::mem::take(&mut current)));
                pending_conn = if word.eq_ignore_ascii_case("and") {
                    Some("and")
                } else {
                    Some("or")
                };
            }
            _ => {
                if !current.is_empty() {
                    current.push(' ');
                }
                current.push_str(word);
            }
        }
    }
    if !current.is_empty() {
        parts.push((pending_conn, current));
    }
    if parts.is_empty() {
        return Err(NlError::translation("empty filter phrase"));
    }

    let mut expr: Option<Expr> = None;
    for (conn, phrase) in parts {
        let piece = if let Some(c) = semantics.lookup_phrase(&phrase) {
            matched.push(c.name.clone());
            match &c.kind {
                ConceptKind::ValueMapping { predicate } => dc_sql::parse_expr(predicate)
                    .map_err(|e| NlError::translation(e.to_string()))?,
                _ => {
                    return Err(NlError::translation(format!(
                        "phrase {phrase:?} is not a filter"
                    )))
                }
            }
        } else {
            // Raw condition convenience ("price > 100").
            dc_gel::parse_condition(&phrase)
                .map_err(|_| NlError::translation(format!("unknown filter phrase {phrase:?}")))?
        };
        expr = Some(match (expr, conn) {
            (None, _) => piece,
            (Some(acc), Some("or")) => acc.or(piece),
            (Some(acc), _) => acc.and(piece),
        });
    }
    Ok(expr.expect("non-empty parts"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaHints {
        SchemaHints::single(
            "sales",
            vec![
                "region".into(),
                "product".into(),
                "price".into(),
                "quantity".into(),
                "discount".into(),
                "PurchaseStatus".into(),
            ],
        )
    }

    #[test]
    fn kpi_column_with_grouping() {
        let t = translate_visualize(
            "Visualize price by region, product",
            &SemanticLayer::sales_demo(),
            &schema(),
        )
        .unwrap();
        assert_eq!(t.calls.len(), 1);
        match &t.calls[0] {
            SkillCall::Visualize { kpi, by } => {
                assert_eq!(kpi, "price");
                assert_eq!(by, &vec!["region".to_string(), "product".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metric_kpi_expands_formula() {
        let t = translate_visualize(
            "Visualize revenue by region",
            &SemanticLayer::sales_demo(),
            &schema(),
        )
        .unwrap();
        assert_eq!(t.calls.len(), 2);
        match &t.calls[0] {
            SkillCall::CreateColumn { name, expr } => {
                assert_eq!(name, "revenue");
                assert!(expr.to_sql().contains("discount"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.matched_phrases.contains(&"revenue".to_string()));
    }

    #[test]
    fn filter_phrases_combine_with_and_or() {
        let mut sl = SemanticLayer::sales_demo();
        sl.define_phrase("big orders", "quantity > 10");
        let t = translate_visualize(
            "Visualize price by region where successful purchases and big orders",
            &sl,
            &schema(),
        )
        .unwrap();
        match &t.calls[0] {
            SkillCall::KeepRows { predicate } => {
                let sql = predicate.to_sql();
                assert!(sql.contains("PurchaseStatus = 'Successful'"), "{sql}");
                assert!(sql.contains("quantity > 10"), "{sql}");
                assert!(sql.contains("AND"), "{sql}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let t = translate_visualize(
            "Visualize price where successful purchases or unsuccessful purchases",
            &sl,
            &schema(),
        )
        .unwrap();
        match &t.calls[0] {
            SkillCall::KeepRows { predicate } => {
                assert!(predicate.to_sql().contains("OR"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn raw_condition_fallback_in_filter() {
        let t = translate_visualize(
            "Visualize price by region where price > 100",
            &SemanticLayer::sales_demo(),
            &schema(),
        )
        .unwrap();
        match &t.calls[0] {
            SkillCall::KeepRows { predicate } => {
                assert_eq!(predicate.to_sql(), "(price > 100)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_phrases_are_errors_not_guesses() {
        let r = translate_visualize(
            "Visualize profit by region",
            &SemanticLayer::sales_demo(),
            &schema(),
        );
        assert!(r.is_err(), "unknown KPI must not be guessed");
        let r = translate_visualize(
            "Visualize price by mystery_dimension",
            &SemanticLayer::sales_demo(),
            &schema(),
        );
        assert!(r.is_err());
        let r = translate_visualize(
            "Visualize price where the vibes are good",
            &SemanticLayer::sales_demo(),
            &schema(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn dimension_phrase_as_grouping() {
        let mut sl = SemanticLayer::sales_demo();
        sl.add(crate::semantic::Concept {
            name: "territory".into(),
            keywords: vec![],
            kind: ConceptKind::Dimension {
                column: "region".into(),
            },
        });
        let t = translate_visualize("Visualize price by territory", &sl, &schema()).unwrap();
        match &t.calls[0] {
            SkillCall::Visualize { by, .. } => assert_eq!(by, &vec!["region".to_string()]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn must_start_with_visualize() {
        assert!(translate_visualize("Show me stuff", &SemanticLayer::new(), &schema()).is_err());
    }
}
