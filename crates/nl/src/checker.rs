//! The program checker (§4.5).
//!
//! "Converts the LLM-generated analytics program into an abstract
//! representation, keeping track of data and functional dependencies ...
//! performs syntax and type checks and validates the composition of
//! functions ... streamlines the analytics program by removing redundant
//! lines of code such as print statements."

use std::collections::BTreeMap;

use dc_skills::SkillCall;

use crate::error::{NlError, Result};
use crate::pyapi::{parse_pyapi, PyProgram, PyStatement};
use crate::semantic::SchemaHints;

// The checker reports through the platform-wide diagnostics framework:
// stable `DC0xxx` codes, shared severities, and statement-level spans,
// uniform with the DAG analyzer and the GEL validator.
pub use dc_analyze::{Code, Diagnostic, Severity, Span};

/// One checker finding — an alias for the shared diagnostic type.
pub type CheckIssue = Diagnostic;

/// A validated (and streamlined) program.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    pub program: PyProgram,
    pub issues: Vec<CheckIssue>,
}

impl CheckedProgram {
    /// Whether the program survived with no hard errors.
    pub fn is_valid(&self) -> bool {
        !self.issues.iter().any(|i| i.severity == Severity::Error)
    }

    /// Hard errors only.
    pub fn errors(&self) -> Vec<&CheckIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Error)
            .collect()
    }

    /// Findings that still need attention — everything except the
    /// auto-repaired [`Severity::Fixed`] ones, which the pipeline
    /// already healed.
    pub fn unresolved(&self) -> Vec<&CheckIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity != Severity::Fixed)
            .collect()
    }

    /// Number of findings the checker repaired automatically.
    pub fn fixed_count(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Fixed)
            .count()
    }
}

/// Columns an expression references.
fn expr_columns(e: &dc_engine::Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.referenced_columns(&mut out);
    out
}

/// Columns a call reads (for reference checking) and creates (tracked
/// forward as the statement's schema evolves).
fn call_columns(call: &SkillCall) -> (Vec<String>, Vec<String>) {
    use SkillCall::*;
    match call {
        KeepRows { predicate } | DropRows { predicate } => (expr_columns(predicate), vec![]),
        KeepColumns { columns } | DropColumns { columns } => (columns.clone(), vec![]),
        RenameColumn { from, to } => (vec![from.clone()], vec![to.clone()]),
        CreateColumn { name, expr } => (expr_columns(expr), vec![name.clone()]),
        CreateConstantColumn { name, .. } => (vec![], vec![name.clone()]),
        Compute { aggs, for_each } => {
            let mut reads: Vec<String> = for_each.clone();
            let mut creates = Vec::new();
            for a in aggs {
                if let Some(c) = &a.column {
                    reads.push(c.clone());
                }
                creates.push(a.output.clone());
            }
            (reads, creates)
        }
        Pivot {
            index,
            columns,
            values,
            ..
        } => (vec![index.clone(), columns.clone(), values.clone()], vec![]),
        Sort { keys } => (keys.iter().map(|(c, _)| c.clone()).collect(), vec![]),
        Top { column, .. } => (vec![column.clone()], vec![]),
        Join { left_on, .. } => (left_on.clone(), vec![]),
        Distinct { columns } | DropMissing { columns } => (columns.clone(), vec![]),
        FillMissing { column, .. } => (vec![column.clone()], vec![]),
        BinColumn {
            column,
            width,
            name,
        } => (
            vec![column.clone()],
            vec![name
                .clone()
                .unwrap_or_else(|| format!("{column}Int{width}"))],
        ),
        TrainModel {
            target, features, ..
        } => {
            let mut reads = vec![target.clone()];
            reads.extend(features.clone());
            (reads, vec![])
        }
        PredictTimeSeries {
            measures,
            time_column,
            ..
        } => {
            let mut reads = measures.clone();
            reads.push(time_column.clone());
            (reads, vec!["RecordType".to_string()])
        }
        DetectOutliers { column, .. } => {
            (vec![column.clone()], vec![format!("IsOutlier_{column}")])
        }
        Cluster { features, .. } => (features.clone(), vec!["Cluster".to_string()]),
        Visualize { kpi, by } => {
            let mut reads = vec![kpi.clone()];
            reads.extend(by.clone());
            (reads, vec![])
        }
        Plot {
            x,
            y,
            color,
            size,
            for_each,
            ..
        } => (
            [x, y, color, size, for_each]
                .into_iter()
                .flatten()
                .cloned()
                .collect(),
            vec![],
        ),
        DescribeColumn { column } => (vec![column.clone()], vec![]),
        _ => (vec![], vec![]),
    }
}

/// Validate and streamline a generated program against schema hints.
///
/// Checks, in order:
/// 1. syntax (parse failure is a hard [`NlError`]);
/// 2. dead-code removal: print statements and assignments never used;
/// 3. dataset references resolve to schema tables or earlier assignments;
/// 4. column references resolve against the evolving per-statement schema
///    (projection narrows it; compute replaces it; created columns
///    extend it);
/// 5. composition rules (e.g. a KeepColumns after Compute must name
///    produced columns — covered by the schema evolution in 4).
pub fn check(source: &str, schema: &SchemaHints) -> Result<CheckedProgram> {
    let parsed = parse_pyapi(source)?;
    let mut issues: Vec<CheckIssue> = Vec::new();

    // 2a. Strip prints. Spans are 1-based statement ordinals in the
    // *generated* program, which is what the user sees in the trace.
    let mut statements: Vec<PyStatement> = Vec::new();
    for (i, st) in parsed.statements.into_iter().enumerate() {
        if st.is_print {
            issues.push(
                Diagnostic::new(Code::RemovedPrint, "removed print statement")
                    .with_span(Span::step(i + 1, "print")),
            );
        } else {
            statements.push(st);
        }
    }
    // 2b. Strip assignments whose target is never used later.
    let used_roots: Vec<String> = statements.iter().map(|s| s.root.clone()).collect();
    let mut kept: Vec<PyStatement> = Vec::new();
    for (i, st) in statements.iter().enumerate() {
        if let Some(target) = &st.target {
            let used_later = used_roots[i + 1..]
                .iter()
                .any(|r| r.eq_ignore_ascii_case(target));
            let is_last = i == statements.len() - 1;
            if !used_later && !is_last {
                issues.push(
                    Diagnostic::new(
                        Code::RemovedUnusedCode,
                        format!("removed unused assignment to {target}"),
                    )
                    .with_span(Span::step(i + 1, target.clone())),
                );
                continue;
            }
        }
        kept.push(st.clone());
    }

    // 3 + 4. Reference and composition checks with schema evolution.
    let mut var_schemas: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (si, st) in kept.iter().enumerate() {
        let root_lower = st.root.to_lowercase();
        let mut cols: Vec<String> = if let Some(cols) = var_schemas.get(&root_lower) {
            cols.clone()
        } else if let Some((_, cols)) = st.schema_lookup(schema) {
            cols
        } else {
            issues.push(
                Diagnostic::new(
                    Code::UnknownDataset,
                    format!("unknown dataset {:?}", st.root),
                )
                .with_span(Span::step(si + 1, st.root.clone())),
            );
            continue;
        };
        for call in &st.calls {
            let (reads, creates) = call_columns(call);
            for r in &reads {
                if !cols.iter().any(|c| c.eq_ignore_ascii_case(r)) {
                    issues.push(
                        Diagnostic::new(
                            Code::UnknownColumn,
                            format!(
                                "column {r:?} is not available at step {} (have: {})",
                                call.name(),
                                cols.join(", ")
                            ),
                        )
                        .with_span(Span::step(si + 1, call.name())),
                    );
                }
            }
            // Evolve the schema.
            match call {
                SkillCall::KeepColumns { columns } => cols = columns.clone(),
                SkillCall::DropColumns { columns } => {
                    cols.retain(|c| !columns.iter().any(|d| d.eq_ignore_ascii_case(c)));
                }
                SkillCall::RenameColumn { from, to } => {
                    for c in cols.iter_mut() {
                        if c.eq_ignore_ascii_case(from) {
                            *c = to.clone();
                        }
                    }
                }
                SkillCall::Compute { aggs, for_each } => {
                    cols = for_each.clone();
                    cols.extend(aggs.iter().map(|a| a.output.clone()));
                }
                SkillCall::PredictTimeSeries {
                    measures,
                    time_column,
                    ..
                } => {
                    cols = vec![time_column.clone()];
                    cols.extend(measures.clone());
                    cols.push("RecordType".to_string());
                }
                SkillCall::Join {
                    other, right_on, ..
                } => {
                    if let Some(other_cols) = lookup_table(schema, other)
                        .or_else(|| var_schemas.get(&other.to_lowercase()).cloned())
                    {
                        for c in other_cols {
                            let is_key = right_on.iter().any(|k| k.eq_ignore_ascii_case(&c));
                            if !is_key && !cols.iter().any(|e| e.eq_ignore_ascii_case(&c)) {
                                cols.push(c);
                            }
                        }
                    } else {
                        issues.push(
                            Diagnostic::new(
                                Code::UnknownDataset,
                                format!("unknown join dataset {other:?}"),
                            )
                            .with_span(Span::step(si + 1, call.name())),
                        );
                    }
                }
                _ => {
                    for c in creates {
                        if !cols.iter().any(|e| e.eq_ignore_ascii_case(&c)) {
                            cols.push(c);
                        }
                    }
                }
            }
        }
        // Only assignments bind names; a bare chain leaves the root's
        // schema untouched (method chains do not mutate their receiver).
        if let Some(target) = &st.target {
            var_schemas.insert(target.to_lowercase(), cols);
        }
    }

    if kept.is_empty() {
        return Err(NlError::check("program has no effective statements"));
    }
    Ok(CheckedProgram {
        program: PyProgram { statements: kept },
        issues,
    })
}

fn lookup_table(schema: &SchemaHints, name: &str) -> Option<Vec<String>> {
    schema
        .tables
        .iter()
        .find(|(t, _)| t.eq_ignore_ascii_case(name))
        .map(|(_, cols)| cols.clone())
}

impl PyStatement {
    fn schema_lookup(&self, schema: &SchemaHints) -> Option<(String, Vec<String>)> {
        schema
            .tables
            .iter()
            .find(|(t, _)| t.eq_ignore_ascii_case(&self.root))
            .map(|(t, cols)| (t.clone(), cols.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SchemaHints {
        let mut s = SchemaHints::single(
            "sales",
            vec![
                "order_id".into(),
                "region".into(),
                "price".into(),
                "quantity".into(),
            ],
        );
        s.tables.insert(
            "customers".into(),
            vec!["customer_id".into(), "city".into(), "order_id".into()],
        );
        s
    }

    #[test]
    fn valid_program_passes() {
        let c = check(
            "sales.filter(\"price > 10\").compute(aggregates = [Count(\"order_id\")], for_each = [\"region\"])",
            &schema(),
        )
        .unwrap();
        assert!(c.is_valid());
        assert!(c.issues.is_empty());
    }

    #[test]
    fn print_statements_stripped() {
        let c = check("sales.head(5)\nprint(result)\n", &schema()).unwrap();
        assert_eq!(c.program.statements.len(), 1);
        assert!(c
            .issues
            .iter()
            .any(|i| i.severity == Severity::Fixed && i.message.contains("print")));
        assert!(c.is_valid());
    }

    #[test]
    fn unused_assignment_stripped() {
        let src = "tmp = sales.head(5)\nsales.compute(aggregates = [Count()])";
        let c = check(src, &schema()).unwrap();
        assert_eq!(c.program.statements.len(), 1);
        assert!(c.issues.iter().any(|i| i.message.contains("tmp")));
    }

    #[test]
    fn used_assignment_kept() {
        let src = "west = sales.filter(\"region = 'west'\")\nwest.compute(aggregates = [Count()])";
        let c = check(src, &schema()).unwrap();
        assert_eq!(c.program.statements.len(), 2);
        assert!(c.is_valid());
    }

    #[test]
    fn unknown_dataset_is_error() {
        let c = check("nope.head(5)", &schema()).unwrap();
        assert!(!c.is_valid());
        assert!(c.errors()[0].message.contains("nope"));
    }

    #[test]
    fn unknown_column_is_error() {
        let c = check("sales.filter(\"bogus > 1\")", &schema()).unwrap();
        assert!(!c.is_valid());
        assert!(c.errors()[0].message.contains("bogus"));
    }

    #[test]
    fn schema_evolves_through_compute() {
        // Sorting by the aggregate output is legal; sorting by a source
        // column consumed by compute is not.
        let good = check(
            "sales.compute(aggregates = [Count(\"order_id\")], for_each = [\"region\"]).sort(by = [\"Countorder_id\"])",
            &schema(),
        )
        .unwrap();
        assert!(good.is_valid(), "{:?}", good.issues);
        let bad = check(
            "sales.compute(aggregates = [Count(\"order_id\")], for_each = [\"region\"]).sort(by = [\"price\"])",
            &schema(),
        )
        .unwrap();
        assert!(!bad.is_valid());
    }

    #[test]
    fn projection_narrows_schema() {
        let bad = check(
            "sales.select([\"region\"]).filter(\"price > 1\")",
            &schema(),
        )
        .unwrap();
        assert!(!bad.is_valid());
        let good = check(
            "sales.select([\"region\", \"price\"]).filter(\"price > 1\")",
            &schema(),
        )
        .unwrap();
        assert!(good.is_valid());
    }

    #[test]
    fn join_extends_schema() {
        let c = check(
            "sales.join(\"customers\", on = [\"order_id\"]).select([\"region\", \"city\"])",
            &schema(),
        )
        .unwrap();
        assert!(c.is_valid(), "{:?}", c.issues);
        let bad = check("sales.join(\"phantom\", on = [\"order_id\"])", &schema()).unwrap();
        assert!(!bad.is_valid());
    }

    #[test]
    fn created_columns_become_visible() {
        let c = check(
            "sales.with_column(\"total\", \"price * quantity\").sort(by = [\"total\"])",
            &schema(),
        )
        .unwrap();
        assert!(c.is_valid(), "{:?}", c.issues);
    }

    #[test]
    fn syntax_error_propagates() {
        assert!(matches!(
            check("sales.filter(", &schema()),
            Err(NlError::PySyntax { .. })
        ));
    }

    #[test]
    fn all_prints_is_empty_program() {
        assert!(matches!(
            check("print(x)\nprint(y)", &schema()),
            Err(NlError::Check { .. })
        ));
    }
}
