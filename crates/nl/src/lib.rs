//! # dc-nl — the NL2Code system (§4, the paper's primary contribution)
//!
//! Natural language → analytics recipes, via the Figure 6 architecture:
//!
//! * [`semantic`] — the semantic layer: concepts, metrics, dimensions,
//!   value mappings, hierarchies, and relevance-weighted retrieval (§4.2);
//! * [`examples`] — the example library with TF-IDF cosine ranking and
//!   unique-function-set selection (§4.3);
//! * [`prompt`] — the prompt composer: API doc + examples + schema +
//!   semantics + intent under a token budget, trading examples for
//!   semantic context on complex queries (§4.4);
//! * [`llm`] — the code generator behind a [`llm::LanguageModel`] trait;
//!   [`llm::SimulatedLlm`] is the offline stand-in (see DESIGN.md);
//! * [`checker`] — the program checker: abstract representation,
//!   reference/composition validation, dead-code removal (§4.5);
//! * [`pyapi`] — the DataChat Python API dialect, with polyglot
//!   translation to GEL and SQL (§4.1);
//! * [`phrase`] — deterministic phrase-based translation for Visualize
//!   (§4.8);
//! * [`metrics`] — the Misalignment and Degree-of-Composition difficulty
//!   metrics with the Figure 7 thresholds (§4.7);
//! * [`pipeline`] — the end-to-end orchestration with a step trace.

pub mod checker;
pub mod error;
pub mod examples;
pub mod explain;
pub mod llm;
pub mod metrics;
pub mod phrase;
pub mod pipeline;
pub mod prompt;
pub mod pyapi;
pub mod semantic;

pub use checker::{check, CheckIssue, CheckedProgram, Severity};
pub use error::{NlError, Result};
pub use examples::{Example, ExampleLibrary};
pub use explain::{explain_skill, Explanation};
pub use llm::{ErrorModel, LanguageModel, SimulatedLlm};
pub use metrics::{composition, misalignment, Zone, C_THRESHOLD, M_THRESHOLD};
pub use phrase::{translate_visualize, PhraseTranslation};
pub use pipeline::{Nl2Code, Nl2CodeResult};
pub use prompt::{api_doc, Prompt, PromptComposer};
pub use pyapi::{format_program, parse_pyapi, PyProgram, PyStatement};
pub use semantic::{Concept, ConceptKind, SchemaHints, SemanticLayer};
