//! The end-to-end NL2Code pipeline (Figure 6).
//!
//! Wires the components in the paper's 13-step flow: intent → semantic
//! retrieval (2-4) → example retrieval (6) → prompt composition (5, 9) →
//! code generation (10) → program checking (11) → polyglot translation
//! and execution-ready recipe (12-13). Human-iteration hooks: the caller
//! can inspect/modify the prompt before generation and the recipe after.

use dc_gel::{format_skill, Recipe};
use dc_skills::SkillCall;
use dc_sql::QueryStep;

use crate::checker::{check, CheckedProgram};
use crate::error::{NlError, Result};
use crate::examples::ExampleLibrary;
use crate::llm::{LanguageModel, SimulatedLlm};
use crate::prompt::{Prompt, PromptComposer};
use crate::pyapi::format_program;
use crate::semantic::{SchemaHints, SemanticLayer};

/// The NL2Code system of Figure 6.
pub struct Nl2Code {
    pub semantics: SemanticLayer,
    pub library: ExampleLibrary,
    pub composer: PromptComposer,
    pub model: Box<dyn LanguageModel>,
}

impl std::fmt::Debug for Nl2Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nl2Code")
            .field("model", &self.model.name())
            .field("concepts", &self.semantics.len())
            .field("examples", &self.library.len())
            .finish()
    }
}

/// Everything a generation run produces: transparent by construction
/// (§4's Transparency and Interpretability requirement).
#[derive(Debug, Clone, PartialEq)]
pub struct Nl2CodeResult {
    /// The composed prompt (step 9).
    pub prompt: Prompt,
    /// Raw model output (step 10).
    pub raw_code: String,
    /// Post-checker program (step 11).
    pub checked: CheckedProgram,
    /// Cleaned Python API text.
    pub python: String,
    /// GEL translation, one sentence per step.
    pub gel: Vec<String>,
    /// SQL translation when the program is a single SQL-able chain.
    pub sql: Option<String>,
    /// Human-readable trace of the Figure 6 steps.
    pub trace: Vec<String>,
}

impl Nl2Code {
    /// The default stack: built-in examples, sales demo semantics, the
    /// simulated LLM.
    pub fn with_defaults(seed: u64) -> Nl2Code {
        Nl2Code {
            semantics: SemanticLayer::sales_demo(),
            library: ExampleLibrary::builtin(),
            composer: PromptComposer::default(),
            model: Box::new(SimulatedLlm::new(seed)),
        }
    }

    /// Run the pipeline for one intent.
    pub fn generate(&self, intent: &str, schema: &SchemaHints) -> Result<Nl2CodeResult> {
        if schema.tables.is_empty() {
            return Err(NlError::Generation {
                message: "no datasets are connected — load a table or connect a database first"
                    .into(),
            });
        }
        let mut trace: Vec<String> = Vec::new();
        trace.push(format!("1. user intent: {intent:?}"));

        let concepts = self.semantics.retrieve(intent, self.composer.max_concepts);
        trace.push(format!(
            "2-4. semantic layer retrieved {} concept(s): [{}]",
            concepts.len(),
            concepts
                .iter()
                .map(|c| c.concept.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));

        let prompt = self
            .composer
            .compose(intent, schema, &self.semantics, &self.library);
        trace.push(format!(
            "5-6. prompt composed: {} example(s), {} concept(s), ~{} tokens",
            prompt.examples.len(),
            prompt.concepts.len(),
            prompt.token_count()
        ));
        trace.push("7-8. prompts suggested to the user (no edits)".to_string());

        let raw_code = self.model.complete(&prompt);
        trace.push(format!("9-10. {} generated: {raw_code}", self.model.name()));

        let checked = check(&raw_code, schema)?;
        // Auto-repaired (Fixed) findings are healed, not errors — only
        // unresolved issues count against the program.
        trace.push(format!(
            "11. program checker: {} unresolved issue(s), {} auto-fixed, valid = {}",
            checked.unresolved().len(),
            checked.fixed_count(),
            checked.is_valid()
        ));

        // Polyglot translation (§4's design consideration).
        let python = render_python(&checked)?;
        let gel = render_gel(&checked);
        let sql = render_sql(&checked);
        trace.push(format!(
            "12. translations ready: Python, {} GEL step(s){}",
            gel.len(),
            if sql.is_some() { ", SQL" } else { "" }
        ));

        Ok(Nl2CodeResult {
            prompt,
            raw_code,
            checked,
            python,
            gel,
            sql,
            trace,
        })
    }

    /// Lower a checked program into an executable [`Recipe`] (step 12-13:
    /// "program is executed by the analytics platform").
    pub fn to_recipe(checked: &CheckedProgram) -> Result<Recipe> {
        let mut recipe = Recipe::new();
        let mut step = 0usize;
        for st in &checked.program.statements {
            recipe.push(SkillCall::UseDataset {
                name: st.root.clone(),
                version: None,
            });
            step += 1;
            for call in &st.calls {
                recipe.push(call.clone());
                step += 1;
            }
            if let Some(target) = &st.target {
                recipe
                    .bind(step - 1, target.clone())
                    .map_err(|e| NlError::translation(e.to_string()))?;
            }
        }
        Ok(recipe)
    }
}

fn render_python(checked: &CheckedProgram) -> Result<String> {
    let mut out = Vec::new();
    for st in &checked.program.statements {
        let chain = format_program(&st.root, &st.calls)?;
        match &st.target {
            Some(t) => out.push(format!("{t} = {chain}")),
            None => out.push(chain),
        }
    }
    Ok(out.join("\n"))
}

fn render_gel(checked: &CheckedProgram) -> Vec<String> {
    let mut out = Vec::new();
    for st in &checked.program.statements {
        out.push(format!("Use the dataset {}", st.root));
        for call in &st.calls {
            out.push(format_skill(call));
        }
        if let Some(t) = &st.target {
            out.push(format!("-- result bound as {t}"));
        }
    }
    out
}

/// SQL rendering for single-statement, SQL-able chains.
fn render_sql(checked: &CheckedProgram) -> Option<String> {
    if checked.program.statements.len() != 1 {
        return None;
    }
    let st = &checked.program.statements[0];
    let mut steps = vec![QueryStep::Scan {
        table: st.root.clone(),
    }];
    for call in &st.calls {
        steps.push(match call {
            SkillCall::KeepRows { predicate } => QueryStep::Filter {
                predicate: predicate.clone(),
            },
            SkillCall::DropRows { predicate } => QueryStep::Filter {
                predicate: predicate.clone().not(),
            },
            SkillCall::KeepColumns { columns } => QueryStep::SelectColumns {
                columns: columns.clone(),
            },
            SkillCall::CreateColumn { name, expr } => QueryStep::WithColumn {
                name: name.clone(),
                expr: expr.clone(),
            },
            SkillCall::Compute { aggs, for_each } => QueryStep::Compute {
                keys: for_each.clone(),
                aggs: aggs.clone(),
            },
            SkillCall::Sort { keys } => QueryStep::Sort { keys: keys.clone() },
            SkillCall::Limit { n } => QueryStep::Limit { n: *n },
            SkillCall::Distinct { columns } if columns.is_empty() => QueryStep::Distinct,
            _ => return None,
        });
    }
    dc_sql::generate_sql(&steps, true).ok().map(|q| q.to_sql())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::SimulatedLlm;

    fn system() -> Nl2Code {
        Nl2Code {
            semantics: SemanticLayer::sales_demo(),
            library: ExampleLibrary::builtin(),
            composer: PromptComposer::default(),
            model: Box::new(SimulatedLlm::oracle()),
        }
    }

    fn schema() -> SchemaHints {
        SchemaHints::single(
            "sales",
            vec![
                "order_id".into(),
                "order_date".into(),
                "region".into(),
                "product".into(),
                "price".into(),
                "quantity".into(),
                "discount".into(),
                "PurchaseStatus".into(),
            ],
        )
    }

    #[test]
    fn end_to_end_generation() {
        let sys = system();
        let r = sys
            .generate("How many orders were placed in each region", &schema())
            .unwrap();
        assert!(r.checked.is_valid());
        assert!(r.python.contains("compute"));
        assert!(r.gel.iter().any(|g| g.contains("Compute the count")));
        let sql = r.sql.expect("single-chain program has SQL");
        assert!(sql.contains("GROUP BY region"), "{sql}");
        assert_eq!(r.trace.len(), 7);
    }

    #[test]
    fn polyglot_translations_agree() {
        // The three dialects of the same program must parse back to the
        // same skills.
        let sys = system();
        let r = sys
            .generate(
                "count the orders with price above 100 for each region",
                &schema(),
            )
            .unwrap();
        // Python roundtrip.
        let reparsed = crate::pyapi::parse_pyapi(&r.python).unwrap();
        assert_eq!(
            reparsed.statements[0].calls,
            r.checked.program.statements[0].calls
        );
        // GEL roundtrip (skip the Use-dataset header).
        for (line, call) in r.gel[1..]
            .iter()
            .zip(&r.checked.program.statements[0].calls)
        {
            let parsed = dc_gel::parse_gel(line).unwrap();
            assert_eq!(&parsed, call);
        }
    }

    #[test]
    fn recipe_is_executable() {
        let sys = system();
        let r = sys
            .generate("How many purchases were successful", &schema())
            .unwrap();
        let recipe = Nl2Code::to_recipe(&r.checked).unwrap();
        // Execute against an environment holding the sales table.
        let mut env = dc_skills::Env::new();
        env.save_table("sales", dc_storage::demo::sales(200, 1));
        let mut editor = dc_gel::RecipeEditor::new(recipe);
        editor.run(&mut env).unwrap();
        let out = editor.last_output().unwrap().as_table().unwrap();
        assert_eq!(out.num_rows(), 1);
        // The aggregate output column is the last one, whatever the
        // model named it.
        let count = out.row(0).unwrap().last().unwrap().as_i64().unwrap();
        assert!(count > 100 && count < 200, "count = {count}");
    }

    #[test]
    fn trace_documents_every_stage() {
        let sys = system();
        let r = sys.generate("count orders per region", &schema()).unwrap();
        assert!(r.trace[0].contains("user intent"));
        assert!(r.trace[1].contains("semantic layer"));
        assert!(r.trace[2].contains("prompt composed"));
        assert!(r.trace.iter().any(|t| t.contains("program checker")));
    }

    #[test]
    fn multi_statement_program_has_no_sql() {
        let checked = check(
            "west = sales.filter(\"region = 'west'\")\nwest.compute(aggregates = [Count()])",
            &schema(),
        )
        .unwrap();
        assert!(render_sql(&checked).is_none());
        // But GEL still covers both statements.
        let gel = render_gel(&checked);
        assert!(
            gel.iter()
                .filter(|g| g.starts_with("Use the dataset"))
                .count()
                == 2
        );
    }

    #[test]
    fn default_stack_constructs() {
        let sys = Nl2Code::with_defaults(7);
        assert!(format!("{sys:?}").contains("simulated-gpt"));
    }
}
