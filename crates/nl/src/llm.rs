//! The code generator (§4.1) — a [`LanguageModel`] trait with a
//! simulated implementation.
//!
//! The product prompts a hosted GPT-class LLM; that is not available
//! offline, so [`SimulatedLlm`] stands in (see DESIGN.md's substitution
//! table). It consumes the *same structured prompt* the composer builds
//! (API doc, ranked examples, schema, semantic concepts, intent) and
//! produces DataChat Python API code by keyword-driven semantic parsing
//! guided by the retrieved examples and concepts. Its failures follow an
//! explicit, seeded error model whose probability rises with intent/
//! schema misalignment and solution depth and falls with prompt context
//! quality — the qualitative behaviour §4 reports for real LLMs, which is
//! what Table 2 measures in stratified form. The trait boundary means a
//! real model can be swapped in without touching the pipeline.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::metrics::identifier_tokens;
use crate::prompt::Prompt;
use crate::semantic::{stem, tokenize, ConceptKind};

/// Anything that maps a prompt to generated code.
pub trait LanguageModel {
    /// Model identifier (for traces and experiment logs).
    fn name(&self) -> &str;
    /// Generate code for the prompt.
    fn complete(&self, prompt: &Prompt) -> String;
}

/// Tunables of the simulated failure behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Failure floor even on easy, well-contextualized prompts.
    pub base: f64,
    /// Failure gain per unit of intent/schema mismatch.
    pub misalign_gain: f64,
    /// Failure gain per generated step (÷6, saturating).
    pub complexity_gain: f64,
    /// Failure gain when no prompt example resembles the question
    /// (out-of-distribution intents — the T_custom effect of §4.7).
    pub oov_gain: f64,
    /// Failure gain for the *joint* presence of misalignment and depth
    /// (hard questions compound; Table 2's (high, high) cell collapses).
    pub interaction_gain: f64,
    /// Failure gain for opaque schemas (abbreviated identifiers) on hard
    /// questions — the schema-irrelevance half of M, visible in the
    /// prompt, interacting with depth and mismatch.
    pub opacity_gain: f64,
    /// Failure reduction for rich context (examples + concepts).
    pub context_bonus: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel {
            base: 0.25,
            misalign_gain: 0.07,
            complexity_gain: 0.08,
            oov_gain: 0.20,
            interaction_gain: 1.0,
            opacity_gain: 0.6,
            context_bonus: 0.19,
        }
    }
}

/// The deterministic simulated LLM.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedLlm {
    pub seed: u64,
    pub errors: ErrorModel,
}

impl SimulatedLlm {
    /// A model with the default error characteristics.
    pub fn new(seed: u64) -> SimulatedLlm {
        SimulatedLlm {
            seed,
            errors: ErrorModel::default(),
        }
    }

    /// A model that never injects errors (for unit-testing the
    /// translation rules themselves).
    pub fn oracle() -> SimulatedLlm {
        SimulatedLlm {
            seed: 0,
            errors: ErrorModel {
                base: 0.0,
                misalign_gain: 0.0,
                complexity_gain: 0.0,
                oov_gain: 0.0,
                interaction_gain: 0.0,
                opacity_gain: 0.0,
                context_bonus: 0.0,
            },
        }
    }
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a, deterministic across runs.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Match intent tokens to schema columns, in intent order. Columns whose
/// full name is mentioned verbatim rank before token-level matches
/// (`party_sobriety` must beat `party_number` for "each party_sobriety").
fn matched_columns(intent: &str, prompt: &Prompt) -> Vec<String> {
    let lower = intent.to_lowercase();
    let mut exact: Vec<String> = Vec::new();
    for col in prompt.schema.all_columns() {
        let needle = col.to_lowercase();
        let mut start = 0;
        while let Some(pos) = lower[start..].find(&needle) {
            let at = start + pos;
            let before_ok = at == 0
                || !lower.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && lower.as_bytes()[at - 1] != b'_';
            let end = at + needle.len();
            let after_ok = end == lower.len()
                || !lower.as_bytes()[end].is_ascii_alphanumeric() && lower.as_bytes()[end] != b'_';
            if before_ok && after_ok {
                let name = col.to_string();
                if !exact.contains(&name) {
                    exact.push(name);
                }
                break;
            }
            start = at + 1;
        }
    }
    let tokens: Vec<String> = tokenize(intent).iter().map(|t| stem(t)).collect();
    let mut out = exact;
    for t in &tokens {
        for col in prompt.schema.all_columns() {
            let col_tokens = identifier_tokens(col);
            if col_tokens.iter().any(|ct| ct == t && t.len() >= 3) {
                let name = col.to_string();
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        }
    }
    out
}

/// Columns mentioned after a marker phrase ("for each", "by", "per").
fn group_columns(intent: &str, prompt: &Prompt) -> Vec<String> {
    let lower = intent.to_lowercase();
    for marker in [
        "for each ",
        " in each ",
        " each ",
        " per ",
        " by ",
        "grouped by ",
    ] {
        if let Some(pos) = lower.find(marker) {
            let tail = &intent[pos + marker.len()..];
            let cols = matched_columns(tail, prompt);
            if !cols.is_empty() {
                // A full-name mention is unambiguous; token-level matches
                // over the tail may drag in sibling columns.
                let exact: Vec<String> = cols
                    .iter()
                    .filter(|c| tail.to_lowercase().contains(&c.to_lowercase()))
                    .cloned()
                    .collect();
                let chosen = if exact.is_empty() { cols } else { exact };
                return chosen.into_iter().take(2).collect();
            }
        }
    }
    Vec::new()
}

/// The schema column mentioned nearest before any of the marker words
/// (used to attach numeric thresholds to the right column).
fn column_before(intent: &str, markers: &[&str], prompt: &Prompt) -> Option<String> {
    let lower = intent.to_lowercase();
    let pos = markers.iter().filter_map(|m| lower.find(m)).min()?;
    let head = &lower[..pos];
    nearest_column_in(head, prompt, true)
}

/// The schema column mentioned nearest after any of the marker words.
fn column_after(intent: &str, markers: &[&str], prompt: &Prompt) -> Option<String> {
    let lower = intent.to_lowercase();
    let (pos, mlen) = markers
        .iter()
        .filter_map(|m| lower.find(m).map(|p| (p, m.len())))
        .min()?;
    let tail = &lower[pos + mlen..];
    nearest_column_in(tail, prompt, false)
}

/// Nearest column mention in a text window: rightmost when `from_end`,
/// leftmost otherwise. Full-name mentions beat token-level matches.
fn nearest_column_in(window: &str, prompt: &Prompt, from_end: bool) -> Option<String> {
    let head = window;
    let head_tokens: Vec<String> = tokenize(head).iter().map(|t| stem(t)).collect();
    // (full-name match?, position) per column; full-name mentions use a
    // token-scale position so both kinds compare on one axis.
    let token_pos_of_byte = |byte: usize| head[..byte].split_whitespace().count();
    let mut best: Option<(bool, usize, String)> = None;
    for col in prompt.schema.all_columns() {
        let full = col.to_lowercase();
        let full_at = if from_end {
            head.rfind(&full).map(|p| token_pos_of_byte(p) + 1)
        } else {
            head.find(&full).map(|p| token_pos_of_byte(p) + 1)
        };
        let (is_full, at) = match full_at {
            Some(p) => (true, Some(p)),
            None => {
                let col_tokens = identifier_tokens(col);
                let mut hits = head_tokens
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.len() >= 3 && col_tokens.contains(t))
                    .map(|(i, _)| i + 1);
                let p = if from_end {
                    hits.next_back()
                } else {
                    hits.next()
                };
                (false, p)
            }
        };
        if let Some(at) = at {
            let better = match &best {
                None => true,
                Some((bfull, bat, _)) => {
                    // Full-name mentions outrank token matches; among
                    // equals, nearest to the marker wins.
                    match (is_full, *bfull) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => {
                            if from_end {
                                at >= *bat
                            } else {
                                at < *bat
                            }
                        }
                    }
                }
            };
            if better {
                best = Some((is_full, at, col.to_string()));
            }
        }
    }
    best.map(|(_, _, c)| c)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum AggKind {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Median,
    Min,
    Max,
    StdDev,
}

impl AggKind {
    fn ctor(self) -> &'static str {
        match self {
            AggKind::Count => "Count",
            AggKind::CountDistinct => "CountDistinct",
            AggKind::Sum => "Sum",
            AggKind::Avg => "Average",
            AggKind::Median => "Median",
            AggKind::Min => "Min",
            AggKind::Max => "Max",
            AggKind::StdDev => "StdDev",
        }
    }
}

fn detect_aggregate(intent: &str) -> Option<AggKind> {
    let l = format!(" {} ", intent.to_lowercase());
    let has = |kw: &str| l.contains(&format!(" {kw} "));
    if (has("distinct") || has("unique")) && (has("how") || has("count") || has("many")) {
        return Some(AggKind::CountDistinct);
    }
    if has("how") && has("many") || has("count") || has("number") {
        return Some(AggKind::Count);
    }
    if has("average") || has("mean") {
        return Some(AggKind::Avg);
    }
    if has("median") {
        return Some(AggKind::Median);
    }
    if has("total") || has("sum") {
        return Some(AggKind::Sum);
    }
    if has("maximum") || has("max") || has("highest") || has("largest") {
        return Some(AggKind::Max);
    }
    if has("minimum") || has("min") || has("lowest") || has("smallest") {
        return Some(AggKind::Min);
    }
    if has("deviation") || has("spread") {
        return Some(AggKind::StdDev);
    }
    None
}

/// First number appearing after any of the marker words.
fn number_after(intent: &str, markers: &[&str]) -> Option<f64> {
    let lower = intent.to_lowercase();
    for m in markers {
        if let Some(pos) = lower.find(m) {
            let tail = &lower[pos + m.len()..];
            for tok in tail.split(|c: char| !c.is_ascii_digit() && c != '.') {
                if !tok.is_empty() {
                    if let Ok(v) = tok.parse::<f64>() {
                        return Some(v);
                    }
                }
            }
        }
    }
    None
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl LanguageModel for SimulatedLlm {
    fn name(&self) -> &str {
        "simulated-gpt"
    }

    fn complete(&self, prompt: &Prompt) -> String {
        let intent = prompt.intent.as_str();
        let lower = format!(" {} ", intent.to_lowercase());
        let has = |kw: &str| lower.contains(&format!(" {kw} "));
        // Root dataset: the table whose name the intent mentions first,
        // falling back to the catalog's first table.
        let intent_stems: Vec<String> = tokenize(intent).iter().map(|t| stem(t)).collect();
        let mentioned = matched_columns(intent, prompt);
        let groups = group_columns(intent, prompt);
        // Root dataset: first-mentioned table name wins ("Join orders
        // with customers" roots at orders); otherwise the table covering
        // the most mentioned columns; otherwise the first table.
        let by_name = prompt
            .schema
            .tables
            .keys()
            .filter_map(|t| {
                identifier_tokens(t)
                    .iter()
                    .filter(|tok| tok.len() >= 3)
                    .filter_map(|tok| intent_stems.iter().position(|s| s == tok))
                    .min()
                    .map(|pos| (pos, t))
            })
            .min_by_key(|(pos, _)| *pos)
            .map(|(_, t)| t.clone());
        let by_coverage = prompt
            .schema
            .tables
            .iter()
            .map(|(t, cols)| {
                let hits = mentioned
                    .iter()
                    .filter(|m| cols.iter().any(|c| c.eq_ignore_ascii_case(m)))
                    .count();
                (hits, t)
            })
            .max_by_key(|(hits, _)| *hits)
            .filter(|(hits, _)| *hits > 0)
            .map(|(_, t)| t.clone());
        let dataset = by_name
            .or(by_coverage)
            .or_else(|| prompt.schema.tables.keys().next().cloned())
            .unwrap_or_else(|| "data".to_string());

        let mut calls: Vec<String> = Vec::new();

        // 1. Semantic-layer predicates mentioned in the intent become
        //    filters (the §4.2 "successful purchases" walkthrough).
        for sc in &prompt.concepts {
            if let ConceptKind::ValueMapping { predicate } = &sc.concept.kind {
                let name_tokens: Vec<String> =
                    tokenize(&sc.concept.name).iter().map(|t| stem(t)).collect();
                let intent_tokens: Vec<String> = tokenize(intent).iter().map(|t| stem(t)).collect();
                if !name_tokens.is_empty() && name_tokens.iter().all(|t| intent_tokens.contains(t))
                {
                    calls.push(format!("filter(\"{}\")", predicate.replace('"', "'")));
                }
            }
        }

        // 2. Numeric range filters ("above 1000", "over 50"): the
        //    filtered column is the nearest mention before the marker.
        let above_markers = ["above ", "over ", "greater than ", "more than "];
        let below_markers = ["below ", "under ", "less than ", "fewer than "];
        if let Some(threshold) = number_after(intent, &above_markers) {
            let col = column_before(intent, &above_markers, prompt)
                .or_else(|| mentioned.iter().find(|c| !groups.contains(c)).cloned())
                .unwrap_or_else(|| "value".into());
            calls.push(format!("filter(\"{col} > {}\")", fmt_num(threshold)));
        } else if let Some(threshold) = number_after(intent, &below_markers) {
            let col = column_before(intent, &below_markers, prompt)
                .or_else(|| mentioned.iter().find(|c| !groups.contains(c)).cloned())
                .unwrap_or_else(|| "value".into());
            calls.push(format!("filter(\"{col} < {}\")", fmt_num(threshold)));
        }

        // 3. Metric concepts: materialize the formula as a column.
        let mut metric_col: Option<String> = None;
        for sc in &prompt.concepts {
            if let ConceptKind::Metric { formula } = &sc.concept.kind {
                let name_tokens: Vec<String> =
                    tokenize(&sc.concept.name).iter().map(|t| stem(t)).collect();
                let intent_tokens: Vec<String> = tokenize(intent).iter().map(|t| stem(t)).collect();
                if name_tokens.iter().all(|t| intent_tokens.contains(t)) {
                    // sum(expr) metrics: strip the aggregate wrapper and
                    // compute it after creating the value column.
                    let inner = formula
                        .trim()
                        .strip_prefix("sum(")
                        .and_then(|r| r.strip_suffix(')'))
                        .unwrap_or(formula)
                        .to_string();
                    let col_name = sc.concept.name.replace(' ', "_");
                    calls.push(format!(
                        "with_column(\"{col_name}\", \"{}\")",
                        inner.replace('"', "'")
                    ));
                    metric_col = Some(col_name);
                    break;
                }
            }
        }

        // 4. Special analytics intents.
        let forecast = has("forecast") || (has("predict") && (has("next") || has("future")));
        let train = !forecast && (has("train") || (has("predict") && !has("next")));
        let outliers = has("outliers")
            || has("outlier")
            || has("unusual")
            || has("anomalies")
            || has("anomalous");
        // "segment" alone is often a schema column; require a clustering
        // verb form or an explicit cluster/cohort noun.
        let cluster = has("cluster")
            || has("clusters")
            || has("cohorts")
            || lower.contains(" segment the ")
            || lower.contains(" segment into ");
        let top_n = number_after(intent, &["top "]).map(|v| v as usize);

        // Cross-table intents: "join with <table> on <key>" / "combine".
        if (has("join") || has("joined") || has("combine") || has("combined"))
            && prompt.schema.tables.len() >= 2
        {
            let other = prompt
                .schema
                .tables
                .keys()
                .find(|t| {
                    !t.eq_ignore_ascii_case(&dataset)
                        && tokenize(intent)
                            .iter()
                            .any(|tok| identifier_tokens(t).contains(&stem(tok)))
                })
                .cloned()
                .or_else(|| {
                    prompt
                        .schema
                        .tables
                        .keys()
                        .find(|t| !t.eq_ignore_ascii_case(&dataset))
                        .cloned()
                });
            if let Some(other) = other {
                // Join key: a column both tables share.
                let left_cols = prompt
                    .schema
                    .tables
                    .get(&dataset)
                    .cloned()
                    .unwrap_or_default();
                let right_cols = prompt
                    .schema
                    .tables
                    .get(&other)
                    .cloned()
                    .unwrap_or_default();
                let key = left_cols
                    .iter()
                    .find(|c| right_cols.iter().any(|r| r.eq_ignore_ascii_case(c)))
                    .cloned();
                if let Some(key) = key {
                    calls.insert(0, format!("join(\"{other}\", on = [\"{key}\"])"));
                }
            }
        }

        if forecast {
            let time_col = prompt
                .schema
                .all_columns()
                .iter()
                .find(|c| {
                    let cl = c.to_lowercase();
                    cl.contains("date") || cl.contains("time") || cl == "ts"
                })
                .map(|c| c.to_string())
                .unwrap_or_else(|| "date".into());
            let measure = mentioned
                .iter()
                .find(|c| !c.eq_ignore_ascii_case(&time_col))
                .cloned()
                .unwrap_or_else(|| "value".into());
            let horizon = number_after(intent, &["next "])
                .map(|v| v as usize)
                .unwrap_or(12);
            calls.push(format!(
                "predict_time_series(measures = [\"{measure}\"], horizon = {horizon}, time_column = \"{time_col}\")"
            ));
        } else if outliers {
            let col = mentioned.first().cloned().unwrap_or_else(|| "value".into());
            let method = "iqr";
            calls.push(format!("detect_outliers(\"{col}\", method = \"{method}\")"));
        } else if cluster {
            let k = number_after(intent, &["into "])
                .map(|v| v as usize)
                .or_else(|| {
                    ["two", "three", "four", "five"]
                        .iter()
                        .position(|w| has(w))
                        .map(|i| i + 2)
                })
                .unwrap_or(3);
            let feats: Vec<String> = mentioned.iter().take(3).cloned().collect();
            let feats = if feats.is_empty() {
                "[]".to_string()
            } else {
                format!(
                    "[{}]",
                    feats
                        .iter()
                        .map(|f| format!("\"{f}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            calls.push(format!("cluster(k = {k}, features = {feats})"));
        } else if train {
            // "predict X from a and b" / "train a model to predict X".
            let target = lower
                .find(" predict ")
                .map(|p| &intent[p + 9..])
                .and_then(|tail| matched_columns(tail, prompt).first().cloned())
                .or_else(|| mentioned.first().cloned())
                .unwrap_or_else(|| "target".into());
            let features: Vec<String> = mentioned
                .iter()
                .filter(|c| !c.eq_ignore_ascii_case(&target))
                .take(4)
                .cloned()
                .collect();
            let mut s = format!("train_model(target = \"{target}\"");
            if !features.is_empty() {
                s.push_str(&format!(
                    ", features = [{}]",
                    features
                        .iter()
                        .map(|f| format!("\"{f}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            s.push(')');
            calls.push(s);
        } else if let Some(agg) = detect_aggregate(intent) {
            // 5. Aggregation: the value column is the one named right
            //    after the aggregate word ("the average quantity ...").
            const AGG_WORDS: [&str; 12] = [
                "average ",
                "mean ",
                "median ",
                "total ",
                "sum of ",
                "sum ",
                "maximum ",
                "minimum ",
                "highest ",
                "lowest ",
                "deviation of ",
                "count of ",
            ];
            let value_col = metric_col.clone().or_else(|| {
                column_after(intent, &AGG_WORDS, prompt)
                    .filter(|c| !groups.contains(c))
                    .or_else(|| mentioned.iter().find(|c| !groups.contains(c)).cloned())
            });
            let ctor = match (agg, &value_col) {
                (AggKind::Count, None) => "Count()".to_string(),
                (a, Some(c)) => format!("{}(\"{c}\")", a.ctor()),
                (a, None) => format!("{}()", a.ctor()),
            };
            let mut s = format!("compute(aggregates = [{ctor}]");
            if !groups.is_empty() {
                s.push_str(&format!(
                    ", for_each = [{}]",
                    groups
                        .iter()
                        .map(|g| format!("\"{g}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            s.push(')');
            calls.push(s);
        } else if has("distinct") || has("unique") {
            let cols = if mentioned.is_empty() {
                String::new()
            } else {
                format!(
                    "[{}]",
                    mentioned
                        .iter()
                        .take(2)
                        .map(|c| format!("\"{c}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            if !cols.is_empty() {
                calls.push(format!("select({cols})"));
            }
            calls.push("distinct()".to_string());
        }

        // 6. Sort / top-N tails.
        let wants_sort = has("sorted") || has("descending") || lower.contains("highest to lowest");
        if let Some(n) = top_n {
            if let Some(compute_call) = calls.iter().find(|c| c.starts_with("compute(")) {
                // Sort by the aggregate's output, then keep n groups.
                let out_name = default_output_of(compute_call);
                calls.push(format!("sort(by = [\"{out_name}\"], ascending = [False])"));
                calls.push(format!("head({n})"));
            } else {
                let by = mentioned
                    .iter()
                    .find(|c| !groups.contains(c))
                    .cloned()
                    .unwrap_or_else(|| "value".into());
                calls.push(format!("top({n}, by = \"{by}\")"));
            }
        } else if wants_sort {
            if let Some(compute_call) = calls.iter().find(|c| c.starts_with("compute(")) {
                // Sort by the aggregate's default output name.
                let out_name = default_output_of(compute_call);
                calls.push(format!("sort(by = [\"{out_name}\"], ascending = [False])"));
            } else if let Some(c) = mentioned.first() {
                calls.push(format!("sort(by = [\"{c}\"], ascending = [False])"));
            }
        }

        // 7. Bare "show N rows" fallbacks.
        if calls.is_empty() {
            if let Some(n) = number_after(intent, &["show ", "first ", "display "]) {
                calls.push(format!("head({})", n as usize));
            } else if !mentioned.is_empty() {
                calls.push(format!(
                    "select([{}])",
                    mentioned
                        .iter()
                        .take(4)
                        .map(|c| format!("\"{c}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            } else if let Some(ex) = prompt.examples.first() {
                // No signal at all: echo the nearest example's shape on
                // this dataset (what a real model does with thin intent).
                let adapted = ex
                    .program
                    .split_once('.')
                    .map(|(_, tail)| format!("{dataset}.{tail}"))
                    .unwrap_or_else(|| ex.program.clone());
                return self.maybe_corrupt(prompt, adapted);
            } else {
                calls.push("head(10)".to_string());
            }
        }

        let program = format!("{dataset}.{}", calls.join("."));
        self.maybe_corrupt(prompt, program)
    }
}

/// Guess the default output name of the first aggregate in a rendered
/// compute call (`Count("x")` → `Countx`, `Count()` → `CountOfRecords`).
fn default_output_of(compute_call: &str) -> String {
    let inner = compute_call
        .split('[')
        .nth(1)
        .and_then(|s| s.split(']').next())
        .unwrap_or("");
    let first = inner.split(',').next().unwrap_or("").trim();
    if first.starts_with("Count()") || first.is_empty() {
        return "CountOfRecords".to_string();
    }
    let fname = first.split('(').next().unwrap_or("Count");
    let func = match fname {
        "Average" => dc_engine::AggFunc::Avg,
        "Sum" => dc_engine::AggFunc::Sum,
        "Median" => dc_engine::AggFunc::Median,
        "Min" => dc_engine::AggFunc::Min,
        "Max" => dc_engine::AggFunc::Max,
        "CountDistinct" => dc_engine::AggFunc::CountDistinct,
        "StdDev" => dc_engine::AggFunc::StdDev,
        _ => dc_engine::AggFunc::Count,
    };
    let col = first.split('"').nth(1).or_else(|| first.split('\'').nth(1));
    dc_engine::AggSpec::default_output(func, col)
}

impl SimulatedLlm {
    /// Internal difficulty estimate + seeded corruption. The estimate
    /// uses only information visible in the prompt (not gold labels).
    fn maybe_corrupt(&self, prompt: &Prompt, program: String) -> String {
        let p_fail = self.failure_probability(prompt, &program);
        let mut rng = StdRng::seed_from_u64(self.seed ^ hash_str(&prompt.intent));
        if rng.random::<f64>() >= p_fail {
            return program;
        }
        self.corrupt(prompt, program, &mut rng)
    }

    /// The model's own difficulty estimate for this completion.
    pub fn failure_probability(&self, prompt: &Prompt, program: &str) -> f64 {
        // Intent/schema alignment, from the prompt alone.
        let intent_tokens: Vec<String> = tokenize(&prompt.intent)
            .iter()
            .filter(|t| !crate::metrics::is_stopword(t))
            .filter(|t| t.chars().any(|c| c.is_alphabetic()))
            .map(|t| stem(t))
            .filter(|t| t.len() >= 3)
            .collect();
        let mut vocab: Vec<String> = Vec::new();
        for t in prompt.schema.tables.keys() {
            vocab.extend(identifier_tokens(t));
        }
        for c in prompt.schema.all_columns() {
            vocab.extend(identifier_tokens(c));
        }
        for sc in &prompt.concepts {
            vocab.extend(tokenize(&sc.concept.name).iter().map(|t| stem(t)));
        }
        let linked = intent_tokens.iter().filter(|t| vocab.contains(t)).count();
        let mismatch = if intent_tokens.is_empty() {
            0.0
        } else {
            1.0 - linked as f64 / intent_tokens.len() as f64
        };
        let steps = program.matches('.').count() as f64;
        let depth = (steps / 6.0).min(1.0);
        // Affinity of the nearest few-shot example: stemmed content-token
        // overlap with the intent (structure words excluded by length).
        let affinity = prompt
            .examples
            .iter()
            .map(|e| {
                let ex_tokens: Vec<String> = tokenize(&e.question)
                    .iter()
                    .map(|t| stem(t))
                    .filter(|t| t.len() >= 4)
                    .collect();
                let shared = intent_tokens
                    .iter()
                    .filter(|t| t.len() >= 4 && ex_tokens.contains(t))
                    .count();
                let denom = intent_tokens.iter().filter(|t| t.len() >= 4).count().max(1);
                shared as f64 / denom as f64
            })
            .fold(0.0f64, f64::max);
        let quality = 0.5 * (prompt.examples.len().min(3) as f64 / 3.0)
            + 0.5 * (!prompt.concepts.is_empty()) as u8 as f64;
        (self.errors.base
            + self.errors.misalign_gain * mismatch
            + self.errors.complexity_gain * depth
            + self.errors.oov_gain * (1.0 - affinity)
            // Hard questions compound: misaligned AND deep AND unlike any
            // prompt example — the cell Table 2 shows collapsing.
            + self.errors.interaction_gain * mismatch * depth * (1.0 - affinity)
            + self.errors.opacity_gain
                * crate::metrics::schema_irrelevance(&prompt.schema)
                * mismatch
                * depth
            - self.errors.context_bonus * quality)
            .clamp(0.0, 0.90)
    }

    fn corrupt(&self, prompt: &Prompt, program: String, rng: &mut StdRng) -> String {
        let columns: Vec<String> = prompt
            .schema
            .all_columns()
            .iter()
            .map(|c| c.to_string())
            .collect();
        match rng.random_range(0..4u32) {
            // Swap a quoted column for a different schema column.
            0 if columns.len() >= 2 => {
                for col in &columns {
                    let quoted = format!("\"{col}\"");
                    if program.contains(&quoted) {
                        let replacement = columns
                            .iter()
                            .find(|c| *c != col)
                            .cloned()
                            .unwrap_or_else(|| "wrong_column".into());
                        return program.replacen(&quoted, &format!("\"{replacement}\""), 1);
                    }
                }
                format!("{program}.head(1)")
            }
            // Drop the final call in the chain (a missing solution step).
            1 => match program.rfind('.') {
                Some(p) if p > 0 && program[..p].contains('.') => program[..p].to_string(),
                _ => format!("{program}.head(1)"),
            },
            // Wrong aggregate function.
            2 if program.contains("Count(") => program.replacen("Count(", "Sum(", 1),
            2 if program.contains("Average(") => program.replacen("Average(", "Max(", 1),
            2 if program.contains("Sum(") => program.replacen("Sum(", "Average(", 1),
            // Perturb a numeric literal / spurious trailing limit.
            _ => {
                if let Some(pos) = program.find("> ") {
                    let tail = &program[pos + 2..];
                    let num_len = tail.chars().take_while(|c| c.is_ascii_digit()).count();
                    if num_len > 0 {
                        let n: i64 = tail[..num_len].parse().unwrap_or(0);
                        return format!("{}{}{}", &program[..pos + 2], n * 10, &tail[num_len..]);
                    }
                }
                format!("{program}.head(3)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::ExampleLibrary;
    use crate::prompt::PromptComposer;
    use crate::semantic::{SchemaHints, SemanticLayer};

    fn sales_prompt(intent: &str) -> Prompt {
        PromptComposer::default().compose(
            intent,
            &SchemaHints::single(
                "sales",
                vec![
                    "order_id".into(),
                    "order_date".into(),
                    "region".into(),
                    "product".into(),
                    "price".into(),
                    "quantity".into(),
                    "discount".into(),
                    "PurchaseStatus".into(),
                ],
            ),
            &SemanticLayer::sales_demo(),
            &ExampleLibrary::builtin(),
        )
    }

    #[test]
    fn count_per_group() {
        let code = SimulatedLlm::oracle()
            .complete(&sales_prompt("How many orders were placed in each region"));
        assert!(code.contains("compute"), "{code}");
        assert!(code.contains("Count"), "{code}");
        assert!(code.contains("\"region\""), "{code}");
        crate::pyapi::parse_pyapi(&code).unwrap();
    }

    #[test]
    fn semantic_predicate_applied() {
        // The §4.2 walkthrough: "successful purchases" must become the
        // PurchaseStatus filter via the semantic layer.
        let code =
            SimulatedLlm::oracle().complete(&sales_prompt("How many purchases were successful"));
        assert!(code.contains("PurchaseStatus = 'Successful'"), "{code}");
        assert!(code.contains("Count"), "{code}");
    }

    #[test]
    fn metric_expansion() {
        let code = SimulatedLlm::oracle()
            .complete(&sales_prompt("What is the total revenue for each region"));
        assert!(code.contains("with_column(\"revenue\""), "{code}");
        assert!(code.contains("Sum(\"revenue\")"), "{code}");
        crate::pyapi::parse_pyapi(&code).unwrap();
    }

    #[test]
    fn numeric_filter() {
        let code = SimulatedLlm::oracle().complete(&sales_prompt(
            "count the orders with price above 100 for each region",
        ));
        assert!(code.contains("filter(\"price > 100\")"), "{code}");
    }

    #[test]
    fn forecast_intent() {
        let code = SimulatedLlm::oracle().complete(&sales_prompt(
            "Forecast the price for the next 30 values of order_date",
        ));
        assert!(code.contains("predict_time_series"), "{code}");
        assert!(code.contains("horizon = 30"), "{code}");
        assert!(code.contains("order_date"), "{code}");
    }

    #[test]
    fn outlier_and_cluster_intents() {
        let code =
            SimulatedLlm::oracle().complete(&sales_prompt("Find the unusual quantity values"));
        assert!(code.contains("detect_outliers(\"quantity\""), "{code}");
        let code = SimulatedLlm::oracle().complete(&sales_prompt(
            "Segment the orders into 4 clusters using price and quantity",
        ));
        assert!(code.contains("cluster(k = 4"), "{code}");
    }

    #[test]
    fn oracle_is_deterministic() {
        let p = sales_prompt("How many orders per region");
        let a = SimulatedLlm::oracle().complete(&p);
        let b = SimulatedLlm::oracle().complete(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn failure_probability_ordering() {
        let llm = SimulatedLlm::new(1);
        let easy = sales_prompt("How many orders were placed in each region");
        let vague = sales_prompt("which deals moved the needle for the folks out west");
        let p_easy = llm.failure_probability(&easy, "sales.compute(aggregates = [Count()])");
        let p_vague = llm.failure_probability(&vague, "sales.compute(aggregates = [Count()])");
        assert!(p_vague > p_easy, "{p_vague} vs {p_easy}");
        let shallow = llm.failure_probability(&easy, "sales.head(5)");
        let deep = llm.failure_probability(
            &easy,
            "sales.join(\"x\", on=[\"k\"]).filter(\"a > 1\").compute(aggregates = [Count()]).sort(by = [\"n\"]).head(5)",
        );
        assert!(deep > shallow);
    }

    #[test]
    fn corruptions_change_the_program() {
        let llm = SimulatedLlm {
            seed: 3,
            errors: ErrorModel {
                base: 1.0, // always corrupt
                misalign_gain: 0.0,
                complexity_gain: 0.0,
                oov_gain: 0.0,
                interaction_gain: 0.0,
                opacity_gain: 0.0,
                context_bonus: 0.0,
            },
        };
        let p = sales_prompt("How many orders were placed in each region");
        let clean = SimulatedLlm::oracle().complete(&p);
        let corrupted = llm.complete(&p);
        assert_ne!(clean, corrupted);
    }

    #[test]
    fn thin_prompt_echoes_example_shape() {
        let composer = PromptComposer::default();
        let p = composer.compose(
            "hmm",
            &SchemaHints::single("d1", vec!["zz".into()]),
            &SemanticLayer::new(),
            &ExampleLibrary::builtin(),
        );
        let code = SimulatedLlm::oracle().complete(&p);
        assert!(code.starts_with("d1."), "{code}");
    }
}
