//! Example retrieval (§4.3).
//!
//! "We first rank the examples in our repository based on their
//! similarity (e.g., cosine) with the user query. Next, from the ranked
//! example list, we select examples that feature a unique set of
//! analytics functions." Similarity here is TF-IDF cosine over stemmed
//! tokens — deterministic and dependency-free.

use std::collections::{BTreeSet, HashMap};

use crate::semantic::{stem, tokenize};

/// One question → program training pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// The natural-language question.
    pub question: String,
    /// The DataChat Python API solution.
    pub program: String,
    /// The analytics functions the program uses (its "shape").
    pub functions: Vec<String>,
    /// Problem domain ("sales", "finance", "healthcare", ...).
    pub domain: String,
}

impl Example {
    /// Build, extracting the function set from the program text.
    pub fn new(
        question: impl Into<String>,
        program: impl Into<String>,
        domain: impl Into<String>,
    ) -> Example {
        let program = program.into();
        let functions = extract_functions(&program);
        Example {
            question: question.into(),
            program,
            functions,
            domain: domain.into(),
        }
    }

    /// Prompt rendering: Q/A pair.
    pub fn render(&self) -> String {
        format!("Q: {}\nA: {}", self.question, self.program)
    }
}

/// Extract `.method(` names from a Python-API program.
pub fn extract_functions(program: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let bytes = program.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'.' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            if j > start && bytes.get(j) == Some(&b'(') {
                let name = program[start..j].to_string();
                if !out.contains(&name) {
                    out.push(name);
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// The example library with TF-IDF retrieval.
#[derive(Debug, Clone, Default)]
pub struct ExampleLibrary {
    examples: Vec<Example>,
    /// document frequency per stemmed token.
    df: HashMap<String, usize>,
}

impl ExampleLibrary {
    /// An empty library.
    pub fn new() -> ExampleLibrary {
        ExampleLibrary::default()
    }

    /// Add an example, updating document frequencies.
    pub fn add(&mut self, example: Example) {
        let tokens: BTreeSet<String> = tokenize(&example.question)
            .iter()
            .map(|t| stem(t))
            .collect();
        for t in tokens {
            *self.df.entry(t).or_insert(0) += 1;
        }
        self.examples.push(example);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// All examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    fn tfidf(&self, text: &str) -> HashMap<String, f64> {
        let tokens: Vec<String> = tokenize(text).iter().map(|t| stem(t)).collect();
        let n_docs = self.examples.len().max(1) as f64;
        let mut tf: HashMap<String, f64> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0.0) += 1.0;
        }
        for (t, v) in tf.iter_mut() {
            let df = self.df.get(t).copied().unwrap_or(0) as f64;
            let idf = ((n_docs + 1.0) / (df + 1.0)).ln() + 1.0;
            *v *= idf;
        }
        tf
    }

    fn cosine(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
        let dot: f64 = a
            .iter()
            .filter_map(|(t, va)| b.get(t).map(|vb| va * vb))
            .sum();
        let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Rank all examples by cosine similarity to `query`, descending
    /// (ties broken by question text for determinism).
    pub fn rank(&self, query: &str) -> Vec<(f64, &Example)> {
        let q = self.tfidf(query);
        let mut scored: Vec<(f64, &Example)> = self
            .examples
            .iter()
            .map(|e| (Self::cosine(&q, &self.tfidf(&e.question)), e))
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.question.cmp(&b.1.question))
        });
        scored
    }

    /// §4.3's two-stage selection: rank by similarity, then greedily take
    /// examples whose function sets are not already covered, up to `k`.
    pub fn select(&self, query: &str, k: usize) -> Vec<&Example> {
        let ranked = self.rank(query);
        let mut out: Vec<&Example> = Vec::new();
        let mut seen_shapes: Vec<BTreeSet<String>> = Vec::new();
        for (score, e) in &ranked {
            if out.len() >= k {
                break;
            }
            if *score <= 0.0 && !out.is_empty() {
                break;
            }
            let shape: BTreeSet<String> = e.functions.iter().cloned().collect();
            if seen_shapes.contains(&shape) {
                continue;
            }
            seen_shapes.push(shape);
            out.push(e);
        }
        // Backfill with top-ranked duplicates if uniqueness starved us.
        if out.len() < k {
            for (_, e) in &ranked {
                if out.len() >= k {
                    break;
                }
                if !out.iter().any(|x| std::ptr::eq(*x, *e)) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// The built-in cross-domain library (§4.3: "examples span several
    /// problem domains such as sales, finance, and healthcare").
    pub fn builtin() -> ExampleLibrary {
        let mut lib = ExampleLibrary::new();
        let entries: Vec<(&str, &str, &str)> = vec![
            (
                "How many orders were placed in each region",
                "sales.compute(aggregates = [Count(\"order_id\")], for_each = [\"region\"])",
                "sales",
            ),
            (
                "What is the total revenue for each product",
                "sales.with_column(\"line_total\", \"price * quantity\").compute(aggregates = [Sum(\"line_total\")], for_each = [\"product\"])",
                "sales",
            ),
            (
                "Show the ten most expensive orders",
                "sales.top(10, by = \"price\")",
                "sales",
            ),
            (
                "How many purchases were successful",
                "sales.filter(\"PurchaseStatus = 'Successful'\").compute(aggregates = [Count()])",
                "sales",
            ),
            (
                "What is the average order value by region sorted from highest to lowest",
                "sales.compute(aggregates = [Average(\"price\")], for_each = [\"region\"]).sort(by = [\"AvgPrice\"], ascending = [False])",
                "sales",
            ),
            (
                "Keep only orders from the west region",
                "sales.filter(\"region = 'west'\")",
                "sales",
            ),
            (
                "What is the average account balance for each branch",
                "accounts.compute(aggregates = [Average(\"balance\")], for_each = [\"branch\"])",
                "finance",
            ),
            (
                "Count the transactions above 1000 dollars for each account type",
                "transactions.filter(\"amount > 1000\").compute(aggregates = [Count(\"txn_id\")], for_each = [\"account_type\"])",
                "finance",
            ),
            (
                "Forecast the closing price for the next 30 days",
                "prices.predict_time_series(measures = [\"close\"], horizon = 30, time_column = \"date\")",
                "finance",
            ),
            (
                "Which customers have unusual transaction amounts",
                "transactions.detect_outliers(\"amount\", method = \"iqr\")",
                "finance",
            ),
            (
                "How many patients were admitted per department",
                "admissions.compute(aggregates = [Count(\"patient_id\")], for_each = [\"department\"])",
                "healthcare",
            ),
            (
                "What is the median length of stay by diagnosis",
                "admissions.compute(aggregates = [Median(\"length_of_stay\")], for_each = [\"diagnosis\"])",
                "healthcare",
            ),
            (
                "Train a model to predict readmission from age and length of stay",
                "admissions.train_model(target = \"readmitted\", features = [\"age\", \"length_of_stay\"])",
                "healthcare",
            ),
            (
                "Group the patients into three cohorts by age and bmi",
                "patients.cluster(k = 3, features = [\"age\", \"bmi\"])",
                "healthcare",
            ),
            (
                "Show the distinct diagnosis codes",
                "admissions.select([\"diagnosis\"]).distinct()",
                "healthcare",
            ),
            (
                "What is the maximum and minimum temperature for each device",
                "readings.compute(aggregates = [Max(\"temperature\"), Min(\"temperature\")], for_each = [\"device_id\"])",
                "iot",
            ),
            (
                "Join orders with customers and count orders per customer city",
                "orders.join(\"customers\", on = [\"customer_id\"]).compute(aggregates = [Count(\"order_id\")], for_each = [\"city\"])",
                "sales",
            ),
            (
                "Show five rows of the dataset",
                "data.head(5)",
                "general",
            ),
            (
                "Drop the rows with a missing age",
                "patients.dropna([\"age\"])",
                "healthcare",
            ),
            (
                "How many distinct products were sold each month",
                "sales.compute(aggregates = [CountDistinct(\"product\")], for_each = [\"month\"])",
                "sales",
            ),
        ];
        for (q, p, d) in entries {
            lib.add(Example::new(q, p, d));
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_extraction() {
        let f = extract_functions(
            "sales.filter(\"x > 1\").compute(aggregates = [Count()]).sort(by = [\"n\"])",
        );
        assert_eq!(f, vec!["filter", "compute", "sort"]);
        assert!(extract_functions("no methods here").is_empty());
    }

    #[test]
    fn similar_question_ranks_first() {
        let lib = ExampleLibrary::builtin();
        let ranked = lib.rank("How many orders were placed in each city");
        assert!(ranked[0].1.question.contains("orders were placed"));
        assert!(ranked[0].0 > ranked.last().unwrap().0);
    }

    #[test]
    fn selection_prefers_unique_function_sets() {
        let mut lib = ExampleLibrary::new();
        // Three near-identical compute examples and one filter+compute.
        lib.add(Example::new(
            "count orders per region",
            "t.compute(aggregates = [Count()], for_each = [\"region\"])",
            "sales",
        ));
        lib.add(Example::new(
            "count orders per city",
            "t.compute(aggregates = [Count()], for_each = [\"city\"])",
            "sales",
        ));
        lib.add(Example::new(
            "count successful orders per region",
            "t.filter(\"status = 'ok'\").compute(aggregates = [Count()], for_each = [\"region\"])",
            "sales",
        ));
        let picked = lib.select("count orders per region", 2);
        assert_eq!(picked.len(), 2);
        let shapes: Vec<&Vec<String>> = picked.iter().map(|e| &e.functions).collect();
        assert_ne!(shapes[0], shapes[1], "second pick must add a new shape");
    }

    #[test]
    fn backfill_when_shapes_exhausted() {
        let mut lib = ExampleLibrary::new();
        lib.add(Example::new("a", "t.head(1)", "x"));
        lib.add(Example::new("b", "t.head(2)", "x"));
        let picked = lib.select("a", 2);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn builtin_spans_domains() {
        let lib = ExampleLibrary::builtin();
        let domains: BTreeSet<&str> = lib.examples().iter().map(|e| e.domain.as_str()).collect();
        assert!(domains.contains("sales"));
        assert!(domains.contains("finance"));
        assert!(domains.contains("healthcare"));
        assert!(lib.len() >= 15);
        // Every example parses in the Python API dialect.
        for e in lib.examples() {
            crate::pyapi::parse_pyapi(&e.program)
                .unwrap_or_else(|err| panic!("{} failed: {err}", e.program));
        }
    }

    #[test]
    fn render_is_q_a() {
        let e = Example::new("q text", "t.head(1)", "x");
        assert_eq!(e.render(), "Q: q text\nA: t.head(1)");
    }

    #[test]
    fn cosine_zero_for_disjoint() {
        let lib = ExampleLibrary::builtin();
        let ranked = lib.rank("zzzz qqqq xxxx");
        assert!(ranked.iter().all(|(s, _)| *s == 0.0));
    }
}
