//! The semantic layer (§4.2).
//!
//! "An abstraction that encapsulates domain-specific concepts, links
//! these concepts to the user intent, and offers a contextual
//! representation of these concepts to the LLM." Two components, per the
//! paper: a representation layer ([`Concept`]) and a retrieval mechanism
//! ([`SemanticLayer::retrieve`]) that matches query keywords against
//! concepts, weights matches by relevance, and returns the top few,
//! rendered concisely for the prompt's limited token budget.

use std::collections::BTreeMap;

/// What a concept denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum ConceptKind {
    /// A metric: a named formula over columns, e.g.
    /// `revenue = sum(price * (1 - discount) * quantity)`.
    Metric { formula: String },
    /// A dimension: a column used to slice metrics.
    Dimension { column: String },
    /// A value mapping: a phrase that translates to a predicate, e.g.
    /// "successful purchases" → `PurchaseStatus = 'Successful'`.
    ValueMapping { predicate: String },
    /// A hierarchy: ordered drill levels, e.g. region → state → city.
    Hierarchy { levels: Vec<String> },
    /// An annotation: free-text documentation of a column.
    Annotation { column: String, note: String },
}

/// One semantic-layer entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Canonical name ("successful purchases", "revenue").
    pub name: String,
    /// Extra trigger keywords beyond the name's own words.
    pub keywords: Vec<String>,
    pub kind: ConceptKind,
}

impl Concept {
    /// Concise one-line rendering for prompt context.
    pub fn render(&self) -> String {
        match &self.kind {
            ConceptKind::Metric { formula } => format!("metric {} = {}", self.name, formula),
            ConceptKind::Dimension { column } => {
                format!("dimension {} -> column {}", self.name, column)
            }
            ConceptKind::ValueMapping { predicate } => {
                format!("phrase {:?} means {}", self.name, predicate)
            }
            ConceptKind::Hierarchy { levels } => {
                format!("hierarchy {}: {}", self.name, levels.join(" > "))
            }
            ConceptKind::Annotation { column, note } => {
                format!("column {column}: {note}")
            }
        }
    }
}

/// A retrieved concept with its relevance weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredConcept {
    pub concept: Concept,
    pub score: f64,
}

/// The semantic layer: concepts plus retrieval.
#[derive(Debug, Clone, Default)]
pub struct SemanticLayer {
    concepts: Vec<Concept>,
}

/// Lowercase word tokens of a text (alphanumeric runs).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Crude stemmer: strips plural/verb suffixes so "purchases" matches
/// "purchase".
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    for suffix in ["ies", "ing", "ed", "s"] {
        if w.len() > suffix.len() + 2 {
            if let Some(stripped) = w.strip_suffix(suffix) {
                return stripped.to_string();
            }
        }
    }
    w
}

impl SemanticLayer {
    /// An empty layer.
    pub fn new() -> SemanticLayer {
        SemanticLayer::default()
    }

    /// Add a concept (later same-named concepts shadow earlier ones on
    /// retrieval ties; the `Define` skill appends here).
    pub fn add(&mut self, concept: Concept) {
        self.concepts.push(concept);
    }

    /// Register a `Define` skill's phrase as a value mapping.
    pub fn define_phrase(&mut self, phrase: impl Into<String>, expansion: impl Into<String>) {
        self.add(Concept {
            name: phrase.into(),
            keywords: Vec::new(),
            kind: ConceptKind::ValueMapping {
                predicate: expansion.into(),
            },
        });
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the layer is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// All concepts.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Exact (case-insensitive) phrase lookup, used by the phrase-based
    /// translator (§4.8) where matches are deterministic.
    pub fn lookup_phrase(&self, phrase: &str) -> Option<&Concept> {
        self.concepts
            .iter()
            .rev() // later definitions shadow earlier ones
            .find(|c| c.name.eq_ignore_ascii_case(phrase.trim()))
    }

    /// Retrieve the `top_k` concepts most relevant to `query`.
    ///
    /// Scoring: stemmed-token overlap between the query and the concept's
    /// name + keywords, weighted by how much of the concept name is
    /// covered (full-name matches outrank single-keyword hits).
    pub fn retrieve(&self, query: &str, top_k: usize) -> Vec<ScoredConcept> {
        let q_tokens: Vec<String> = tokenize(query).iter().map(|t| stem(t)).collect();
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<ScoredConcept> = Vec::new();
        for c in &self.concepts {
            let name_tokens: Vec<String> = tokenize(&c.name).iter().map(|t| stem(t)).collect();
            let kw_tokens: Vec<String> = c
                .keywords
                .iter()
                .flat_map(|k| tokenize(k))
                .map(|t| stem(&t))
                .collect();
            let name_hits = name_tokens.iter().filter(|t| q_tokens.contains(t)).count();
            let kw_hits = kw_tokens.iter().filter(|t| q_tokens.contains(t)).count();
            if name_hits == 0 && kw_hits == 0 {
                continue;
            }
            let name_cov = if name_tokens.is_empty() {
                0.0
            } else {
                name_hits as f64 / name_tokens.len() as f64
            };
            let score = 2.0 * name_cov + 0.5 * kw_hits as f64;
            scored.push(ScoredConcept {
                concept: c.clone(),
                score,
            });
        }
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.concept.name.cmp(&b.concept.name))
        });
        scored.truncate(top_k);
        scored
    }

    /// Concise prompt rendering of retrieved concepts ("The SL outputs
    /// need to be as concise as possible").
    pub fn render_for_prompt(&self, query: &str, top_k: usize) -> String {
        self.retrieve(query, top_k)
            .iter()
            .map(|s| s.concept.render())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The §4.2 sales walkthrough layer, plus metrics from §1's intro
    /// example (revenue = sum of price · (1 − discount)).
    pub fn sales_demo() -> SemanticLayer {
        let mut sl = SemanticLayer::new();
        sl.add(Concept {
            name: "successful purchases".into(),
            keywords: vec!["succeed".into(), "completed".into()],
            kind: ConceptKind::ValueMapping {
                predicate: "PurchaseStatus = 'Successful'".into(),
            },
        });
        sl.add(Concept {
            name: "unsuccessful purchases".into(),
            keywords: vec!["failed".into(), "aborted".into()],
            kind: ConceptKind::ValueMapping {
                predicate: "PurchaseStatus = 'Unsuccessful'".into(),
            },
        });
        sl.add(Concept {
            name: "revenue".into(),
            keywords: vec!["sales".into(), "income".into()],
            kind: ConceptKind::Metric {
                formula: "sum(price * (1 - discount) * quantity)".into(),
            },
        });
        sl.add(Concept {
            name: "region".into(),
            keywords: vec!["territory".into(), "area".into()],
            kind: ConceptKind::Dimension {
                column: "region".into(),
            },
        });
        sl.add(Concept {
            name: "order date".into(),
            keywords: vec!["when".into(), "time".into()],
            kind: ConceptKind::Annotation {
                column: "order_date".into(),
                note: "calendar date the order was placed".into(),
            },
        });
        sl.add(Concept {
            name: "geography".into(),
            keywords: vec!["location".into()],
            kind: ConceptKind::Hierarchy {
                levels: vec!["region".into(), "state".into(), "city".into()],
            },
        });
        sl
    }
}

/// Schema hints: column names per dataset, rendered for prompts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaHints {
    /// dataset name → column names.
    pub tables: BTreeMap<String, Vec<String>>,
}

impl SchemaHints {
    /// Build from one named table schema.
    pub fn single(name: impl Into<String>, columns: Vec<String>) -> SchemaHints {
        let mut tables = BTreeMap::new();
        tables.insert(name.into(), columns);
        SchemaHints { tables }
    }

    /// All column names across tables.
    pub fn all_columns(&self) -> Vec<&str> {
        self.tables
            .values()
            .flat_map(|cols| cols.iter().map(|c| c.as_str()))
            .collect()
    }

    /// Render for prompt context.
    pub fn render(&self) -> String {
        self.tables
            .iter()
            .map(|(t, cols)| format!("table {t}({})", cols.join(", ")))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section42_walkthrough() {
        // "How many purchases were successful in the month of April" must
        // surface the PurchaseStatus mapping.
        let sl = SemanticLayer::sales_demo();
        let hits = sl.retrieve(
            "How many purchases were successful in the month of April",
            3,
        );
        assert!(!hits.is_empty());
        assert_eq!(hits[0].concept.name, "successful purchases");
        assert!(hits[0]
            .concept
            .render()
            .contains("PurchaseStatus = 'Successful'"));
    }

    #[test]
    fn metric_retrieval_by_keyword() {
        let sl = SemanticLayer::sales_demo();
        let hits = sl.retrieve("total revenue by region", 3);
        let names: Vec<&str> = hits.iter().map(|h| h.concept.name.as_str()).collect();
        assert!(names.contains(&"revenue"));
        assert!(names.contains(&"region"));
    }

    #[test]
    fn irrelevant_query_retrieves_nothing() {
        let sl = SemanticLayer::sales_demo();
        assert!(sl.retrieve("weather patterns in antarctica", 3).is_empty());
        assert!(sl.retrieve("", 3).is_empty());
    }

    #[test]
    fn stemming_bridges_morphology() {
        assert_eq!(stem("purchases"), "purchase");
        assert_eq!(stem("running"), "runn");
        assert_eq!(stem("cities"), "cit");
        assert_eq!(stem("sales"), "sale");
        // Short words survive untouched.
        assert_eq!(stem("is"), "is");
    }

    #[test]
    fn define_phrase_shadows() {
        let mut sl = SemanticLayer::new();
        sl.define_phrase("vip customers", "tier = 'gold'");
        sl.define_phrase("vip customers", "tier IN ('gold', 'platinum')");
        let c = sl.lookup_phrase("VIP Customers").unwrap();
        match &c.kind {
            ConceptKind::ValueMapping { predicate } => {
                assert!(predicate.contains("platinum"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn top_k_truncation_and_ordering() {
        let sl = SemanticLayer::sales_demo();
        let hits = sl.retrieve("successful purchases revenue region", 2);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn schema_hints_render() {
        let h = SchemaHints::single("sales", vec!["price".into(), "region".into()]);
        assert_eq!(h.render(), "table sales(price, region)");
        assert_eq!(h.all_columns(), vec!["price", "region"]);
    }

    #[test]
    fn tokenizer_handles_punctuation() {
        assert_eq!(
            tokenize("How many purchases, really?!"),
            vec!["how", "many", "purchases", "really"]
        );
    }
}
