//! The difficulty metrics of §4.7: Misalignment (M) and Degree of
//! Composition (C).
//!
//! * **M** is a weighted sum of a query-mismatch score `s1` (how many
//!   content tokens of the NL question fail to link to table identifiers
//!   or semantic concepts) and a schema-irrelevance score `s2` (how hard
//!   schema identifiers are to link to real-world concepts — opaque
//!   abbreviations, digit-laden fragments).
//! * **C** measures the functional complexity of the gold program:
//!   function weights (a join "carries more weight than an aggregation on
//!   a single column") scaled by composition depth (later steps compose
//!   over earlier results, the chain analogue of SQL nesting levels).
//!
//! Thresholds match Figure 7: M = 0.4, C = 30.

use crate::pyapi::parse_pyapi;
use crate::semantic::{stem, tokenize, SchemaHints, SemanticLayer};

/// The Figure 7 misalignment threshold.
pub const M_THRESHOLD: f64 = 0.4;
/// The Figure 7 composition threshold.
pub const C_THRESHOLD: f64 = 30.0;

/// Weight of `s1` in M (the query-side term dominates).
const W_QUERY_MISMATCH: f64 = 0.6;
/// Weight of `s2` in M.
const W_SCHEMA_IRRELEVANCE: f64 = 0.4;

/// A (M, C) classification zone, written `(M, C)` as in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    LowLow,
    LowHigh,
    HighLow,
    HighHigh,
}

impl Zone {
    /// Classify a sample.
    pub fn of(m: f64, c: f64) -> Zone {
        match (m >= M_THRESHOLD, c >= C_THRESHOLD) {
            (false, false) => Zone::LowLow,
            (false, true) => Zone::LowHigh,
            (true, false) => Zone::HighLow,
            (true, true) => Zone::HighHigh,
        }
    }

    /// The paper's "(low, high)" spelling.
    pub fn label(self) -> &'static str {
        match self {
            Zone::LowLow => "(low, low)",
            Zone::LowHigh => "(low, high)",
            Zone::HighLow => "(high, low)",
            Zone::HighHigh => "(high, high)",
        }
    }

    /// All zones in the Table 2 row order.
    pub fn all() -> [Zone; 4] {
        [Zone::LowLow, Zone::LowHigh, Zone::HighLow, Zone::HighHigh]
    }
}

/// English stopwords + question scaffolding ignored by `s1` (they carry
/// intent structure, not schema linkage).
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "for", "in", "on", "at", "by", "to", "and", "or", "is", "are", "was",
    "were", "what", "which", "who", "how", "many", "much", "show", "me", "list", "each", "per",
    "with", "from", "that", "this", "these", "those", "all", "any", "do", "does", "did", "than",
    "then", "it", "its", "their", "there", "be", "been", "most", "least", "top", "bottom", "first",
    "last", "number", "count", "total", "average", "mean", "median", "sum", "minimum", "maximum",
    "highest", "lowest", "more", "less", "group", "grouped", "sorted", "sort", "order", "ordered",
    "between", "not", "no", "every",
    // Operation words describe the requested transformation, not schema
    // entities, so they are not evidence of misalignment.
    "rows", "row", "records", "record", "find", "compute", "computed", "join", "joined", "combine",
    "combined", "above", "below", "over", "under", "where", "keep", "when", "value", "values",
    "distinct", "unique",
];

/// Whether a token is question scaffolding / an operation word rather
/// than a content token (public: the simulated LLM uses the same notion
/// when estimating its own confidence).
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Tokens of an identifier: split on `_` and camelCase humps, stemmed.
pub fn identifier_tokens(ident: &str) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in ident.chars() {
        if c == '_' || c == '.' || c.is_whitespace() {
            if !cur.is_empty() {
                parts.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
        } else if c.is_uppercase() && prev_lower {
            parts.push(std::mem::take(&mut cur));
            cur.extend(c.to_lowercase());
            prev_lower = false;
        } else {
            prev_lower = c.is_lowercase();
            cur.extend(c.to_lowercase());
        }
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts.iter().map(|p| stem(p)).collect()
}

/// `s1`: fraction of content tokens in the question with no fuzzy link to
/// a schema identifier or semantic concept.
pub fn query_mismatch(question: &str, schema: &SchemaHints, semantics: &SemanticLayer) -> f64 {
    let mut vocab: Vec<String> = Vec::new();
    for t in schema.tables.keys() {
        vocab.extend(identifier_tokens(t));
    }
    for c in schema.all_columns() {
        vocab.extend(identifier_tokens(c));
    }
    for concept in semantics.concepts() {
        vocab.extend(tokenize(&concept.name).iter().map(|t| stem(t)));
        for k in &concept.keywords {
            vocab.extend(tokenize(k).iter().map(|t| stem(t)));
        }
    }
    let content: Vec<String> = tokenize(question)
        .into_iter()
        .filter(|t| !is_stopword(t) && t.chars().any(|c| c.is_alphabetic()))
        .map(|t| stem(&t))
        .collect();
    if content.is_empty() {
        return 0.0;
    }
    let linked = content
        .iter()
        .filter(|t| {
            vocab.iter().any(|v| {
                v == *t
                    || (v.len() >= 4
                        && t.len() >= 4
                        && (v.starts_with(t.as_str()) || t.starts_with(v)))
            })
        })
        .count();
    1.0 - linked as f64 / content.len() as f64
}

/// `s2`: how hard schema identifiers are to link to real-world concepts —
/// the mean opaque-fragment rate over columns (fragments that are very
/// short, digit-bearing, or vowel-free read as abbreviations: `qty_x2`
/// scores high, `party_sobriety` scores low).
pub fn schema_irrelevance(schema: &SchemaHints) -> f64 {
    let cols = schema.all_columns();
    if cols.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for col in &cols {
        let frags = identifier_tokens(col);
        if frags.is_empty() {
            total += 1.0;
            continue;
        }
        let opaque = frags
            .iter()
            .filter(|f| {
                f.len() <= 2
                    || f.chars().any(|c| c.is_ascii_digit())
                    || !f.chars().any(|c| "aeiou".contains(c))
            })
            .count();
        total += opaque as f64 / frags.len() as f64;
    }
    total / cols.len() as f64
}

/// Misalignment: `M = 0.6·s1 + 0.4·s2`.
pub fn misalignment(question: &str, schema: &SchemaHints, semantics: &SemanticLayer) -> f64 {
    W_QUERY_MISMATCH * query_mismatch(question, schema, semantics)
        + W_SCHEMA_IRRELEVANCE * schema_irrelevance(schema)
}

/// Per-function composition weight ("a JOIN operation carries more
/// weight than an aggregation function on a single column").
pub fn function_weight(method: &str) -> f64 {
    match method {
        "join" | "merge" => 12.0,
        "pivot" => 10.0,
        "predict_time_series" | "train_model" => 9.0,
        "cluster" | "detect_outliers" => 8.0,
        "compute" | "aggregate_data" => 6.0,
        "with_column" | "create_column" => 4.0,
        "filter" | "keep_rows" => 3.0,
        "top" => 3.0,
        "concat" => 5.0,
        "sort" | "sort_values" => 2.0,
        "distinct" | "drop_duplicates" | "dropna" | "fillna" | "sample" => 2.0,
        "select" | "keep_columns" | "head" | "limit" | "describe" => 1.0,
        _ => 2.0,
    }
}

/// Degree of composition of a Python-API program: Σ weight(step) ·
/// (1 + 0.5·depth), where depth counts the prior steps in the statement
/// chain plus prior statements (the chain analogue of SQL nesting).
/// Unparseable programs score 0 (no valid composition).
pub fn composition(program: &str) -> f64 {
    let Ok(parsed) = parse_pyapi(program) else {
        return 0.0;
    };
    let mut c = 0.0;
    let mut depth = 0usize;
    for st in &parsed.statements {
        if st.is_print {
            continue;
        }
        for call in &st.calls {
            let method = call_method_name(call);
            c += function_weight(method) * (1.0 + 0.5 * depth as f64);
            depth += 1;
        }
    }
    c
}

fn call_method_name(call: &dc_skills::SkillCall) -> &'static str {
    use dc_skills::SkillCall::*;
    match call {
        KeepRows { .. } | DropRows { .. } => "filter",
        KeepColumns { .. } => "select",
        DropColumns { .. } => "select",
        CreateColumn { .. } | CreateConstantColumn { .. } => "with_column",
        Compute { .. } => "compute",
        Pivot { .. } => "pivot",
        Sort { .. } => "sort",
        Top { .. } => "top",
        Limit { .. } => "head",
        Concat { .. } => "concat",
        Join { .. } => "join",
        Distinct { .. } => "distinct",
        DropMissing { .. } | FillMissing { .. } | Sample { .. } => "dropna",
        TrainModel { .. } => "train_model",
        Predict { .. } => "train_model",
        PredictTimeSeries { .. } => "predict_time_series",
        DetectOutliers { .. } => "detect_outliers",
        Cluster { .. } => "cluster",
        _ => "describe",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_schema() -> SchemaHints {
        SchemaHints::single(
            "sales",
            vec![
                "order_id".into(),
                "region".into(),
                "product".into(),
                "price".into(),
                "quantity".into(),
            ],
        )
    }

    fn opaque_schema() -> SchemaHints {
        SchemaHints::single(
            "t1",
            vec!["c1".into(), "qx_7".into(), "zzt".into(), "mrn_cd2".into()],
        )
    }

    #[test]
    fn aligned_question_scores_low() {
        let sl = SemanticLayer::new();
        let m = misalignment(
            "How many orders were placed in each region",
            &clean_schema(),
            &sl,
        );
        assert!(m < M_THRESHOLD, "m = {m}");
    }

    #[test]
    fn vague_question_scores_high() {
        let sl = SemanticLayer::new();
        let m = misalignment(
            "which deals moved the needle for our western folks",
            &clean_schema(),
            &sl,
        );
        assert!(m > 0.3, "m = {m}");
    }

    #[test]
    fn semantic_layer_reduces_misalignment() {
        let schema = clean_schema();
        let without = misalignment("total revenue by region", &schema, &SemanticLayer::new());
        let with = misalignment(
            "total revenue by region",
            &schema,
            &SemanticLayer::sales_demo(),
        );
        assert!(
            with < without,
            "semantic concepts should link 'revenue': {with} vs {without}"
        );
    }

    #[test]
    fn opaque_schema_raises_s2() {
        let clean = schema_irrelevance(&clean_schema());
        let opaque = schema_irrelevance(&opaque_schema());
        assert!(opaque > clean + 0.4, "{opaque} vs {clean}");
        assert!(clean < 0.3);
    }

    #[test]
    fn composition_ordering() {
        let simple = composition("t.head(5)");
        let medium =
            composition("t.filter(\"x > 1\").compute(aggregates = [Count()], for_each = [\"k\"])");
        let complex = composition(
            "t.join(\"u\", on = [\"k\"]).filter(\"x > 1\").with_column(\"y\", \"a * b\").compute(aggregates = [Sum(\"y\")], for_each = [\"k\"]).sort(by = [\"SumY\"], ascending = [False]).head(10)",
        );
        assert!(simple < medium && medium < complex);
        assert!(simple < C_THRESHOLD);
        assert!(complex > C_THRESHOLD, "complex = {complex}");
    }

    #[test]
    fn join_heavier_than_single_aggregate() {
        // The paper's explicit example.
        assert!(function_weight("join") > function_weight("compute"));
    }

    #[test]
    fn unparseable_program_scores_zero() {
        assert_eq!(composition("not a program ("), 0.0);
    }

    #[test]
    fn zones_classify() {
        assert_eq!(Zone::of(0.1, 5.0), Zone::LowLow);
        assert_eq!(Zone::of(0.1, 50.0), Zone::LowHigh);
        assert_eq!(Zone::of(0.7, 5.0), Zone::HighLow);
        assert_eq!(Zone::of(0.7, 50.0), Zone::HighHigh);
        assert_eq!(Zone::of(M_THRESHOLD, C_THRESHOLD), Zone::HighHigh);
        assert_eq!(Zone::HighLow.label(), "(high, low)");
    }

    #[test]
    fn identifier_tokens_split_variants() {
        assert_eq!(
            identifier_tokens("party_sobriety"),
            vec!["party", "sobriety"]
        );
        assert_eq!(
            identifier_tokens("PurchaseStatus"),
            vec!["purchase", "statu"]
        ); // stemmed
        assert_eq!(identifier_tokens("order_id"), vec!["order", "id"]);
    }

    #[test]
    fn empty_inputs() {
        let sl = SemanticLayer::new();
        assert_eq!(query_mismatch("", &clean_schema(), &sl), 0.0);
        assert_eq!(schema_irrelevance(&SchemaHints::default()), 0.0);
    }
}
