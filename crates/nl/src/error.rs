//! NL2Code errors.

use std::fmt;

/// Errors from the NL2Code pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum NlError {
    /// Python-API parse failure.
    PySyntax { message: String, line: usize },
    /// The program checker rejected the generated code.
    Check { message: String },
    /// The model produced nothing usable.
    Generation { message: String },
    /// Translation between dialects failed.
    Translation { message: String },
    /// Propagated skill failure during execution.
    Skill(dc_skills::SkillError),
    /// Propagated GEL failure.
    Gel(dc_gel::GelError),
}

impl NlError {
    /// Convenience constructor for [`NlError::PySyntax`].
    pub fn syntax(message: impl Into<String>, line: usize) -> Self {
        NlError::PySyntax {
            message: message.into(),
            line,
        }
    }

    /// Convenience constructor for [`NlError::Check`].
    pub fn check(message: impl Into<String>) -> Self {
        NlError::Check {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`NlError::Translation`].
    pub fn translation(message: impl Into<String>) -> Self {
        NlError::Translation {
            message: message.into(),
        }
    }
}

impl fmt::Display for NlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NlError::PySyntax { message, line } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            NlError::Check { message } => write!(f, "program check failed: {message}"),
            NlError::Generation { message } => write!(f, "generation failed: {message}"),
            NlError::Translation { message } => write!(f, "translation failed: {message}"),
            NlError::Skill(e) => write!(f, "skill error: {e}"),
            NlError::Gel(e) => write!(f, "gel error: {e}"),
        }
    }
}

impl std::error::Error for NlError {}

impl From<dc_skills::SkillError> for NlError {
    fn from(e: dc_skills::SkillError) -> Self {
        NlError::Skill(e)
    }
}
impl From<dc_gel::GelError> for NlError {
    fn from(e: dc_gel::GelError) -> Self {
        NlError::Gel(e)
    }
}

/// Result alias for the NL crate.
pub type Result<T> = std::result::Result<T, NlError>;
