//! The DataChat Python API dialect (§4.1).
//!
//! "We chose DataChat's Python API as the dialect for representing the
//! analytics recipes" — a thin wrapper around skills whose calls map 1:1
//! onto GEL. This module parses the dialect into skill calls and prints
//! skill calls back as Python, giving the polyglot translation of §4
//! (Python ↔ GEL ↔ SQL).
//!
//! Grammar (method-chain subset of Python):
//!
//! ```text
//! program   := statement*
//! statement := [ident "="] chain | "print" "(" ... ")"
//! chain     := ident ("." method "(" args ")")*
//! args      := (kwarg | value) ("," ...)*
//! value     := string | number | bool | list | aggcall
//! aggcall   := Ident "(" string ")"        e.g. Count("case_id")
//! ```

use dc_engine::{AggFunc, AggSpec, JoinType, Value};
use dc_ml::MlMethod;
use dc_skills::SkillCall;
use dc_viz::ChartType;

use crate::error::{NlError, Result};

/// One parsed statement: an optional assignment target, the root dataset
/// identifier, and the chained skill calls.
#[derive(Debug, Clone, PartialEq)]
pub struct PyStatement {
    pub target: Option<String>,
    pub root: String,
    pub calls: Vec<SkillCall>,
    /// True for `print(...)` statements (dead code the checker strips).
    pub is_print: bool,
}

/// A parsed Python-API program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PyProgram {
    pub statements: Vec<PyStatement>,
}

// ---------- lexer ----------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Sym(char),
    Eof,
}

fn lex(src: &str, line_of: &mut Vec<usize>) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                // Newlines are statement separators unless we're inside
                // parens; the parser tracks depth, so emit a symbol.
                out.push(Tok::Sym('\n'));
                line_of.push(line);
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | '[' | ']' | ',' | '.' | '=' => {
                out.push(Tok::Sym(c));
                line_of.push(line);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(NlError::syntax("unterminated string", line));
                    }
                    let ch = src[i..].chars().next().expect("in bounds");
                    i += ch.len_utf8();
                    if ch == quote {
                        break;
                    }
                    if ch == '\\' && i < bytes.len() {
                        let esc = src[i..].chars().next().expect("in bounds");
                        i += esc.len_utf8();
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    } else {
                        s.push(ch);
                    }
                }
                out.push(Tok::Str(s));
                line_of.push(line);
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        NlError::syntax(format!("bad float {text}"), line)
                    })?));
                } else {
                    out.push(Tok::Int(
                        text.parse()
                            .map_err(|_| NlError::syntax(format!("bad int {text}"), line))?,
                    ));
                }
                line_of.push(line);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
                line_of.push(line);
            }
            other => {
                return Err(NlError::syntax(
                    format!("unexpected character {other:?}"),
                    line,
                ))
            }
        }
    }
    out.push(Tok::Eof);
    line_of.push(line);
    Ok(out)
}

// ---------- argument values ----------

/// A parsed argument value.
/// Positional and keyword arguments of one parsed call.
type ParsedArgs = (Vec<Arg>, Vec<(String, Arg)>);

#[derive(Debug, Clone, PartialEq)]

enum Arg {
    Value(Value),
    List(Vec<Arg>),
    /// `Count("case_id")`-style aggregate constructor.
    AggCall {
        func: String,
        column: Option<String>,
    },
    Ident(String),
}

impl Arg {
    fn as_str(&self) -> Option<String> {
        match self {
            Arg::Value(Value::Str(s)) => Some(s.clone()),
            Arg::Ident(s) => Some(s.clone()),
            _ => None,
        }
    }

    fn as_str_list(&self) -> Option<Vec<String>> {
        match self {
            Arg::List(items) => items.iter().map(|a| a.as_str()).collect(),
            Arg::Value(Value::Str(s)) => Some(vec![s.clone()]),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        match self {
            Arg::Value(Value::Int(i)) if *i >= 0 => Some(*i as usize),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Arg::Value(Value::Int(i)) => Some(*i as f64),
            Arg::Value(Value::Float(f)) => Some(*f),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Arg::Value(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

struct Parser {
    toks: Vec<Tok>,
    lines: Vec<usize>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn line(&self) -> usize {
        self.lines.get(self.pos).copied().unwrap_or(0)
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, c: char) -> bool {
        if *self.peek() == Tok::Sym(c) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(NlError::syntax(
                format!("expected {c:?}, found {:?}", self.peek()),
                self.line(),
            ))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat('\n') {}
    }

    fn parse_arg(&mut self) -> Result<Arg> {
        match self.next() {
            Tok::Str(s) => Ok(Arg::Value(Value::Str(s))),
            Tok::Int(i) => Ok(Arg::Value(Value::Int(i))),
            Tok::Float(f) => Ok(Arg::Value(Value::Float(f))),
            Tok::Sym('[') => {
                let mut items = Vec::new();
                self.skip_newlines();
                if !self.eat(']') {
                    loop {
                        self.skip_newlines();
                        items.push(self.parse_arg()?);
                        self.skip_newlines();
                        if !self.eat(',') {
                            break;
                        }
                    }
                    self.skip_newlines();
                    self.expect(']')?;
                }
                Ok(Arg::List(items))
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "True" => return Ok(Arg::Value(Value::Bool(true))),
                    "False" => return Ok(Arg::Value(Value::Bool(false))),
                    "None" => return Ok(Arg::Value(Value::Null)),
                    _ => {}
                }
                if self.eat('(') {
                    // Aggregate constructor: Count("case_id") / Count().
                    let column = match self.peek() {
                        Tok::Str(s) => {
                            let s = s.clone();
                            self.next();
                            Some(s)
                        }
                        _ => None,
                    };
                    self.expect(')')?;
                    Ok(Arg::AggCall { func: name, column })
                } else {
                    Ok(Arg::Ident(name))
                }
            }
            other => Err(NlError::syntax(
                format!("unexpected token {other:?} in argument"),
                self.line(),
            )),
        }
    }

    /// Parse `( [kw=]arg, ... )`; newlines inside parens are ignored.
    fn parse_args(&mut self) -> Result<ParsedArgs> {
        self.expect('(')?;
        let mut positional = Vec::new();
        let mut keyword = Vec::new();
        self.skip_newlines();
        if self.eat(')') {
            return Ok((positional, keyword));
        }
        loop {
            self.skip_newlines();
            // kwarg?
            let is_kw = matches!(self.peek(), Tok::Ident(_))
                && self.toks.get(self.pos + 1) == Some(&Tok::Sym('='));
            if is_kw {
                let Tok::Ident(name) = self.next() else {
                    unreachable!()
                };
                self.next(); // '='
                self.skip_newlines();
                keyword.push((name, self.parse_arg()?));
            } else {
                positional.push(self.parse_arg()?);
            }
            self.skip_newlines();
            if !self.eat(',') {
                break;
            }
            self.skip_newlines();
            if self.eat(')') {
                return Ok((positional, keyword));
            }
        }
        self.skip_newlines();
        self.expect(')')?;
        Ok((positional, keyword))
    }
}

/// Parse a Python-API program.
pub fn parse_pyapi(src: &str) -> Result<PyProgram> {
    let mut lines = Vec::new();
    let toks = lex(src, &mut lines)?;
    let mut p = Parser {
        toks,
        lines,
        pos: 0,
    };
    let mut program = PyProgram::default();
    loop {
        p.skip_newlines();
        if *p.peek() == Tok::Eof {
            break;
        }
        let line = p.line();
        let Tok::Ident(first) = p.next() else {
            return Err(NlError::syntax("expected an identifier", line));
        };
        // print(...) — parsed and marked dead.
        if first == "print" {
            let _ = p.parse_args()?;
            program.statements.push(PyStatement {
                target: None,
                root: "print".into(),
                calls: Vec::new(),
                is_print: true,
            });
            continue;
        }
        // Assignment?
        let (target, root) = if p.eat('=') {
            p.skip_newlines();
            let Tok::Ident(root) = p.next() else {
                return Err(NlError::syntax("expected a dataset identifier", p.line()));
            };
            (Some(first), root)
        } else {
            (None, first)
        };
        // Method chain.
        let mut calls = Vec::new();
        while p.eat('.') {
            let Tok::Ident(method) = p.next() else {
                return Err(NlError::syntax("expected a method name", p.line()));
            };
            let mline = p.line();
            let (pos_args, kw_args) = p.parse_args()?;
            calls.push(method_to_skill(&method, &pos_args, &kw_args, mline)?);
        }
        program.statements.push(PyStatement {
            target,
            root,
            calls,
            is_print: false,
        });
    }
    Ok(program)
}

fn kw<'a>(kw_args: &'a [(String, Arg)], names: &[&str]) -> Option<&'a Arg> {
    kw_args
        .iter()
        .find(|(k, _)| names.iter().any(|n| k.eq_ignore_ascii_case(n)))
        .map(|(_, a)| a)
}

fn agg_from_arg(a: &Arg) -> Result<AggSpec> {
    match a {
        Arg::AggCall { func, column } => {
            let f = AggFunc::from_name(func)
                .or_else(|| match func.to_ascii_lowercase().as_str() {
                    "countrecords" => Some(AggFunc::CountRecords),
                    "countdistinct" => Some(AggFunc::CountDistinct),
                    "average" => Some(AggFunc::Avg),
                    "stddev" => Some(AggFunc::StdDev),
                    _ => None,
                })
                .ok_or_else(|| NlError::check(format!("unknown aggregate {func:?}")))?;
            let f = if f == AggFunc::Count && column.is_none() {
                AggFunc::CountRecords
            } else {
                f
            };
            Ok(AggSpec {
                func: f,
                column: column.clone(),
                output: AggSpec::default_output(f, column.as_deref()),
            })
        }
        other => Err(NlError::check(format!(
            "expected an aggregate constructor, found {other:?}"
        ))),
    }
}

fn method_to_skill(
    method: &str,
    pos: &[Arg],
    kws: &[(String, Arg)],
    line: usize,
) -> Result<SkillCall> {
    let need_str = |a: Option<&Arg>, what: &str| -> Result<String> {
        a.and_then(|a| a.as_str())
            .ok_or_else(|| NlError::syntax(format!("{method} needs {what}"), line))
    };
    match method {
        "filter" | "keep_rows" => {
            let cond = need_str(
                pos.first().or(kw(kws, &["condition", "where"])),
                "a condition",
            )?;
            let predicate =
                dc_gel::parse_condition(&cond).map_err(|e| NlError::syntax(e.to_string(), line))?;
            Ok(SkillCall::KeepRows { predicate })
        }
        "select" | "keep_columns" => {
            let columns = pos
                .first()
                .or(kw(kws, &["columns"]))
                .and_then(|a| a.as_str_list())
                .or_else(|| pos.iter().map(|a| a.as_str()).collect())
                .ok_or_else(|| NlError::syntax("select needs column names", line))?;
            Ok(SkillCall::KeepColumns { columns })
        }
        "drop_columns" => {
            let columns = pos
                .first()
                .or(kw(kws, &["columns"]))
                .and_then(|a| a.as_str_list())
                .ok_or_else(|| NlError::syntax("drop_columns needs column names", line))?;
            Ok(SkillCall::DropColumns { columns })
        }
        "rename" | "rename_column" => Ok(SkillCall::RenameColumn {
            from: need_str(pos.first().or(kw(kws, &["from_name"])), "a source name")?,
            to: need_str(pos.get(1).or(kw(kws, &["to_name", "to"])), "a target name")?,
        }),
        "with_column" | "create_column" => {
            let name = need_str(pos.first().or(kw(kws, &["name"])), "a column name")?;
            let expr_text = need_str(
                pos.get(1).or(kw(kws, &["expr", "expression"])),
                "an expression",
            )?;
            let expr =
                dc_sql::parse_expr(&expr_text).map_err(|e| NlError::syntax(e.to_string(), line))?;
            Ok(SkillCall::CreateColumn { name, expr })
        }
        "with_constant" | "create_constant_column" => {
            let name = need_str(pos.first().or(kw(kws, &["name"])), "a column name")?;
            let value = match pos.get(1).or(kw(kws, &["value", "text"])) {
                Some(Arg::Value(v)) => v.clone(),
                Some(Arg::Ident(s)) => Value::Str(s.clone()),
                _ => return Err(NlError::syntax("expected a constant value", line)),
            };
            Ok(SkillCall::CreateConstantColumn { name, value })
        }
        "compute" | "aggregate_data" => {
            let agg_arg = kw(kws, &["aggregates", "aggregate", "aggregate_data"])
                .or(pos.first())
                .ok_or_else(|| NlError::syntax("compute needs aggregates", line))?;
            let aggs: Vec<AggSpec> = match agg_arg {
                Arg::List(items) => items.iter().map(agg_from_arg).collect::<Result<_>>()?,
                single => vec![agg_from_arg(single)?],
            };
            let for_each = kw(kws, &["for_each", "group_by"])
                .and_then(|a| a.as_str_list())
                .unwrap_or_default();
            let names = kw(kws, &["names", "call", "output_names"]).and_then(|a| a.as_str_list());
            let mut aggs = aggs;
            if let Some(names) = names {
                for (a, n) in aggs.iter_mut().zip(names) {
                    a.output = n;
                }
            }
            Ok(SkillCall::Compute { aggs, for_each })
        }
        "pivot" => Ok(SkillCall::Pivot {
            index: need_str(kw(kws, &["index"]).or(pos.first()), "an index column")?,
            columns: need_str(kw(kws, &["columns"]).or(pos.get(1)), "a columns column")?,
            values: need_str(kw(kws, &["values"]).or(pos.get(2)), "a values column")?,
            agg: kw(kws, &["agg", "aggregate"])
                .and_then(|a| a.as_str())
                .and_then(|s| AggFunc::from_name(&s))
                .unwrap_or(AggFunc::Sum),
        }),
        "sort" | "sort_values" => {
            let by = kw(kws, &["by"])
                .or(pos.first())
                .and_then(|a| a.as_str_list())
                .ok_or_else(|| NlError::syntax("sort needs columns", line))?;
            let ascending = kw(kws, &["ascending"])
                .and_then(|a| match a {
                    Arg::Value(Value::Bool(b)) => Some(vec![*b]),
                    Arg::List(items) => items.iter().map(|x| x.as_bool()).collect(),
                    _ => None,
                })
                .unwrap_or_default();
            let keys = by
                .into_iter()
                .enumerate()
                .map(|(i, c)| {
                    let asc = ascending
                        .get(i)
                        .or(ascending.first())
                        .copied()
                        .unwrap_or(true);
                    (c, asc)
                })
                .collect();
            Ok(SkillCall::Sort { keys })
        }
        "head" | "limit" => Ok(SkillCall::Limit {
            n: pos
                .first()
                .or(kw(kws, &["n"]))
                .and_then(|a| a.as_usize())
                .ok_or_else(|| NlError::syntax("limit needs a count", line))?,
        }),
        "top" => Ok(SkillCall::Top {
            column: need_str(kw(kws, &["by", "column"]).or(pos.get(1)), "a column")?,
            n: pos
                .first()
                .or(kw(kws, &["n"]))
                .and_then(|a| a.as_usize())
                .ok_or_else(|| NlError::syntax("top needs a count", line))?,
        }),
        "distinct" | "drop_duplicates" => Ok(SkillCall::Distinct {
            columns: pos
                .first()
                .or(kw(kws, &["columns", "subset"]))
                .and_then(|a| a.as_str_list())
                .unwrap_or_default(),
        }),
        "dropna" | "drop_missing" => Ok(SkillCall::DropMissing {
            columns: pos
                .first()
                .or(kw(kws, &["columns", "subset"]))
                .and_then(|a| a.as_str_list())
                .unwrap_or_default(),
        }),
        "fillna" | "fill_missing" => {
            let column = need_str(pos.first().or(kw(kws, &["column"])), "a column")?;
            let value = match pos.get(1).or(kw(kws, &["value"])) {
                Some(Arg::Value(v)) => v.clone(),
                Some(Arg::Ident(s)) => Value::Str(s.clone()),
                _ => return Err(NlError::syntax("fill_missing needs a value", line)),
            };
            Ok(SkillCall::FillMissing { column, value })
        }
        "sample" => Ok(SkillCall::Sample {
            fraction: pos
                .first()
                .or(kw(kws, &["fraction", "frac"]))
                .and_then(|a| a.as_f64())
                .ok_or_else(|| NlError::syntax("sample needs a fraction", line))?,
            seed: kw(kws, &["seed"])
                .and_then(|a| a.as_usize())
                .map(|s| s as u64)
                .unwrap_or(42),
        }),
        "concat" => Ok(SkillCall::Concat {
            other: need_str(pos.first().or(kw(kws, &["other"])), "another dataset")?,
            remove_duplicates: kw(kws, &["remove_duplicates", "dedupe"])
                .and_then(|a| a.as_bool())
                .unwrap_or(false),
        }),
        "join" | "merge" => {
            let on = kw(kws, &["on"])
                .and_then(|a| a.as_str_list())
                .unwrap_or_default();
            if on.is_empty() {
                return Err(NlError::syntax("join needs on= keys", line));
            }
            let how = match kw(kws, &["how"]).and_then(|a| a.as_str()).as_deref() {
                Some("left") => JoinType::Left,
                Some("right") => JoinType::Right,
                Some("full") | Some("outer") => JoinType::Full,
                _ => JoinType::Inner,
            };
            Ok(SkillCall::Join {
                other: need_str(pos.first().or(kw(kws, &["other"])), "another dataset")?,
                left_on: on.clone(),
                right_on: on,
                how,
            })
        }
        "visualize" => Ok(SkillCall::Visualize {
            kpi: need_str(pos.first().or(kw(kws, &["kpi"])), "a KPI column")?,
            by: kw(kws, &["by", "using"])
                .and_then(|a| a.as_str_list())
                .unwrap_or_default(),
        }),
        "plot" => {
            let chart = match kw(kws, &["chart", "kind"])
                .or(pos.first())
                .and_then(|a| a.as_str())
                .unwrap_or_else(|| "line".into())
                .to_ascii_lowercase()
                .as_str()
            {
                "bar" => ChartType::Bar,
                "scatter" => ChartType::Scatter,
                "bubble" => ChartType::Bubble,
                "histogram" => ChartType::Histogram,
                "donut" | "pie" => ChartType::Donut,
                "box" => ChartType::Box,
                "violin" => ChartType::Violin,
                "heatmap" => ChartType::Heatmap,
                _ => ChartType::Line,
            };
            Ok(SkillCall::Plot {
                chart,
                x: kw(kws, &["x"]).and_then(|a| a.as_str()),
                y: kw(kws, &["y"]).and_then(|a| a.as_str()),
                color: kw(kws, &["color"]).and_then(|a| a.as_str()),
                size: kw(kws, &["size"]).and_then(|a| a.as_str()),
                for_each: kw(kws, &["for_each"]).and_then(|a| a.as_str()),
            })
        }
        "train_model" => Ok(SkillCall::TrainModel {
            name: kw(kws, &["name"])
                .and_then(|a| a.as_str())
                .unwrap_or_else(|| "model".into()),
            target: need_str(kw(kws, &["target"]).or(pos.first()), "a target column")?,
            features: kw(kws, &["features"])
                .and_then(|a| a.as_str_list())
                .unwrap_or_default(),
            method: match kw(kws, &["method"]).and_then(|a| a.as_str()).as_deref() {
                Some("linear") => MlMethod::Linear,
                Some("tree") | Some("decision_tree") => MlMethod::DecisionTree,
                _ => MlMethod::Auto,
            },
        }),
        "predict" => Ok(SkillCall::Predict {
            model: need_str(pos.first().or(kw(kws, &["model"])), "a model name")?,
        }),
        "predict_time_series" => Ok(SkillCall::PredictTimeSeries {
            measures: kw(kws, &["measures", "measure_columns"])
                .or(pos.first())
                .and_then(|a| a.as_str_list())
                .ok_or_else(|| NlError::syntax("predict_time_series needs measures", line))?,
            horizon: kw(kws, &["horizon", "n"])
                .and_then(|a| a.as_usize())
                .ok_or_else(|| NlError::syntax("predict_time_series needs a horizon", line))?,
            time_column: need_str(kw(kws, &["time_column", "time"]), "a time column")?,
        }),
        "detect_outliers" => Ok(SkillCall::DetectOutliers {
            column: need_str(pos.first().or(kw(kws, &["column"])), "a column")?,
            method: match kw(kws, &["method"]).and_then(|a| a.as_str()).as_deref() {
                Some("iqr") => dc_ml::OutlierMethod::default_iqr(),
                _ => dc_ml::OutlierMethod::default_zscore(),
            },
        }),
        "cluster" => Ok(SkillCall::Cluster {
            k: kw(kws, &["k"])
                .or(pos.first())
                .and_then(|a| a.as_usize())
                .ok_or_else(|| NlError::syntax("cluster needs k", line))?,
            features: kw(kws, &["features"])
                .and_then(|a| a.as_str_list())
                .unwrap_or_default(),
        }),
        "describe" => match pos.first().and_then(|a| a.as_str()) {
            Some(column) => Ok(SkillCall::DescribeColumn { column }),
            None => Ok(SkillCall::DescribeDataset),
        },
        "save" | "save_artifact" => Ok(SkillCall::SaveArtifact {
            name: need_str(pos.first().or(kw(kws, &["name"])), "a name")?,
        }),
        "snapshot" => Ok(SkillCall::Snapshot {
            name: need_str(pos.first().or(kw(kws, &["name"])), "a name")?,
        }),
        other => Err(NlError::syntax(format!("unknown method {other:?}"), line)),
    }
}

// ---------- printing ----------

fn py_value(v: &Value) -> String {
    match v {
        Value::Null => "None".into(),
        Value::Bool(true) => "True".into(),
        Value::Bool(false) => "False".into(),
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::Date(_) => format!("\"{}\"", v.render()),
        other => other.render(),
    }
}

fn py_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

fn agg_ctor(a: &AggSpec) -> String {
    let fname = match a.func {
        AggFunc::Count => "Count",
        AggFunc::CountRecords => "Count",
        AggFunc::CountDistinct => "CountDistinct",
        AggFunc::Sum => "Sum",
        AggFunc::Avg => "Average",
        AggFunc::Min => "Min",
        AggFunc::Max => "Max",
        AggFunc::Median => "Median",
        AggFunc::StdDev => "StdDev",
        AggFunc::Variance => "Variance",
        AggFunc::First => "First",
        AggFunc::Last => "Last",
    };
    match &a.column {
        Some(c) => format!("{fname}(\"{c}\")"),
        None => format!("{fname}()"),
    }
}

/// Print one skill call as a Python-API method invocation (without the
/// receiver).
pub fn format_call(call: &SkillCall) -> Option<String> {
    use SkillCall::*;
    Some(match call {
        KeepRows { predicate } => format!("filter(\"{}\")", predicate.to_sql().replace('"', "'")),
        KeepColumns { columns } => format!("select({})", py_list(columns)),
        DropColumns { columns } => format!("drop_columns({})", py_list(columns)),
        RenameColumn { from, to } => format!("rename(\"{from}\", \"{to}\")"),
        CreateColumn { name, expr } => format!(
            "with_column(\"{name}\", \"{}\")",
            expr.to_sql().replace('"', "'")
        ),
        CreateConstantColumn { name, value } => {
            format!("with_constant(\"{name}\", {})", py_value(value))
        }
        Compute { aggs, for_each } => {
            let ctors: Vec<String> = aggs.iter().map(agg_ctor).collect();
            let mut s = format!("compute(aggregates = [{}]", ctors.join(", "));
            if !for_each.is_empty() {
                s.push_str(&format!(", for_each = {}", py_list(for_each)));
            }
            let defaults: Vec<String> = aggs
                .iter()
                .map(|a| AggSpec::default_output(a.func, a.column.as_deref()))
                .collect();
            let names: Vec<String> = aggs.iter().map(|a| a.output.clone()).collect();
            if names != defaults {
                s.push_str(&format!(", names = {}", py_list(&names)));
            }
            s.push(')');
            s
        }
        Pivot {
            index,
            columns,
            values,
            agg,
        } => format!(
            "pivot(index = \"{index}\", columns = \"{columns}\", values = \"{values}\", agg = \"{}\")",
            agg.name()
        ),
        Sort { keys } => {
            let by: Vec<String> = keys.iter().map(|(c, _)| c.clone()).collect();
            let asc: Vec<String> = keys
                .iter()
                .map(|(_, a)| if *a { "True" } else { "False" }.to_string())
                .collect();
            format!(
                "sort(by = {}, ascending = [{}])",
                py_list(&by),
                asc.join(", ")
            )
        }
        Top { column, n } => format!("top({n}, by = \"{column}\")"),
        Limit { n } => format!("head({n})"),
        Concat {
            other,
            remove_duplicates,
        } => format!(
            "concat(\"{other}\", remove_duplicates = {})",
            if *remove_duplicates { "True" } else { "False" }
        ),
        Join {
            other,
            left_on,
            how,
            ..
        } => format!(
            "join(\"{other}\", on = {}, how = \"{}\")",
            py_list(left_on),
            match how {
                JoinType::Inner => "inner",
                JoinType::Left => "left",
                JoinType::Right => "right",
                JoinType::Full => "full",
            }
        ),
        Distinct { columns } => {
            if columns.is_empty() {
                "distinct()".to_string()
            } else {
                format!("distinct({})", py_list(columns))
            }
        }
        DropMissing { columns } => {
            if columns.is_empty() {
                "dropna()".to_string()
            } else {
                format!("dropna({})", py_list(columns))
            }
        }
        FillMissing { column, value } => {
            format!("fillna(\"{column}\", {})", py_value(value))
        }
        Sample { fraction, seed } => format!("sample({fraction}, seed = {seed})"),
        Visualize { kpi, by } => {
            if by.is_empty() {
                format!("visualize(\"{kpi}\")")
            } else {
                format!("visualize(\"{kpi}\", by = {})", py_list(by))
            }
        }
        Plot {
            chart,
            x,
            y,
            color,
            size,
            for_each,
        } => {
            let mut parts = vec![format!("chart = \"{}\"", chart.display_name())];
            for (k, v) in [
                ("x", x),
                ("y", y),
                ("color", color),
                ("size", size),
                ("for_each", for_each),
            ] {
                if let Some(v) = v {
                    parts.push(format!("{k} = \"{v}\""));
                }
            }
            format!("plot({})", parts.join(", "))
        }
        TrainModel {
            name,
            target,
            features,
            method,
        } => {
            let mut s = format!("train_model(target = \"{target}\", name = \"{name}\"");
            if !features.is_empty() {
                s.push_str(&format!(", features = {}", py_list(features)));
            }
            match method {
                MlMethod::Linear => s.push_str(", method = \"linear\""),
                MlMethod::DecisionTree => s.push_str(", method = \"tree\""),
                MlMethod::Auto => {}
            }
            s.push(')');
            s
        }
        Predict { model } => format!("predict(\"{model}\")"),
        PredictTimeSeries {
            measures,
            horizon,
            time_column,
        } => format!(
            "predict_time_series(measures = {}, horizon = {horizon}, time_column = \"{time_column}\")",
            py_list(measures)
        ),
        DetectOutliers { column, method } => format!(
            "detect_outliers(\"{column}\", method = \"{}\")",
            match method {
                dc_ml::OutlierMethod::ZScore { .. } => "zscore",
                dc_ml::OutlierMethod::Iqr { .. } => "iqr",
            }
        ),
        Cluster { k, features } => {
            format!("cluster(k = {k}, features = {})", py_list(features))
        }
        DescribeColumn { column } => format!("describe(\"{column}\")"),
        DescribeDataset => "describe()".to_string(),
        SaveArtifact { name } => format!("save(\"{name}\")"),
        Snapshot { name } => format!("snapshot(\"{name}\")"),
        _ => return None,
    })
}

/// Print a chain of skill calls as one Python statement on `dataset`.
pub fn format_program(dataset: &str, calls: &[SkillCall]) -> Result<String> {
    let mut s = dataset.to_string();
    for call in calls {
        let piece = format_call(call).ok_or_else(|| {
            NlError::translation(format!("{} has no Python API form", call.name()))
        })?;
        s.push('.');
        s.push_str(&piece);
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3b_compute_call() {
        // The paper's Python form of the Figure 3 skill.
        let src = r#"california_car_collisions.compute(
            aggregates = [Count("case_id")],
            for_each = ["party_sobriety"],
            names = ["NumberOfCases"]
        )"#;
        let prog = parse_pyapi(src).unwrap();
        assert_eq!(prog.statements.len(), 1);
        let st = &prog.statements[0];
        assert_eq!(st.root, "california_car_collisions");
        match &st.calls[0] {
            SkillCall::Compute { aggs, for_each } => {
                assert_eq!(aggs[0].func, AggFunc::Count);
                assert_eq!(aggs[0].column.as_deref(), Some("case_id"));
                assert_eq!(aggs[0].output, "NumberOfCases");
                assert_eq!(for_each, &vec!["party_sobriety".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn section41_average_median() {
        let src = r#"data.compute(
            aggregates = [Average('Age'), Median('Salary')],
            for_each = ['JobLevel']
        )"#;
        let prog = parse_pyapi(src).unwrap();
        match &prog.statements[0].calls[0] {
            SkillCall::Compute { aggs, .. } => {
                assert_eq!(aggs[0].func, AggFunc::Avg);
                assert_eq!(aggs[1].func, AggFunc::Median);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_chains_and_assignment() {
        let src = "result = sales.filter(\"region = 'west'\").select([\"price\", \"quantity\"]).head(10)\n";
        let prog = parse_pyapi(src).unwrap();
        let st = &prog.statements[0];
        assert_eq!(st.target.as_deref(), Some("result"));
        assert_eq!(st.calls.len(), 3);
        assert!(matches!(st.calls[0], SkillCall::KeepRows { .. }));
        assert!(matches!(st.calls[2], SkillCall::Limit { n: 10 }));
    }

    #[test]
    fn print_statements_marked_dead() {
        let prog = parse_pyapi("print(result)\nsales.head(5)\n").unwrap();
        assert!(prog.statements[0].is_print);
        assert!(!prog.statements[1].is_print);
    }

    #[test]
    fn count_star_maps_to_count_records() {
        let prog = parse_pyapi("t.compute(aggregates = [Count()])").unwrap();
        match &prog.statements[0].calls[0] {
            SkillCall::Compute { aggs, .. } => {
                assert_eq!(aggs[0].func, AggFunc::CountRecords);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let err = parse_pyapi("sales.\n.bad").unwrap_err();
        assert!(matches!(err, NlError::PySyntax { .. }));
        assert!(parse_pyapi("t.nosuchmethod(1)").is_err());
        assert!(parse_pyapi("t.filter(").is_err());
        assert!(parse_pyapi("t.filter('unterminated").is_err());
    }

    #[test]
    fn roundtrip_calls() {
        let calls = vec![
            SkillCall::KeepRows {
                predicate: dc_engine::Expr::col("x").gt(dc_engine::Expr::lit(5i64)),
            },
            SkillCall::KeepColumns {
                columns: vec!["a".into(), "b".into()],
            },
            SkillCall::Compute {
                aggs: vec![AggSpec::new(AggFunc::Count, "case_id", "NumberOfCases")],
                for_each: vec!["party_sobriety".into()],
            },
            SkillCall::Sort {
                keys: vec![("a".into(), false)],
            },
            SkillCall::Limit { n: 3 },
            SkillCall::Sample {
                fraction: 0.25,
                seed: 42,
            },
            SkillCall::PredictTimeSeries {
                measures: vec!["GDPC1".into()],
                horizon: 12,
                time_column: "DATE".into(),
            },
        ];
        let text = format_program("data", &calls).unwrap();
        let parsed = parse_pyapi(&text).unwrap();
        assert_eq!(parsed.statements[0].calls, calls, "text was: {text}");
    }

    #[test]
    fn join_and_plot_parse() {
        let src = "orders.join(\"customers\", on = [\"customer_id\"], how = \"left\").plot(chart = \"bar\", x = \"region\", y = \"total\")";
        let prog = parse_pyapi(src).unwrap();
        assert!(matches!(
            prog.statements[0].calls[0],
            SkillCall::Join {
                how: JoinType::Left,
                ..
            }
        ));
        match &prog.statements[0].calls[1] {
            SkillCall::Plot { chart, x, .. } => {
                assert_eq!(*chart, ChartType::Bar);
                assert_eq!(x.as_deref(), Some("region"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiline_with_comments() {
        let src = "# load and trim\nsales.filter(\"price > 10\") # keep expensive\n";
        let prog = parse_pyapi(src).unwrap();
        assert_eq!(prog.statements.len(), 1);
    }
}
