//! Per-skill explanations (§2.3).
//!
//! "Every skill in DataChat has the ability to explain its behavior to
//! users. For technical users, this is done by providing Python or SQL
//! code that represents the skill. ... the platform also provides a
//! declarative controlled English description of what the skill did,"
//! based on both the skill and the user's inputs.

use dc_engine::AggSpec;
use dc_gel::format_skill;
use dc_skills::SkillCall;

use crate::pyapi::format_call;

/// A skill's explanation in every dialect the platform offers.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The canonical GEL sentence (what recipes display).
    pub gel: String,
    /// Python API form, when the skill has one.
    pub python: Option<String>,
    /// SQL fragment, when the skill lowers to SQL.
    pub sql: Option<String>,
    /// A fuller English description of what the skill does with these
    /// inputs — prose, not a command.
    pub english: String,
}

/// Explain one skill call.
pub fn explain_skill(call: &SkillCall) -> Explanation {
    Explanation {
        gel: format_skill(call),
        python: format_call(call).map(|c| format!("dataset.{c}")),
        sql: sql_fragment(call),
        english: english_of(call),
    }
}

fn agg_english(a: &AggSpec) -> String {
    match &a.column {
        Some(c) => format!("the {} of column {c} (as {})", a.func.gel_name(), a.output),
        None => format!("the {} (as {})", a.func.gel_name(), a.output),
    }
}

fn sql_fragment(call: &SkillCall) -> Option<String> {
    use SkillCall::*;
    Some(match call {
        KeepRows { predicate } => format!("WHERE {}", predicate.to_sql()),
        DropRows { predicate } => format!("WHERE NOT {}", predicate.to_sql()),
        KeepColumns { columns } => format!("SELECT {}", columns.join(", ")),
        CreateColumn { name, expr } => format!("SELECT *, {} AS {name}", expr.to_sql()),
        Compute { aggs, for_each } => {
            let items: Vec<String> = aggs
                .iter()
                .map(|a| match &a.column {
                    Some(c) => format!("{}({c}) AS {}", a.func.name().to_uppercase(), a.output),
                    None => format!("COUNT(*) AS {}", a.output),
                })
                .collect();
            if for_each.is_empty() {
                format!("SELECT {}", items.join(", "))
            } else {
                format!(
                    "SELECT {}, {} GROUP BY {}",
                    for_each.join(", "),
                    items.join(", "),
                    for_each.join(", ")
                )
            }
        }
        Sort { keys } => format!(
            "ORDER BY {}",
            keys.iter()
                .map(|(c, asc)| if *asc { c.clone() } else { format!("{c} DESC") })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Limit { n } => format!("LIMIT {n}"),
        Distinct { columns } if columns.is_empty() => "SELECT DISTINCT *".to_string(),
        Join {
            other,
            left_on,
            right_on,
            how,
        } => format!(
            "{} {other} ON {}",
            how.sql(),
            left_on
                .iter()
                .zip(right_on)
                .map(|(l, r)| format!("{l} = {r}"))
                .collect::<Vec<_>>()
                .join(" AND ")
        ),
        _ => return None,
    })
}

fn english_of(call: &SkillCall) -> String {
    use SkillCall::*;
    match call {
        LoadFile { path } => format!("Reads the file {path}, infers a column type for every field, and makes the result the current dataset."),
        LoadUrl { url } => format!("Downloads {url}, parses it as CSV, and makes the result the current dataset."),
        LoadTable { database, table } => format!("Scans the table {table} in the database {database}; the scan is metered under that database's pricing."),
        LoadTableFiltered { database, table, predicate } => format!("Scans the table {table} in the database {database} with the filter {} pushed into the scan, skipping blocks whose zone maps prove no row can match; only blocks actually read are metered.", predicate.to_sql()),
        LoadTableProjected { database, table, columns, predicate } => {
            let pred = match predicate {
                Some(p) => format!(" and the filter {} pushed into the scan", p.to_sql()),
                None => String::new(),
            };
            format!("Scans only the columns {} of the table {table} in the database {database}{pred}; untouched columns cost no scan bytes.", columns.join(", "))
        }
        UseDataset { name, .. } => format!("Switches the current dataset back to the earlier result named {name} without recomputing it."),
        UseSnapshot { name } => format!("Reads the locally cached snapshot {name}; no cloud scan is charged."),
        DescribeColumn { column } => format!("Summarizes column {column}: row and null counts, distinct values, and numeric moments where applicable. The data itself is unchanged."),
        DescribeDataset => "Summarizes every column of the current dataset. The data itself is unchanged.".into(),
        ListDatasets => "Lists every dataset in the connected databases with row and column counts.".into(),
        ShowHead { n } => format!("Displays the first {n} rows; the current dataset is unchanged."),
        CountRows => "Reports how many rows the current dataset has.".into(),
        ProfileMissing => "Reports the missing-value count and rate for every column.".into(),
        Visualize { kpi, by } => {
            if by.is_empty() {
                format!("Chooses chart types automatically to show the distribution of {kpi}.")
            } else {
                format!(
                    "Explores {kpi} against {} with automatically chosen charts (distributions, breakdowns, and a record-count bubble chart).",
                    by.join(", ")
                )
            }
        }
        Plot { chart, .. } => format!("Draws a {} chart from the current dataset with the given axis roles.", chart.display_name()),
        KeepRows { predicate } => format!("Keeps only the rows where {} holds; rows where the condition is false or unknown are removed.", predicate.to_sql()),
        DropRows { predicate } => format!("Removes the rows where {} holds.", predicate.to_sql()),
        KeepColumns { columns } => format!("Keeps only the columns {} (in that order); every other column is dropped.", columns.join(", ")),
        DropColumns { columns } => format!("Removes the columns {} from the dataset; all other columns stay.", columns.join(", ")),
        RenameColumn { from, to } => format!("Renames column {from} to {to}; values are unchanged."),
        CreateColumn { name, expr } => format!("Adds a column {name} computed per row as {}.", expr.to_sql()),
        CreateConstantColumn { name, value } => format!("Adds a column {name} holding the constant {} in every row.", value.render()),
        Compute { aggs, for_each } => {
            let parts: Vec<String> = aggs.iter().map(agg_english).collect();
            if for_each.is_empty() {
                format!("Collapses the dataset to one row holding {}.", parts.join(" and "))
            } else {
                format!(
                    "Groups the rows by {} and computes {} within each group; the result has one row per group.",
                    for_each.join(", "),
                    parts.join(" and ")
                )
            }
        }
        Pivot { index, columns, values, agg } => format!(
            "Builds a cross-tab: one row per {index}, one column per distinct value of {columns}, cells holding the {} of {values}.",
            agg.gel_name()
        ),
        Sort { keys } => format!(
            "Reorders the rows by {}; ties keep their previous relative order.",
            keys.iter()
                .map(|(c, asc)| format!("{c} ({})", if *asc { "ascending" } else { "descending" }))
                .collect::<Vec<_>>()
                .join(", then ")
        ),
        Top { column, n } => format!("Keeps the {n} rows with the largest {column} values."),
        Limit { n } => format!("Keeps only the first {n} rows of the current dataset, in their current order."),
        Concat { other, remove_duplicates } => {
            let tail = if *remove_duplicates { ", then removes exact duplicate rows" } else { "" };
            format!("Appends the rows of dataset {other} below the current dataset{tail}. Column names and types must line up.")
        }
        Join { other, left_on, how, .. } => format!(
            "Combines the current dataset with {other} on {} using a {}; unmatched rows follow the join type's rules.",
            left_on.join(", "),
            how.sql().to_lowercase()
        ),
        Distinct { columns } => {
            if columns.is_empty() {
                "Removes rows that duplicate an earlier row in every column.".into()
            } else {
                format!("Keeps the first row for each distinct combination of {}.", columns.join(", "))
            }
        }
        DropMissing { columns } => {
            if columns.is_empty() {
                "Removes rows with a missing value in any column.".into()
            } else {
                format!("Removes rows missing a value in {}.", columns.join(", "))
            }
        }
        FillMissing { column, value } => format!("Replaces missing values in {column} with {}.", value.render()),
        ReplaceValues { column, from, to } => format!("Replaces {} with {} wherever it appears in column {column}.", from.render(), to.render()),
        CastColumn { column, to } => format!("Converts column {column} to type {to}; values that cannot convert become missing."),
        BinColumn { column, width, .. } => format!("Buckets {column} into ranges of width {width}; each value is replaced by its bucket's lower edge in a new column."),
        ExtractDatePart { column, part, .. } => format!("Adds a column holding the {} of each date in {column}.", part.name()),
        TrimColumn { column } => format!("Strips leading and trailing whitespace from every value in {column}."),
        Sample { fraction, seed } => format!("Keeps each row independently with probability {:.0}%, using seed {seed} so the sample is reproducible.", fraction * 100.0),
        ShuffleRows { seed } => format!("Randomly reorders the rows (seed {seed}, reproducible)."),
        TrainModel { name, target, features, method } => {
            let feats = if features.is_empty() { "every numeric column".to_string() } else { features.join(", ") };
            let kind = match method {
                dc_ml::MlMethod::Auto => "a model chosen by the target's type",
                dc_ml::MlMethod::Linear => "a linear regression",
                dc_ml::MlMethod::DecisionTree => "a decision tree",
            };
            format!("Trains {kind} named {name} to predict {target} from {feats}; rows with missing inputs are skipped.")
        }
        Predict { model } => format!("Applies the stored model {model} to every row, adding a prediction column (missing where inputs are missing)."),
        PredictTimeSeries { measures, horizon, time_column } => format!(
            "Fits a trend-plus-seasonality model to {} ordered by {time_column} and forecasts the next {horizon} points, labeled RecordType = Predicted.",
            measures.join(", ")
        ),
        DetectOutliers { column, method } => {
            let m = match method {
                dc_ml::OutlierMethod::ZScore { threshold } => format!("values more than {threshold} standard deviations from the mean"),
                dc_ml::OutlierMethod::Iqr { k } => format!("values outside {k} interquartile ranges of the quartiles"),
            };
            format!("Flags outliers in {column} — {m} — in a new boolean column.")
        }
        Cluster { k, features } => format!("Assigns each row to one of {k} clusters by similarity over {}.", features.join(", ")),
        EvaluateModel { model, target } => format!("Scores the model {model} against the actual values of {target} (error metrics for regression, accuracy for classification)."),
        RunSql { query } => format!("Executes the SQL query {query} against the connected databases and makes its result the current dataset."),
        ExportCsv => "Serializes the current dataset as CSV text.".into(),
        SaveArtifact { name } => format!("Saves the current result as the artifact {name}, together with the sliced recipe that produced it."),
        Snapshot { name } => format!("Caches the current dataset as snapshot {name} in the fixed-cost local store; later reads cost nothing."),
        Define { phrase, expansion } => format!("Teaches the semantic layer that {phrase:?} means {expansion}, for use in later questions."),
        Comment { text } => format!("A note in the recipe ({text:?}); it has no effect on the data."),
        ShareArtifact { artifact, with_user } => format!("Grants {with_user} access to the artifact {artifact}, including its recipe."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{AggFunc, Expr};

    #[test]
    fn every_registry_skill_explains() {
        // One representative call per skill; every one must produce GEL +
        // English, and the English must be prose (ends with a period).
        let calls = representative_calls();
        assert!(calls.len() >= 45, "cover (nearly) the whole registry");
        for call in &calls {
            let e = explain_skill(call);
            assert!(!e.gel.is_empty());
            assert!(e.english.ends_with('.'), "{}: {}", call.name(), e.english);
            assert!(
                e.english.len() > 30,
                "{} explanation too thin: {}",
                call.name(),
                e.english
            );
        }
    }

    #[test]
    fn sql_fragments_where_applicable() {
        let e = explain_skill(&SkillCall::KeepRows {
            predicate: Expr::col("age").ge(Expr::lit(18i64)),
        });
        assert_eq!(e.sql.as_deref(), Some("WHERE (age >= 18)"));
        let e = explain_skill(&SkillCall::Compute {
            aggs: vec![dc_engine::AggSpec::new(AggFunc::Count, "case_id", "n")],
            for_each: vec!["k".into()],
        });
        assert_eq!(
            e.sql.as_deref(),
            Some("SELECT k, COUNT(case_id) AS n GROUP BY k")
        );
        // ML skills have Python but no SQL (the paper's "both SQL and
        // Python ... in most (but not all) cases").
        let e = explain_skill(&SkillCall::TrainModel {
            name: "m".into(),
            target: "y".into(),
            features: vec![],
            method: dc_ml::MlMethod::Auto,
        });
        assert!(e.sql.is_none());
        assert!(e.python.is_some());
    }

    #[test]
    fn english_uses_the_inputs() {
        let e = explain_skill(&SkillCall::Sample {
            fraction: 0.1,
            seed: 7,
        });
        assert!(e.english.contains("10%"));
        assert!(e.english.contains("seed 7"));
        assert!(e.english.contains("reproducible"));
    }

    fn representative_calls() -> Vec<SkillCall> {
        use SkillCall::*;
        vec![
            LoadFile {
                path: "a.csv".into(),
            },
            LoadUrl {
                url: "https://x/y.csv".into(),
            },
            LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            UseDataset {
                name: "d".into(),
                version: None,
            },
            UseSnapshot { name: "s".into() },
            DescribeColumn { column: "c".into() },
            DescribeDataset,
            ListDatasets,
            ShowHead { n: 5 },
            CountRows,
            ProfileMissing,
            Visualize {
                kpi: "k".into(),
                by: vec!["g".into()],
            },
            Plot {
                chart: dc_viz::ChartType::Line,
                x: Some("a".into()),
                y: Some("b".into()),
                color: None,
                size: None,
                for_each: None,
            },
            KeepRows {
                predicate: Expr::col("x").gt(Expr::lit(1i64)),
            },
            DropRows {
                predicate: Expr::col("x").gt(Expr::lit(1i64)),
            },
            KeepColumns {
                columns: vec!["a".into()],
            },
            DropColumns {
                columns: vec!["a".into()],
            },
            RenameColumn {
                from: "a".into(),
                to: "b".into(),
            },
            CreateColumn {
                name: "n".into(),
                expr: Expr::col("a").add(Expr::lit(1i64)),
            },
            CreateConstantColumn {
                name: "n".into(),
                value: dc_engine::Value::Int(1),
            },
            Compute {
                aggs: vec![dc_engine::AggSpec::new(AggFunc::Avg, "v", "a")],
                for_each: vec!["k".into()],
            },
            Pivot {
                index: "i".into(),
                columns: "c".into(),
                values: "v".into(),
                agg: AggFunc::Sum,
            },
            Sort {
                keys: vec![("a".into(), false)],
            },
            Top {
                column: "v".into(),
                n: 3,
            },
            Limit { n: 10 },
            Concat {
                other: "o".into(),
                remove_duplicates: true,
            },
            Join {
                other: "o".into(),
                left_on: vec!["k".into()],
                right_on: vec!["k".into()],
                how: dc_engine::JoinType::Left,
            },
            Distinct { columns: vec![] },
            DropMissing {
                columns: vec!["a".into()],
            },
            FillMissing {
                column: "a".into(),
                value: dc_engine::Value::Int(0),
            },
            ReplaceValues {
                column: "a".into(),
                from: dc_engine::Value::Int(1),
                to: dc_engine::Value::Int(2),
            },
            CastColumn {
                column: "a".into(),
                to: dc_engine::DataType::Float,
            },
            BinColumn {
                column: "a".into(),
                width: 10,
                name: None,
            },
            ExtractDatePart {
                column: "d".into(),
                part: dc_skills::DatePart::Year,
                name: None,
            },
            TrimColumn { column: "s".into() },
            Sample {
                fraction: 0.5,
                seed: 1,
            },
            ShuffleRows { seed: 1 },
            TrainModel {
                name: "m".into(),
                target: "y".into(),
                features: vec!["x".into()],
                method: dc_ml::MlMethod::Linear,
            },
            Predict { model: "m".into() },
            PredictTimeSeries {
                measures: vec!["v".into()],
                horizon: 12,
                time_column: "d".into(),
            },
            DetectOutliers {
                column: "v".into(),
                method: dc_ml::OutlierMethod::default_zscore(),
            },
            Cluster {
                k: 3,
                features: vec!["a".into(), "b".into()],
            },
            EvaluateModel {
                model: "m".into(),
                target: "y".into(),
            },
            RunSql {
                query: "SELECT 1".into(),
            },
            ExportCsv,
            SaveArtifact { name: "a".into() },
            Snapshot { name: "s".into() },
            Define {
                phrase: "p".into(),
                expansion: "e".into(),
            },
            Comment { text: "t".into() },
            ShareArtifact {
                artifact: "a".into(),
                with_user: "u".into(),
            },
        ]
    }
}
