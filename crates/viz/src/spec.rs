//! Chart specifications.
//!
//! A [`ChartSpec`] is the artifact DataChat's Visualize/Plot skills emit:
//! a chart type, role-mapped columns, and the already-prepared data table.
//! Rendering (browser in the product, ASCII here) is downstream of the
//! spec, so specs are what get saved, shared, and refreshed.

use dc_engine::Table;

/// Chart families supported by the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChartType {
    Line,
    Bar,
    Scatter,
    Bubble,
    Histogram,
    Donut,
    /// Box-and-whisker (the paper's "violin" renders as a distribution
    /// summary per category; this spec carries the same roles).
    Box,
    Violin,
    Heatmap,
}

impl ChartType {
    /// Display name, matching the paper's chat transcript ("donut chart",
    /// "violin chart", ...).
    pub fn display_name(self) -> &'static str {
        match self {
            ChartType::Line => "line",
            ChartType::Bar => "bar",
            ChartType::Scatter => "scatter",
            ChartType::Bubble => "bubble",
            ChartType::Histogram => "histogram",
            ChartType::Donut => "donut",
            ChartType::Box => "box",
            ChartType::Violin => "violin",
            ChartType::Heatmap => "heatmap",
        }
    }
}

/// A fully prepared chart.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSpec {
    /// Artifact name (Chart1A, Chart1B, ... in the Figure 1 transcript).
    pub name: String,
    pub chart: ChartType,
    /// Human title, e.g.
    /// "party_sex vs. party_ageInt20, sized using: CountOfRecords".
    pub title: String,
    /// Column in `data` used for the x axis (or the category for donuts).
    pub x: Option<String>,
    /// Column used for the y axis (or the measure for donuts).
    pub y: Option<String>,
    /// Column used for color grouping.
    pub color: Option<String>,
    /// Column used for mark size (bubble charts).
    pub size: Option<String>,
    /// Facet column ("for each RecordType" in Figure 2).
    pub for_each: Option<String>,
    /// The prepared (usually aggregated) data behind the chart.
    pub data: Table,
}

impl ChartSpec {
    /// One-line description as shown in the Figure 1 chat reply, e.g.
    /// "Chart1A (donut chart using the column at_fault)".
    pub fn chat_line(&self) -> String {
        let detail = match self.chart {
            ChartType::Donut => format!(
                "donut chart using the column {}",
                self.x.as_deref().unwrap_or("?")
            ),
            ChartType::Histogram => format!(
                "histogram with the x-axis {}",
                self.x.as_deref().unwrap_or("?")
            ),
            ChartType::Violin | ChartType::Box => format!(
                "{} chart with the x-axis {}",
                self.chart.display_name(),
                self.x.as_deref().unwrap_or("?")
            ),
            ChartType::Bubble => format!(
                "bubble chart of {} vs. {}, sized using: {}",
                self.x.as_deref().unwrap_or("?"),
                self.y.as_deref().unwrap_or("?"),
                self.size.as_deref().unwrap_or("?")
            ),
            _ => format!(
                "{} chart with the x-axis {} and the y-axis {}",
                self.chart.display_name(),
                self.x.as_deref().unwrap_or("?"),
                self.y.as_deref().unwrap_or("?")
            ),
        };
        format!("{} ({detail})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    fn spec(chart: ChartType) -> ChartSpec {
        ChartSpec {
            name: "Chart1A".into(),
            chart,
            title: "t".into(),
            x: Some("at_fault".into()),
            y: Some("n".into()),
            color: None,
            size: Some("CountOfRecords".into()),
            for_each: None,
            data: Table::new(vec![("at_fault", Column::from_ints(vec![0, 1]))]).unwrap(),
        }
    }

    #[test]
    fn chat_lines_match_transcript_style() {
        assert_eq!(
            spec(ChartType::Donut).chat_line(),
            "Chart1A (donut chart using the column at_fault)"
        );
        assert!(spec(ChartType::Histogram)
            .chat_line()
            .contains("histogram with the x-axis at_fault"));
        assert!(spec(ChartType::Bubble)
            .chat_line()
            .contains("sized using: CountOfRecords"));
        assert!(spec(ChartType::Line).chat_line().contains("line chart"));
        assert!(spec(ChartType::Violin).chat_line().contains("violin chart"));
    }

    #[test]
    fn display_names() {
        assert_eq!(ChartType::Donut.display_name(), "donut");
        assert_eq!(ChartType::Heatmap.display_name(), "heatmap");
    }
}
