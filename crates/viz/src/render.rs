//! ASCII rendering of chart specs (the terminal stands in for the
//! product's browser canvas; the *spec* is the artifact either way).

use crate::error::{Result, VizError};
use crate::spec::{ChartSpec, ChartType};

/// Render a chart spec to multi-line ASCII. Dispatches on chart type;
/// types without a dedicated renderer fall back to a labeled data preview.
pub fn render_ascii(spec: &ChartSpec, width: usize) -> Result<String> {
    let width = width.clamp(30, 200);
    match spec.chart {
        ChartType::Line | ChartType::Scatter => render_xy(spec, width),
        ChartType::Bar | ChartType::Histogram => render_bars(spec, width),
        ChartType::Donut => render_donut(spec, width),
        ChartType::Bubble => render_bubble(spec, width),
        _ => {
            let mut out = header(spec);
            out.push_str(&spec.data.render(10));
            Ok(out)
        }
    }
}

fn header(spec: &ChartSpec) -> String {
    format!(
        "== {} [{}] ==\n{}\n",
        spec.name,
        spec.chart.display_name(),
        spec.title
    )
}

/// Bars: one row per category, bar length proportional to the measure.
fn render_bars(spec: &ChartSpec, width: usize) -> Result<String> {
    let x = spec.x.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "bar chart needs an x column".into(),
    })?;
    let y = spec.y.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "bar chart needs a y column".into(),
    })?;
    let xcol = spec.data.column(x)?;
    let ycol = spec.data.column(y)?;
    let n = spec.data.num_rows().min(20);
    let max = (0..spec.data.num_rows())
        .filter_map(|i| ycol.numeric_at(i))
        .fold(0.0f64, f64::max);
    let mut out = header(spec);
    let label_w = (0..n)
        .map(|i| xcol.get(i).render().len())
        .max()
        .unwrap_or(1);
    let bar_space = width.saturating_sub(label_w + 12).max(10);
    for i in 0..n {
        let label = xcol.get(i).render();
        let v = ycol.numeric_at(i).unwrap_or(0.0);
        let len = if max > 0.0 {
            ((v / max) * bar_space as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!("{label:>label_w$} | {} {v}\n", "#".repeat(len),));
    }
    Ok(out)
}

/// Donut: per-category percentage strip.
fn render_donut(spec: &ChartSpec, _width: usize) -> Result<String> {
    let x = spec.x.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "donut chart needs a category column".into(),
    })?;
    let y = spec.y.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "donut chart needs a measure column".into(),
    })?;
    let xcol = spec.data.column(x)?;
    let ycol = spec.data.column(y)?;
    let total: f64 = (0..spec.data.num_rows())
        .filter_map(|i| ycol.numeric_at(i))
        .sum();
    let mut out = header(spec);
    for i in 0..spec.data.num_rows().min(12) {
        let v = ycol.numeric_at(i).unwrap_or(0.0);
        let pct = if total > 0.0 { v / total * 100.0 } else { 0.0 };
        out.push_str(&format!(
            "  {:<24} {:>6.1}%  ({v})\n",
            xcol.get(i).render(),
            pct
        ));
    }
    Ok(out)
}

/// Bubble: a category/bin grid where each cell's glyph scales with the
/// size measure, one glyph family per color-group (the Figure 1
/// "party_sex vs. party_ageInt20, sized using: CountOfRecords" panel).
fn render_bubble(spec: &ChartSpec, _width: usize) -> Result<String> {
    let x = spec.x.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "bubble chart needs an x column".into(),
    })?;
    let y = spec.y.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "bubble chart needs a y column".into(),
    })?;
    let size = spec
        .size
        .as_deref()
        .ok_or_else(|| VizError::NothingToPlot {
            message: "bubble chart needs a size column".into(),
        })?;
    let xcol = spec.data.column(x)?;
    let ycol = spec.data.column(y)?;
    let scol = spec.data.column(size)?;
    let ccol = match spec.color.as_deref() {
        Some(c) => Some(spec.data.column(c)?),
        None => None,
    };

    // Axis categories in first-encounter order; size per (x, y, color).
    let mut xs: Vec<String> = Vec::new();
    let mut ys: Vec<String> = Vec::new();
    let mut colors: Vec<String> = Vec::new();
    let mut cells: std::collections::HashMap<(usize, usize, usize), f64> =
        std::collections::HashMap::new();
    let mut max_size = 0.0f64;
    for r in 0..spec.data.num_rows() {
        let xv = xcol.get(r).render();
        let yv = ycol.get(r).render();
        let cv = ccol.map(|c| c.get(r).render()).unwrap_or_default();
        let sv = scol.numeric_at(r).unwrap_or(0.0);
        let xi = index_of(&mut xs, xv);
        let yi = index_of(&mut ys, yv);
        let ci = index_of(&mut colors, cv);
        let slot = cells.entry((xi, yi, ci)).or_insert(0.0);
        *slot += sv;
        max_size = max_size.max(*slot);
    }
    if max_size <= 0.0 {
        return Err(VizError::NothingToPlot {
            message: "no positive sizes".into(),
        });
    }
    // One glyph family per color; glyph index scales with sqrt(size)
    // (area-proportional, like real bubble charts).
    const FAMILIES: [[char; 4]; 4] = [
        ['.', 'o', 'O', '@'],
        [',', '+', '*', '#'],
        ['\'', 'x', 'X', '%'],
        ['`', 's', 'S', '$'],
    ];
    let glyph = |ci: usize, v: f64| {
        let family = FAMILIES[ci % FAMILIES.len()];
        let t = (v / max_size).sqrt();
        family[((t * 3.0).round() as usize).min(3)]
    };
    let label_w = ys.iter().map(|s| s.len()).max().unwrap_or(1).min(18);
    let col_w = 2 * colors.len().max(1) + 1;
    let mut out = header(spec);
    for (yi, yname) in ys.iter().enumerate() {
        let mut line = format!("{:<label_w$} |", truncate(yname, label_w));
        for xi in 0..xs.len() {
            line.push(' ');
            for ci in 0..colors.len().max(1) {
                match cells.get(&(xi, yi, ci)) {
                    Some(&v) if v > 0.0 => {
                        line.push(glyph(ci, v));
                        line.push(' ');
                    }
                    _ => line.push_str("  "),
                }
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<label_w$} +{}\n",
        "",
        "-".repeat(xs.len() * col_w)
    ));
    // X labels, vertical-ish: print first chars.
    let mut label_line = format!("{:<label_w$}  ", "");
    for xname in &xs {
        label_line.push_str(&format!("{:<col_w$}", truncate(xname, col_w - 1)));
    }
    out.push_str(label_line.trim_end());
    out.push('\n');
    if !colors.is_empty() && colors.iter().any(|c| !c.is_empty()) {
        out.push_str("legend (glyph family = color group, size = magnitude):\n");
        for (ci, c) in colors.iter().enumerate() {
            let fam = FAMILIES[ci % FAMILIES.len()];
            out.push_str(&format!(
                "  {} {} {} {}  {c}\n",
                fam[0], fam[1], fam[2], fam[3]
            ));
        }
    }
    Ok(out)
}

fn index_of(list: &mut Vec<String>, item: String) -> usize {
    match list.iter().position(|e| *e == item) {
        Some(i) => i,
        None => {
            list.push(item);
            list.len() - 1
        }
    }
}

fn truncate(s: &str, w: usize) -> String {
    if s.len() <= w {
        s.to_string()
    } else {
        s.chars().take(w.saturating_sub(1)).collect::<String>() + "~"
    }
}

/// Line/scatter: a dot-matrix plot of y over x, with one mark per series
/// when a color/facet column is present (the Figure 2 actual-vs-predicted
/// chart uses `for_each RecordType`).
fn render_xy(spec: &ChartSpec, width: usize) -> Result<String> {
    let x = spec.x.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "xy chart needs an x column".into(),
    })?;
    let y = spec.y.as_deref().ok_or_else(|| VizError::NothingToPlot {
        message: "xy chart needs a y column".into(),
    })?;
    let series_col = spec.for_each.as_deref().or(spec.color.as_deref());
    let height = 16usize;
    let xcol = spec.data.column(x)?;
    let ycol = spec.data.column(y)?;
    let scol = match series_col {
        Some(s) => Some(spec.data.column(s)?),
        None => None,
    };

    let mut pts: Vec<(f64, f64, usize)> = Vec::new();
    let mut series_names: Vec<String> = Vec::new();
    for i in 0..spec.data.num_rows() {
        let (Some(xv), Some(yv)) = (xcol.numeric_at(i), ycol.numeric_at(i)) else {
            continue;
        };
        let sid = match &scol {
            Some(c) => {
                let name = c.get(i).render();
                match series_names.iter().position(|s| *s == name) {
                    Some(p) => p,
                    None => {
                        series_names.push(name);
                        series_names.len() - 1
                    }
                }
            }
            None => 0,
        };
        pts.push((xv, yv, sid));
    }
    if pts.is_empty() {
        return Err(VizError::NothingToPlot {
            message: "no numeric points".into(),
        });
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(xv, yv, _) in &pts {
        x0 = x0.min(xv);
        x1 = x1.max(xv);
        y0 = y0.min(yv);
        y1 = y1.max(yv);
    }
    if x1 == x0 {
        x1 = x0 + 1.0;
    }
    if y1 == y0 {
        y1 = y0 + 1.0;
    }
    let marks = ['*', '+', 'o', 'x', '@', '%'];
    let mut grid = vec![vec![' '; width]; height];
    for &(xv, yv, sid) in &pts {
        let cx = (((xv - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
        let cy = (((yv - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = marks[sid % marks.len()];
    }
    let mut out = header(spec);
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    if series_names.len() > 1 || (series_names.len() == 1 && series_col.is_some()) {
        for (i, name) in series_names.iter().enumerate() {
            out.push_str(&format!("  {} {name}\n", marks[i % marks.len()]));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{Column, Table};

    fn donut_spec() -> ChartSpec {
        ChartSpec {
            name: "Chart1A".into(),
            chart: ChartType::Donut,
            title: "Distribution of at_fault".into(),
            x: Some("at_fault".into()),
            y: Some("n".into()),
            color: None,
            size: None,
            for_each: None,
            data: Table::new(vec![
                (
                    "at_fault",
                    Column::from_strs(vec!["at fault", "not at fault"]),
                ),
                ("n", Column::from_ints(vec![25, 75])),
            ])
            .unwrap(),
        }
    }

    #[test]
    fn donut_shows_percentages() {
        let s = render_ascii(&donut_spec(), 80).unwrap();
        assert!(s.contains("25.0%"));
        assert!(s.contains("75.0%"));
        assert!(s.contains("Chart1A"));
    }

    #[test]
    fn bars_scale_to_max() {
        let spec = ChartSpec {
            chart: ChartType::Bar,
            ..donut_spec()
        };
        let s = render_ascii(&spec, 60).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        let short = lines.iter().find(|l| l.contains("at fault |")).unwrap();
        let long = lines.iter().find(|l| l.contains("not at fault |")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(count(long) > count(short) * 2);
    }

    #[test]
    fn line_chart_with_series_legend() {
        let spec = ChartSpec {
            name: "gdp".into(),
            chart: ChartType::Line,
            title: "GDP".into(),
            x: Some("t".into()),
            y: Some("v".into()),
            color: None,
            size: None,
            for_each: Some("RecordType".into()),
            data: Table::new(vec![
                ("t", Column::from_ints((0..10).collect())),
                (
                    "v",
                    Column::from_floats((0..10).map(|i| i as f64).collect()),
                ),
                (
                    "RecordType",
                    Column::from_strs(
                        (0..10)
                            .map(|i| if i < 5 { "Actual" } else { "Predicted" })
                            .collect(),
                    ),
                ),
            ])
            .unwrap(),
        };
        let s = render_ascii(&spec, 60).unwrap();
        assert!(s.contains("* Actual"));
        assert!(s.contains("+ Predicted"));
        assert!(s.contains('|'));
    }

    #[test]
    fn missing_roles_error() {
        let mut spec = donut_spec();
        spec.y = None;
        assert!(render_ascii(&spec, 60).is_err());
    }

    #[test]
    fn bubble_renders_grid_with_legend() {
        let spec = ChartSpec {
            name: "b".into(),
            chart: ChartType::Bubble,
            title: "party_sex vs. party_ageInt20".into(),
            x: Some("age".into()),
            y: Some("sex".into()),
            color: Some("fault".into()),
            size: Some("n".into()),
            for_each: None,
            data: Table::new(vec![
                ("age", Column::from_ints(vec![0, 0, 20, 20, 40])),
                ("sex", Column::from_strs(vec!["m", "f", "m", "f", "m"])),
                ("fault", Column::from_ints(vec![0, 1, 0, 1, 0])),
                ("n", Column::from_ints(vec![5, 50, 100, 2, 9])),
            ])
            .unwrap(),
        };
        let s = render_ascii(&spec, 60).unwrap();
        assert!(s.contains("legend"));
        assert!(s.contains('|'));
        // The largest bubble uses the largest glyph of its family.
        assert!(s.contains('@') || s.contains('#'), "{s}");
    }

    #[test]
    fn bubble_requires_roles() {
        let mut spec = donut_spec();
        spec.chart = ChartType::Bubble;
        spec.size = None;
        assert!(render_ascii(&spec, 60).is_err());
    }

    #[test]
    fn fallback_renders_preview() {
        let spec = ChartSpec {
            chart: ChartType::Violin,
            ..donut_spec()
        };
        let s = render_ascii(&spec, 60).unwrap();
        assert!(s.contains("violin"));
        assert!(s.contains("at_fault"));
    }

    #[test]
    fn width_is_clamped() {
        // Tiny and huge widths must not panic.
        let spec = ChartSpec {
            chart: ChartType::Bar,
            ..donut_spec()
        };
        render_ascii(&spec, 1).unwrap();
        render_ascii(&spec, 10_000).unwrap();
    }
}
