//! Visualization-layer errors.

use std::fmt;

/// Errors from chart preparation.
#[derive(Debug, Clone, PartialEq)]
pub enum VizError {
    /// A required column is missing.
    ColumnNotFound { name: String },
    /// The chart type cannot use this column.
    BadColumn { name: String, reason: String },
    /// No chart can be derived from the request.
    NothingToPlot { message: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
}

impl VizError {
    /// Convenience constructor for [`VizError::BadColumn`].
    pub fn bad_column(name: impl Into<String>, reason: impl Into<String>) -> Self {
        VizError::BadColumn {
            name: name.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for VizError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VizError::ColumnNotFound { name } => write!(f, "column not found: {name:?}"),
            VizError::BadColumn { name, reason } => write!(f, "bad column {name:?}: {reason}"),
            VizError::NothingToPlot { message } => write!(f, "nothing to plot: {message}"),
            VizError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for VizError {}

impl From<dc_engine::EngineError> for VizError {
    fn from(e: dc_engine::EngineError) -> Self {
        VizError::Engine(e)
    }
}

/// Result alias for the viz crate.
pub type Result<T> = std::result::Result<T, VizError>;
