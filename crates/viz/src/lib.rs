//! # dc-viz — chart specs and auto-charting
//!
//! Implements the visualization skills of Table 1: [`spec::ChartSpec`] is
//! the shareable chart artifact; [`auto::auto_visualize`] reproduces the
//! Figure 1 behavior where `Visualize <kpi> by <columns>` answers with up
//! to six complementary charts (donut, violin, histogram, bubble sized by
//! CountOfRecords, numeric axes binned into `<col>Int<width>` columns);
//! [`render`] draws specs as ASCII for the examples and benches.

pub mod auto;
pub mod error;
pub mod render;
pub mod spec;

pub use auto::{
    auto_visualize, choose_bin_width, classify, with_binned, ColumnRole, MAX_AUTO_CHARTS,
};
pub use error::{Result, VizError};
pub use render::render_ascii;
pub use spec::{ChartSpec, ChartType};
