//! Automatic chart selection for the `Visualize` skill.
//!
//! Figure 1: `Visualize at_fault by party_age, party_sex,
//! cellphone_in_use` answers with *six* charts — donuts of the KPI,
//! breakdowns by the categorical groupers, a violin and a histogram for
//! the numeric grouper, and a bubble chart of two groupers sized by
//! CountOfRecords and colored by the KPI (with the numeric axis binned,
//! e.g. `party_ageInt20`). This module reproduces that rule set.

use dc_engine::ops::{group_by, AggSpec};
use dc_engine::{Column, DataType, Expr, ScalarFunc, Table};

use crate::error::{Result, VizError};
use crate::spec::{ChartSpec, ChartType};

/// Maximum number of charts a single Visualize answers with (the paper's
/// transcript shows 6).
pub const MAX_AUTO_CHARTS: usize = 6;

/// Maximum distinct values for a column to count as categorical.
pub const CATEGORICAL_LIMIT: usize = 12;

/// How a column participates in auto-charting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    Categorical,
    Numeric,
    Temporal,
}

/// Classify a column: strings/bools and low-cardinality ints are
/// categorical; dates are temporal; everything else numeric.
pub fn classify(table: &Table, column: &str) -> Result<ColumnRole> {
    let col = table.column(column).map_err(|_| VizError::ColumnNotFound {
        name: column.to_string(),
    })?;
    Ok(match col.dtype() {
        DataType::Str | DataType::Bool => ColumnRole::Categorical,
        DataType::Date => ColumnRole::Temporal,
        DataType::Int => {
            if distinct_count(col) <= CATEGORICAL_LIMIT {
                ColumnRole::Categorical
            } else {
                ColumnRole::Numeric
            }
        }
        DataType::Float => ColumnRole::Numeric,
    })
}

fn distinct_count(col: &Column) -> usize {
    let mut seen: Vec<String> = Vec::new();
    for i in 0..col.len() {
        let v = col.get(i);
        if v.is_null() {
            continue;
        }
        let r = v.render();
        if !seen.contains(&r) {
            seen.push(r);
            if seen.len() > CATEGORICAL_LIMIT {
                break;
            }
        }
    }
    seen.len()
}

/// Choose a bin width giving roughly 5-10 buckets over the column's range
/// (preferring round widths like 1, 2, 5, 10, 20, 50, ...).
pub fn choose_bin_width(col: &Column) -> i64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..col.len() {
        if let Some(v) = col.numeric_at(i) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        return 1;
    }
    let span = hi - lo;
    let raw = span / 7.0;
    let mut width = 1i64;
    for candidate in [1i64, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000] {
        width = candidate;
        if candidate as f64 >= raw {
            break;
        }
    }
    width
}

/// Add a binned companion column named `<col>Int<width>` (the
/// `party_ageInt20` of Figure 1) and return (table, binned name).
pub fn with_binned(table: &Table, column: &str, width: i64) -> Result<(Table, String)> {
    let name = format!("{column}Int{width}");
    let binned = dc_engine::eval::eval(
        table,
        &Expr::func(ScalarFunc::Bin, vec![Expr::col(column), Expr::lit(width)]),
    )?;
    Ok((table.with_column(&name, binned)?, name))
}

/// The `Visualize <kpi> by <groupers>` skill: produce up to
/// [`MAX_AUTO_CHARTS`] charts exploring the KPI against the groupers.
pub fn auto_visualize(table: &Table, kpi: &str, by: &[String]) -> Result<Vec<ChartSpec>> {
    // Validate all columns up front.
    let kpi_role = classify(table, kpi)?;
    let mut roles = Vec::with_capacity(by.len());
    for g in by {
        roles.push((g.as_str(), classify(table, g)?));
    }

    let mut charts: Vec<ChartSpec> = Vec::new();
    let mut name_idx = 0usize;
    let next_name = |idx: &mut usize| {
        let letter = (b'A' + (*idx % 26) as u8) as char;
        *idx += 1;
        format!("Chart1{letter}")
    };

    // 1. Distribution of the KPI itself.
    if kpi_role == ColumnRole::Categorical {
        let counts = group_by(table, &[kpi], &[AggSpec::count_records("CountOfRecords")])?;
        charts.push(ChartSpec {
            name: next_name(&mut name_idx),
            chart: ChartType::Donut,
            title: format!("Distribution of {kpi}"),
            x: Some(kpi.to_string()),
            y: Some("CountOfRecords".to_string()),
            color: None,
            size: None,
            for_each: None,
            data: counts,
        });
    } else {
        let (binned_table, bname) = with_binned(table, kpi, choose_bin_width(table.column(kpi)?))?;
        let counts = group_by(
            &binned_table,
            &[&bname],
            &[AggSpec::count_records("CountOfRecords")],
        )?;
        charts.push(ChartSpec {
            name: next_name(&mut name_idx),
            chart: ChartType::Histogram,
            title: format!("Distribution of {kpi}"),
            x: Some(bname),
            y: Some("CountOfRecords".to_string()),
            color: None,
            size: None,
            for_each: None,
            data: counts,
        });
    }

    // 2. KPI by each categorical grouper (donut per grouper).
    for (g, role) in &roles {
        if charts.len() >= MAX_AUTO_CHARTS {
            break;
        }
        if *role == ColumnRole::Categorical {
            let counts = group_by(
                table,
                &[kpi, g],
                &[AggSpec::count_records("CountOfRecords")],
            )?;
            charts.push(ChartSpec {
                name: next_name(&mut name_idx),
                chart: ChartType::Donut,
                title: format!("{kpi} by {g}"),
                x: Some(kpi.to_string()),
                y: Some("CountOfRecords".to_string()),
                color: Some(g.to_string()),
                size: None,
                for_each: None,
                data: counts,
            });
        }
    }

    // 3. Numeric groupers: violin of the numeric by KPI, then histogram.
    for (g, role) in &roles {
        if charts.len() >= MAX_AUTO_CHARTS {
            break;
        }
        if *role == ColumnRole::Numeric {
            charts.push(ChartSpec {
                name: next_name(&mut name_idx),
                chart: ChartType::Violin,
                title: format!("{g} by {kpi}"),
                x: Some(g.to_string()),
                y: None,
                color: Some(kpi.to_string()),
                size: None,
                for_each: None,
                data: table.select(&[g, kpi])?,
            });
            if charts.len() >= MAX_AUTO_CHARTS {
                break;
            }
            let (binned_table, bname) = with_binned(table, g, choose_bin_width(table.column(g)?))?;
            let counts = group_by(
                &binned_table,
                &[bname.as_str(), kpi],
                &[AggSpec::count_records("CountOfRecords")],
            )?;
            charts.push(ChartSpec {
                name: next_name(&mut name_idx),
                chart: ChartType::Histogram,
                title: format!("{kpi} over {bname}"),
                x: Some(bname),
                y: Some("CountOfRecords".to_string()),
                color: Some(kpi.to_string()),
                size: None,
                for_each: None,
                data: counts,
            });
        }
    }

    // 4. Bubble chart of the first grouper pair, sized by record count
    //    and colored by the KPI (numeric axes binned).
    // One bubble chart is enough for the answer set, so only the first
    // pair is charted.
    if let [first, second, ..] = roles[..] {
        if charts.len() < MAX_AUTO_CHARTS {
            let mut work = table.clone();
            let mut axis_names: Vec<String> = Vec::new();
            for (g, role) in [first, second] {
                if role == ColumnRole::Numeric {
                    let width = choose_bin_width(work.column(g)?);
                    let (t, name) = with_binned(&work, g, width)?;
                    work = t;
                    axis_names.push(name);
                } else {
                    axis_names.push(g.to_string());
                }
            }
            let keys: Vec<&str> = axis_names
                .iter()
                .map(|s| s.as_str())
                .chain(std::iter::once(kpi))
                .collect();
            let counts = group_by(&work, &keys, &[AggSpec::count_records("CountOfRecords")])?;
            charts.push(ChartSpec {
                name: next_name(&mut name_idx),
                chart: ChartType::Bubble,
                title: format!(
                    "{} vs. {}, sized using: CountOfRecords, colored using: {kpi}",
                    axis_names[0], axis_names[1]
                ),
                x: Some(axis_names[0].clone()),
                y: Some(axis_names[1].clone()),
                color: Some(kpi.to_string()),
                size: Some("CountOfRecords".to_string()),
                for_each: None,
                data: counts,
            });
        }
    }

    if charts.is_empty() {
        return Err(VizError::NothingToPlot {
            message: format!("no chart rules matched kpi {kpi}"),
        });
    }
    Ok(charts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn parties() -> Table {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let mut fault = Vec::new();
        let mut age: Vec<Option<i64>> = Vec::new();
        let mut sex: Vec<Option<String>> = Vec::new();
        let mut cell = Vec::new();
        for _ in 0..n {
            fault.push(rng.random_range(0i64..2));
            age.push((rng.random_range(0..10) > 0).then(|| rng.random_range(16i64..90)));
            sex.push((rng.random_range(0..10) > 0).then(|| {
                if rng.random_range(0..2) == 0 {
                    "male"
                } else {
                    "female"
                }
                .to_string()
            }));
            cell.push(rng.random_range(0i64..2));
        }
        Table::new(vec![
            ("at_fault", Column::from_ints(fault)),
            ("party_age", Column::from_opt_ints(age)),
            ("party_sex", Column::from_opt_strs(sex)),
            ("cellphone_in_use", Column::from_ints(cell)),
        ])
        .unwrap()
    }

    #[test]
    fn figure1_visualize_six_charts() {
        // "Visualize at_fault by party_age, party_sex, cellphone_in_use"
        let charts = auto_visualize(
            &parties(),
            "at_fault",
            &[
                "party_age".to_string(),
                "party_sex".to_string(),
                "cellphone_in_use".to_string(),
            ],
        )
        .unwrap();
        assert_eq!(charts.len(), 6, "the paper's transcript shows 6 charts");
        // First chart: donut of at_fault.
        assert_eq!(charts[0].chart, ChartType::Donut);
        assert_eq!(charts[0].x.as_deref(), Some("at_fault"));
        // A violin and a histogram for the numeric grouper.
        assert!(charts.iter().any(|c| c.chart == ChartType::Violin));
        assert!(charts.iter().any(|c| c.chart == ChartType::Histogram));
        // A bubble chart sized by CountOfRecords with binned ages.
        let bubble = charts
            .iter()
            .find(|c| c.chart == ChartType::Bubble)
            .expect("bubble chart present");
        assert_eq!(bubble.size.as_deref(), Some("CountOfRecords"));
        assert!(bubble.title.contains("sized using: CountOfRecords"));
        assert!(
            bubble.x.as_deref().unwrap().contains("Int")
                || bubble.y.as_deref().unwrap().contains("Int"),
            "numeric axis should be binned"
        );
        // Names follow the Chart1A.. sequence.
        assert_eq!(charts[0].name, "Chart1A");
        assert_eq!(charts[1].name, "Chart1B");
    }

    #[test]
    fn numeric_kpi_gets_histogram() {
        let charts = auto_visualize(&parties(), "party_age", &["party_sex".to_string()]).unwrap();
        assert_eq!(charts[0].chart, ChartType::Histogram);
        assert!(charts[0].x.as_deref().unwrap().starts_with("party_ageInt"));
    }

    #[test]
    fn no_groupers_still_plots_kpi() {
        let charts = auto_visualize(&parties(), "at_fault", &[]).unwrap();
        assert_eq!(charts.len(), 1);
        assert_eq!(charts[0].chart, ChartType::Donut);
    }

    #[test]
    fn unknown_columns_rejected() {
        assert!(auto_visualize(&parties(), "nope", &[]).is_err());
        assert!(auto_visualize(&parties(), "at_fault", &["nope".to_string()]).is_err());
    }

    #[test]
    fn bin_width_choices() {
        let ages = Column::from_ints((16..90).collect());
        let w = choose_bin_width(&ages);
        assert!((5..=20).contains(&w), "width {w}");
        let tiny = Column::from_ints(vec![1, 2, 3]);
        assert_eq!(choose_bin_width(&tiny), 1);
        let constant = Column::from_ints(vec![5; 10]);
        assert_eq!(choose_bin_width(&constant), 1);
    }

    #[test]
    fn with_binned_names_match_figure1() {
        let (t, name) = with_binned(&parties(), "party_age", 20).unwrap();
        assert_eq!(name, "party_ageInt20");
        assert!(t.column("party_ageInt20").is_ok());
    }

    #[test]
    fn classify_roles() {
        let t = parties();
        assert_eq!(classify(&t, "party_sex").unwrap(), ColumnRole::Categorical);
        assert_eq!(classify(&t, "party_age").unwrap(), ColumnRole::Numeric);
        assert_eq!(classify(&t, "at_fault").unwrap(), ColumnRole::Categorical); // 0/1 int
        let d = Table::new(vec![("d", Column::from_dates(vec![0, 1]))]).unwrap();
        assert_eq!(classify(&d, "d").unwrap(), ColumnRole::Temporal);
    }
}
