//! The platform facade.

use std::collections::BTreeMap;

use std::time::Duration;

use dc_analyze::{Analysis, AnalysisContext, AnalysisPolicy, Diagnostic};
use dc_collab::{
    install_env, with_env, Artifact, EnvHandle, HomeScreen, InsightsBoard, LinkIssuer, Permission,
    SessionRef, SessionRegistry, ShareLink,
};
use dc_nl::{Nl2Code, SchemaHints};
use dc_skills::{Env, SkillCall, SkillOutput};
use dc_storage::CloudDatabase;

use crate::forms::{ComputeForm, VisualizeForm};

/// Errors surfaced by the platform facade.
pub type PlatformError = Box<dyn std::error::Error>;

/// Which translation path answered a chat message (§4: the phrase layer
/// answers structured utterances deterministically; the LLM layer covers
/// the rest; plain GEL short-circuits both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChatPath {
    /// The message parsed directly as GEL.
    Gel,
    /// The deterministic phrase-based translator (§4.8).
    Phrase,
    /// The LLM-based NL2Code pipeline (§4.1–4.6).
    Llm,
}

/// A chat answer: the final output, the executed GEL steps, which path
/// produced them, and any static-analysis findings for the program.
#[derive(Debug)]
pub struct ChatReply {
    pub output: SkillOutput,
    pub steps_gel: Vec<String>,
    pub path: ChatPath,
    /// Diagnostics from the pre-execution analyzer (empty when the
    /// program was clean or continued session state the analyzer cannot
    /// see).
    pub diagnostics: Vec<Diagnostic>,
}

/// A user's handle on an open session.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    pub session: SessionRef,
    pub user: String,
}

impl SessionHandle {
    /// Run one GEL sentence.
    pub fn run_gel(&self, sentence: &str) -> Result<SkillOutput, PlatformError> {
        let call = dc_gel::parse_gel(sentence)?;
        Ok(self.session.submit(&self.user, call)?)
    }

    /// Submit a skill call directly (the UI-form path).
    pub fn submit(&self, call: SkillCall) -> Result<SkillOutput, PlatformError> {
        Ok(self.session.submit(&self.user, call)?)
    }

    /// Submit a filled Compute form (Figure 3a).
    pub fn submit_compute_form(
        &self,
        form: &ComputeForm,
        schema: &dc_engine::Schema,
    ) -> Result<SkillOutput, PlatformError> {
        let call = form.submit(schema)?;
        self.submit(call)
    }

    /// Submit a filled Visualize form.
    pub fn submit_visualize_form(
        &self,
        form: &VisualizeForm,
        schema: &dc_engine::Schema,
    ) -> Result<SkillOutput, PlatformError> {
        let call = form.submit(schema)?;
        self.submit(call)
    }
}

/// The DataChat platform: environment + sessions + artifacts + boards +
/// share links + the NL2Code stack.
pub struct Platform {
    registry: SessionRegistry,
    artifacts: BTreeMap<String, Artifact>,
    boards: BTreeMap<String, InsightsBoard>,
    pub home: HomeScreen,
    links: LinkIssuer,
    pub nl: Nl2Code,
    analysis_policy: AnalysisPolicy,
    /// Cross-session materialized sub-DAG cache, installed into the
    /// environment so every session this platform hosts shares it.
    materialized: std::sync::Arc<dc_skills::MaterializedCache>,
    /// The platform's world state, behind an `Arc`-shareable handle so a
    /// serving layer can drive this platform's sessions from a worker
    /// pool. The constructor also installs it as the current thread's
    /// environment.
    env: EnvHandle,
    /// Default wall-clock deadline for interactive sessions, threaded
    /// into every session [`Platform::open_session`] opens as a resilient
    /// `run_budget`/`node_budget`. `None` = unbounded (the pre-deadline
    /// behavior).
    session_deadline: Option<Duration>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("sessions", &self.registry.len())
            .field("artifacts", &self.artifacts.len())
            .field("boards", &self.boards.len())
            .finish()
    }
}

impl Platform {
    /// A fresh platform with an empty environment and a default-sized
    /// cross-session materialized cache.
    pub fn new() -> Platform {
        Platform::with_cache_capacity(dc_skills::MaterializedCache::DEFAULT_CAPACITY)
    }

    /// A fresh platform whose cross-session cache holds at most
    /// `capacity_bytes` of materialized results (0 disables admission
    /// entirely while keeping the handle live).
    pub fn with_cache_capacity(capacity_bytes: u64) -> Platform {
        let materialized = std::sync::Arc::new(dc_skills::MaterializedCache::new(capacity_bytes));
        let mut env = Env::new();
        env.shared_cache = Some(std::sync::Arc::clone(&materialized));
        let env = EnvHandle::new(env);
        // Make this platform's world the constructing thread's current
        // environment, so session submissions on this thread find it.
        install_env(&env);
        Platform {
            registry: SessionRegistry::new(),
            artifacts: BTreeMap::new(),
            boards: BTreeMap::new(),
            home: HomeScreen::new(),
            links: LinkIssuer::new(),
            nl: Nl2Code::with_defaults(42),
            analysis_policy: AnalysisPolicy::default(),
            materialized,
            env,
            session_deadline: Some(Platform::DEFAULT_SESSION_DEADLINE),
        }
    }

    /// Default per-session wall-clock deadline: generous for interactive
    /// work, but bounded — a runaway query cannot hold a session forever.
    pub const DEFAULT_SESSION_DEADLINE: Duration = Duration::from_secs(30);

    /// The `Arc`-shareable handle on this platform's world state. A
    /// serving layer clones this into its worker pool so thousands of
    /// sessions execute against one catalog/snapshot-store/cache world.
    pub fn env_handle(&self) -> EnvHandle {
        self.env.clone()
    }

    /// Set the wall-clock deadline sessions opened from now on run
    /// under (`None` = unbounded). Existing sessions keep the policy
    /// they were opened with.
    pub fn set_session_deadline(&mut self, deadline: Option<Duration>) {
        self.session_deadline = deadline;
    }

    /// The current per-session deadline default.
    pub fn session_deadline(&self) -> Option<Duration> {
        self.session_deadline
    }

    /// The platform's cross-session materialized cache handle.
    pub fn materialized_cache(&self) -> std::sync::Arc<dc_skills::MaterializedCache> {
        std::sync::Arc::clone(&self.materialized)
    }

    /// Counters of the cross-session materialized cache.
    pub fn materialized_cache_stats(&self) -> dc_skills::CacheStats {
        self.materialized.stats()
    }

    /// Per-tenant slices of the cross-session cache counters (tenants
    /// are attributed via [`Env::attribution`], which serving layers set
    /// per job).
    pub fn materialized_tenant_stats(&self) -> Vec<(String, dc_skills::TenantCacheStats)> {
        self.materialized.tenant_stats()
    }

    /// Snapshot the environment into an [`AnalysisContext`]: catalog
    /// schemas and block stats, saved artifacts, snapshots, models, and
    /// CSV fixtures. Pure metadata — nothing is scanned.
    pub fn analysis_context(&self) -> AnalysisContext {
        with_env(|env| AnalysisContext::from_env(env))
    }

    /// Statically analyze a GEL program against the current environment
    /// without executing anything. Parse failures, schema/type errors,
    /// dataflow lints, and cost lints all land in one [`Analysis`].
    pub fn analyze(&self, gel_text: &str) -> Analysis {
        dc_gel::analyze_gel(gel_text, &self.analysis_context())
    }

    /// How chat programs respond to analyzer findings:
    /// [`AnalysisPolicy::Warn`] (the default) attaches diagnostics to the
    /// reply; [`AnalysisPolicy::Deny`] refuses to execute a program with
    /// Error-severity findings.
    pub fn set_analysis_policy(&mut self, policy: AnalysisPolicy) {
        self.analysis_policy = policy;
    }

    /// The current analysis policy.
    pub fn analysis_policy(&self) -> AnalysisPolicy {
        self.analysis_policy
    }

    /// Access the environment (catalog, snapshot store, virtual files).
    pub fn env<R>(&self, f: impl FnOnce(&mut Env) -> R) -> R {
        self.env.with(f)
    }

    /// Register a CSV fixture.
    pub fn add_csv_file(&self, path: impl Into<String>, text: impl Into<String>) {
        with_env(|env| env.add_file(path, text));
    }

    /// Attach a database to the catalog.
    pub fn add_database(&self, db: CloudDatabase) -> Result<(), PlatformError> {
        with_env(|env| env.catalog.add_database(db))?;
        Ok(())
    }

    /// Enable deterministic fault injection across every catalog database
    /// and the snapshot store, returning the shared injector handle (for
    /// [`dc_storage::FaultInjector::stats`]). Call after the databases
    /// under test are attached — later additions are not covered.
    pub fn enable_fault_injection(
        &self,
        config: dc_storage::FaultConfig,
    ) -> std::sync::Arc<dc_storage::FaultInjector> {
        let injector = std::sync::Arc::new(dc_storage::FaultInjector::new(config));
        with_env(|env| {
            env.catalog.set_fault_injector(&injector);
            env.snapshots
                .set_fault_injector(std::sync::Arc::clone(&injector));
        });
        injector
    }

    /// Disable fault injection everywhere.
    pub fn disable_fault_injection(&self) {
        with_env(|env| {
            env.catalog.clear_fault_injector();
            env.snapshots.clear_fault_injector();
        });
    }

    /// Open a session for a user. When the platform carries a session
    /// deadline (the default), the session's submissions run through the
    /// resilient executor with that deadline as both the whole-run slice
    /// and the per-node budget — storage scans cancel cooperatively at
    /// block boundaries, pure compute is timed post-hoc, and the
    /// over-deadline submission fails with a typed timeout instead of
    /// hanging the session.
    pub fn open_session(&mut self, user: impl Into<String>) -> SessionHandle {
        let user = user.into();
        let session = self.registry.open(user.clone());
        if let Some(deadline) = self.session_deadline {
            session.set_exec_policy(Some(dc_skills::ExecPolicy {
                // Interactive sessions keep fail-fast error semantics:
                // the deadline bounds time, retries stay opt-in.
                retry: dc_skills::RetryPolicy {
                    max_attempts: 1,
                    ..Default::default()
                },
                node_budget: Some(deadline),
                run_budget: Some(deadline),
                ..Default::default()
            }));
        }
        SessionHandle { session, user }
    }

    /// Schema hints over every catalog table plus saved datasets — what
    /// the NL2Code prompt composer sees.
    pub fn schema_hints(&self) -> SchemaHints {
        with_env(|env| {
            let mut hints = SchemaHints::default();
            for db_name in env.catalog.database_names() {
                if let Ok(db) = env.catalog.database(db_name) {
                    for info in db.dataset_listing() {
                        hints.tables.insert(info.dataset_name, info.columns);
                    }
                }
            }
            hints
        })
    }

    /// The chat box: try GEL, then the phrase layer, then the LLM
    /// pipeline; execute the resulting steps in the session.
    pub fn chat(&mut self, handle: &SessionHandle, text: &str) -> Result<ChatReply, PlatformError> {
        // 1. Direct GEL.
        if let Ok(call) = dc_gel::parse_gel(text) {
            return self.execute_calls(handle, vec![call], ChatPath::Gel);
        }
        let schema = self.schema_hints();
        // 2. Phrase-based translation (deterministic, Visualize-driven).
        if text.trim().to_lowercase().starts_with("visualize") {
            if let Ok(translation) = dc_nl::translate_visualize(text, &self.nl.semantics, &schema) {
                return self.execute_calls(handle, translation.calls, ChatPath::Phrase);
            }
        }
        // 3. LLM-based NL2Code.
        let result = self.nl.generate(text, &schema)?;
        let recipe = Nl2Code::to_recipe(&result.checked)?;
        self.execute_calls(handle, recipe.steps().to_vec(), ChatPath::Llm)
    }

    fn execute_calls(
        &mut self,
        handle: &SessionHandle,
        calls: Vec<SkillCall>,
        path: ChatPath,
    ) -> Result<ChatReply, PlatformError> {
        let calls: Vec<SkillCall> = calls.into_iter().map(rewrite_use_dataset).collect();
        let diagnostics = self.preflight(&calls)?;
        let mut last: Option<SkillOutput> = None;
        let mut steps_gel = Vec::with_capacity(calls.len());
        for call in calls {
            steps_gel.push(dc_gel::format_skill(&call));
            last = Some(handle.session.submit(&handle.user, call)?);
        }
        Ok(ChatReply {
            output: last.ok_or("empty program")?,
            steps_gel,
            path,
            diagnostics,
        })
    }

    /// Statically analyze a chat program before execution. Programs that
    /// open with a transform continue the session's current result —
    /// state the recipe-level analyzer cannot see — so those skip
    /// analysis rather than guess. Under [`AnalysisPolicy::Deny`], an
    /// Error-severity finding refuses execution (the session DAG is left
    /// untouched); under [`AnalysisPolicy::Warn`], findings ride along on
    /// the reply.
    fn preflight(&self, calls: &[SkillCall]) -> Result<Vec<Diagnostic>, PlatformError> {
        match calls.first() {
            None => return Ok(Vec::new()),
            Some(first) if first.needs_input() => return Ok(Vec::new()),
            Some(_) => {}
        }
        let mut recipe = dc_gel::Recipe::new();
        for call in calls {
            recipe.push(call.clone());
        }
        let analysis = dc_gel::validate_recipe(&recipe, &self.analysis_context());
        if self.analysis_policy == AnalysisPolicy::Deny && analysis.has_errors() {
            let lines: Vec<String> = analysis.errors().map(|d| d.to_string()).collect();
            return Err(format!(
                "static analysis rejected the program:\n{}",
                lines.join("\n")
            )
            .into());
        }
        Ok(analysis.diagnostics)
    }

    /// Save the session's current result as an artifact (sliced recipe,
    /// materialized output).
    pub fn save_artifact(
        &mut self,
        handle: &SessionHandle,
        name: impl Into<String>,
    ) -> Result<&Artifact, PlatformError> {
        let name = name.into();
        if self.artifacts.contains_key(&name) {
            return Err(format!(
                "an artifact named {name:?} already exists; refresh it or pick a new name"
            )
            .into());
        }
        let target = handle
            .session
            .current_node()
            .ok_or("nothing to save in this session")?;
        let dag = handle.session.dag_snapshot();
        let artifact =
            with_env(|env| Artifact::save(name.clone(), &handle.user, &dag, target, env))?;
        self.home
            .place("home", dc_collab::FolderEntry::Artifact(name.clone()))?;
        self.artifacts.insert(name.clone(), artifact);
        Ok(&self.artifacts[&name])
    }

    /// Look up an artifact.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.get(name)
    }

    /// Refresh an artifact against current data.
    pub fn refresh_artifact(&mut self, name: &str) -> Result<u64, PlatformError> {
        let artifact = self
            .artifacts
            .get_mut(name)
            .ok_or_else(|| format!("artifact not found: {name}"))?;
        Ok(with_env(|env| artifact.refresh(env))?)
    }

    /// Issue a secret share link for an artifact.
    pub fn share_artifact_link(
        &mut self,
        name: &str,
        permission: Permission,
    ) -> Result<ShareLink, PlatformError> {
        if !self.artifacts.contains_key(name) {
            return Err(format!("artifact not found: {name}").into());
        }
        Ok(self.links.issue(name, permission))
    }

    /// Authorize a share link and fetch the artifact it exposes.
    pub fn open_shared(&self, key: &str, secret: &str) -> Result<&Artifact, PlatformError> {
        let (name, _perm) = self.links.authorize(key, secret)?;
        self.artifacts
            .get(name)
            .ok_or_else(|| format!("artifact vanished: {name}").into())
    }

    /// Create an Insights Board.
    pub fn create_board(&mut self, title: impl Into<String>) -> &mut InsightsBoard {
        let title = title.into();
        self.boards
            .entry(title.clone())
            .or_insert_with(|| InsightsBoard::new(title))
    }

    /// Look up a board.
    pub fn board(&self, title: &str) -> Option<&InsightsBoard> {
        self.boards.get(title)
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::new()
    }
}

/// `Use the dataset X` over a catalog table becomes a load. Resolution is
/// case-insensitive (chat is forgiving) but the rewritten call carries
/// the catalog's *exact* table name, because the storage lookup the load
/// performs is exact-match.
fn rewrite_use_dataset(call: SkillCall) -> SkillCall {
    let SkillCall::UseDataset { name, version } = call else {
        return call;
    };
    let in_catalog: Option<(String, String)> = with_env(|env| {
        env.catalog.database_names().iter().find_map(|db| {
            let table = env
                .catalog
                .database(db)
                .ok()?
                .table_names()
                .iter()
                .find(|t| t.eq_ignore_ascii_case(&name))?
                .to_string();
            Some((db.to_string(), table))
        })
    });
    match in_catalog {
        Some((database, table)) => SkillCall::LoadTable { database, table },
        None => SkillCall::UseDataset { name, version },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_storage::Pricing;

    fn platform_with_collisions() -> Platform {
        let p = Platform::new();
        let (collisions, parties, victims) = dc_storage::demo::california_collisions(300, 1);
        let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
        db.create_table("collisions", &collisions).unwrap();
        db.create_table("parties", &parties).unwrap();
        db.create_table("victims", &victims).unwrap();
        p.add_database(db).unwrap();
        p
    }

    #[test]
    fn gel_chat_path() {
        let mut p = platform_with_collisions();
        let h = p.open_session("ann");
        let reply = p
            .chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
        assert_eq!(reply.path, ChatPath::Gel);
        assert!(reply.output.as_table().unwrap().num_rows() >= 300);
    }

    #[test]
    fn figure1_visualize_phrase_path() {
        let mut p = platform_with_collisions();
        let h = p.open_session("ann");
        p.chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
        // GEL handles Visualize directly, so this goes down the Gel path;
        // the phrase layer handles utterances GEL cannot (with filters).
        let reply = p
            .chat(
                &h,
                "Visualize at_fault by party_age, party_sex, cellphone_in_use",
            )
            .unwrap();
        let charts = reply.output.as_charts().expect("charts");
        assert_eq!(charts.len(), 6);
    }

    #[test]
    fn nl2code_chat_path() {
        let mut p = platform_with_collisions();
        // Deterministic translation for this test: no injected errors.
        p.nl.model = Box::new(dc_nl::SimulatedLlm::oracle());
        let h = p.open_session("ann");
        let reply = p
            .chat(&h, "How many parties are there for each party_sobriety")
            .unwrap();
        assert_eq!(reply.path, ChatPath::Llm);
        let t = reply.output.as_table().unwrap();
        assert!(t.num_rows() >= 2);
        assert!(!reply.steps_gel.is_empty());
    }

    #[test]
    fn save_share_refresh_artifact() {
        let mut p = platform_with_collisions();
        let h = p.open_session("ann");
        p.chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
        p.chat(&h, "Keep the rows where party_age is not null")
            .unwrap();
        let a = p.save_artifact(&h, "adults").unwrap();
        assert_eq!(a.version, 1);
        assert!(!a.recipe_gel().is_empty());
        // Share via secret link.
        let link = p.share_artifact_link("adults", Permission::View).unwrap();
        let shared = p.open_shared(&link.key, &link.secret).unwrap();
        assert_eq!(shared.name, "adults");
        assert!(p.open_shared(&link.key, "wrong").is_err());
        // Refresh bumps the version.
        assert_eq!(p.refresh_artifact("adults").unwrap(), 2);
        // Saved artifacts appear on the home screen.
        assert!(p
            .home
            .list("home")
            .unwrap()
            .contains(&dc_collab::FolderEntry::Artifact("adults".into())));
    }

    #[test]
    fn boards_collect_artifacts() {
        let mut p = platform_with_collisions();
        let h = p.open_session("ann");
        p.chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
        p.save_artifact(&h, "all-parties").unwrap();
        let board = p.create_board("Q3 readout");
        board.pin_artifact("all-parties", 0, 0, 600, 400);
        board.add_text("Findings below.", 0, 420, 600, 60);
        assert_eq!(
            p.board("Q3 readout").unwrap().artifact_names(),
            vec!["all-parties"]
        );
    }

    #[test]
    fn fault_injection_covers_catalog_and_snapshots() {
        let mut p = platform_with_collisions();
        let h = p.open_session("ann");
        let inj = p.enable_fault_injection(dc_storage::FaultConfig {
            scan_transient_p: 1.0,
            ..dc_storage::FaultConfig::disabled()
        });
        let err = p
            .chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap_err();
        assert!(err.to_string().contains("transient"), "got: {err}");
        assert!(inj.stats().transient_injected >= 1);
        p.disable_fault_injection();
        p.chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
    }

    #[test]
    fn analyze_reports_bad_recipe_without_executing() {
        let p = platform_with_collisions();
        let a = p.analyze(
            "Load the table parties from the database MainDatabase\n\
             Keep the rows where bogus > 1\n",
        );
        assert!(a.has_errors());
        let d = &a.with_code(dc_analyze::Code::UnknownColumn)[0];
        assert_eq!(d.span.line, Some(2));
        // A clean program analyzes clean.
        let a = p.analyze("Load the table parties from the database MainDatabase");
        assert!(a.diagnostics.is_empty(), "{}", a.render());
    }

    #[test]
    fn deny_policy_refuses_before_execution() {
        let mut p = platform_with_collisions();
        p.set_analysis_policy(dc_analyze::AnalysisPolicy::Deny);
        assert_eq!(p.analysis_policy(), dc_analyze::AnalysisPolicy::Deny);
        let h = p.open_session("ann");
        let err = p
            .chat(&h, "Load the table ghost from the database MainDatabase")
            .unwrap_err();
        assert!(err.to_string().contains("DC0001"), "{err}");
        // The refusal happened before any node entered the session DAG.
        assert!(h.session.current_node().is_none());
        // Clean programs still execute under Deny.
        p.chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
        assert!(h.session.current_node().is_some());
    }

    #[test]
    fn warn_policy_attaches_diagnostics_but_executes() {
        let mut p = platform_with_collisions();
        // A snapshot shadowing the table name triggers the §3 cost lint:
        // the full scan could be a fixed-cost snapshot read.
        p.env(|env| {
            let t = dc_storage::demo::california_collisions(50, 1).1;
            env.snapshots
                .create("parties", t, "test", vec![], None)
                .unwrap();
        });
        let h = p.open_session("ann");
        let reply = p
            .chat(&h, "Load the table parties from the database MainDatabase")
            .unwrap();
        assert!(reply
            .diagnostics
            .iter()
            .any(|d| d.code == dc_analyze::Code::FullScanCouldSnapshot));
        assert!(reply.output.as_table().is_some());
    }

    #[test]
    fn use_dataset_rewrite_carries_exact_catalog_name() {
        let mut p = platform_with_collisions();
        let h = p.open_session("ann");
        // Case-insensitive resolution, exact-cased load.
        let reply = p.chat(&h, "Use the dataset PARTIES").unwrap();
        assert!(
            reply.steps_gel[0].contains("parties from the database MainDatabase"),
            "{:?}",
            reply.steps_gel
        );
        assert!(reply.output.as_table().unwrap().num_rows() >= 300);
    }

    #[test]
    fn sessions_share_materialized_results() {
        let mut p = platform_with_collisions();
        let a = p.open_session("ann");
        let b = p.open_session("bob");
        p.chat(&a, "Load the table parties from the database MainDatabase")
            .unwrap();
        assert!(p.materialized_cache_stats().insertions >= 1);
        let queries_before = p.env(|env| {
            env.catalog
                .database("MainDatabase")
                .unwrap()
                .meter()
                .queries()
        });
        // A different session's executor has a cold local cache, but the
        // shared tier serves the load without touching the catalog.
        let reply = p
            .chat(&b, "Load the table parties from the database MainDatabase")
            .unwrap();
        assert!(reply.output.as_table().unwrap().num_rows() >= 300);
        let queries_after = p.env(|env| {
            env.catalog
                .database("MainDatabase")
                .unwrap()
                .meter()
                .queries()
        });
        assert_eq!(queries_before, queries_after, "warm load must not scan");
        assert!(p.materialized_cache_stats().hits >= 1);
    }

    #[test]
    fn schema_hints_cover_catalog() {
        let p = platform_with_collisions();
        let hints = p.schema_hints();
        assert!(hints.tables.contains_key("parties"));
        assert!(hints.tables.contains_key("collisions"));
        assert!(hints
            .tables
            .get("parties")
            .unwrap()
            .iter()
            .any(|c| c == "party_sobriety"));
    }
}
