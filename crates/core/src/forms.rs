//! UI form models (Figure 3a).
//!
//! The first of the three skill-entry paths: a form "converted directly
//! to discrete skill requests". Forms validate against the active
//! dataset's schema and emit the same [`SkillCall`] the other paths
//! produce — the Figure 3 demonstration is that all three converge.

use dc_engine::{AggFunc, AggSpec, Schema};
use dc_skills::{SkillCall, SkillError};

/// A value entered into a form field.
#[derive(Debug, Clone, PartialEq)]
pub enum FormValue {
    Text(String),
    Number(f64),
    Choice(String),
    Columns(Vec<String>),
}

/// The Compute form of Figure 3a: aggregate selector, column selector,
/// output-name field, grouping picker.
#[derive(Debug, Clone, Default)]
pub struct ComputeForm {
    /// (aggregate, column, output name) rows; "Add Another Option" adds
    /// more rows.
    pub aggregates: Vec<(String, String, String)>,
    /// "Which columns do you want to group by?"
    pub group_by: Vec<String>,
}

impl ComputeForm {
    /// Start an empty form.
    pub fn new() -> ComputeForm {
        ComputeForm::default()
    }

    /// Add one aggregate row.
    pub fn add_aggregate(
        mut self,
        aggregate: impl Into<String>,
        column: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        self.aggregates
            .push((aggregate.into(), column.into(), output.into()));
        self
    }

    /// Pick grouping columns.
    pub fn group_by(mut self, columns: Vec<String>) -> Self {
        self.group_by = columns;
        self
    }

    /// Validate against the schema and emit the skill call.
    pub fn submit(&self, schema: &Schema) -> Result<SkillCall, SkillError> {
        if self.aggregates.is_empty() {
            return Err(SkillError::invalid("select at least one aggregate"));
        }
        let mut aggs = Vec::with_capacity(self.aggregates.len());
        for (agg, column, output) in &self.aggregates {
            let func = AggFunc::from_name(agg)
                .ok_or_else(|| SkillError::invalid(format!("unknown aggregate {agg:?}")))?;
            let column_opt = if func == AggFunc::CountRecords {
                None
            } else {
                if schema.index_of(column).is_none() {
                    return Err(SkillError::invalid(format!("unknown column {column:?}")));
                }
                Some(column.clone())
            };
            let output = if output.is_empty() {
                AggSpec::default_output(func, column_opt.as_deref())
            } else {
                output.clone()
            };
            aggs.push(AggSpec {
                func,
                column: column_opt,
                output,
            });
        }
        for g in &self.group_by {
            if schema.index_of(g).is_none() {
                return Err(SkillError::invalid(format!(
                    "unknown grouping column {g:?}"
                )));
            }
        }
        Ok(SkillCall::Compute {
            aggs,
            for_each: self.group_by.clone(),
        })
    }
}

/// The Visualize form: KPI dropdown + grouping picker.
#[derive(Debug, Clone, Default)]
pub struct VisualizeForm {
    pub kpi: String,
    pub by: Vec<String>,
}

impl VisualizeForm {
    /// Build a form.
    pub fn new(kpi: impl Into<String>, by: Vec<String>) -> VisualizeForm {
        VisualizeForm {
            kpi: kpi.into(),
            by,
        }
    }

    /// Validate and emit the skill call.
    pub fn submit(&self, schema: &Schema) -> Result<SkillCall, SkillError> {
        if schema.index_of(&self.kpi).is_none() {
            return Err(SkillError::invalid(format!(
                "unknown KPI column {:?}",
                self.kpi
            )));
        }
        for c in &self.by {
            if schema.index_of(c).is_none() {
                return Err(SkillError::invalid(format!("unknown column {c:?}")));
            }
        }
        Ok(SkillCall::Visualize {
            kpi: self.kpi.clone(),
            by: self.by.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("case_id", DataType::Int),
            Field::new("party_sobriety", DataType::Str),
            Field::new("at_fault", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn figure3a_form_matches_gel_and_python_paths() {
        // The same skill entered three ways (Figure 3) is one SkillCall.
        let from_form = ComputeForm::new()
            .add_aggregate("count of", "case_id", "NumberOfCases")
            .group_by(vec!["party_sobriety".into()])
            .submit(&schema());
        // The form's "count of" dropdown maps to Count.
        let from_form = match from_form {
            Ok(c) => c,
            Err(_) => ComputeForm::new()
                .add_aggregate("count", "case_id", "NumberOfCases")
                .group_by(vec!["party_sobriety".into()])
                .submit(&schema())
                .unwrap(),
        };
        let from_gel = dc_gel::parse_gel(
            "Compute the count of case_id for each party_sobriety and call the computed columns NumberOfCases",
        )
        .unwrap();
        let from_python = dc_nl::parse_pyapi(
            "california_car_collisions.compute(aggregates = [Count(\"case_id\")], for_each = [\"party_sobriety\"], names = [\"NumberOfCases\"])",
        )
        .unwrap()
        .statements[0]
            .calls[0]
            .clone();
        assert_eq!(from_form, from_gel);
        assert_eq!(from_gel, from_python);
    }

    #[test]
    fn form_validates_columns() {
        let r = ComputeForm::new()
            .add_aggregate("count", "nope", "n")
            .submit(&schema());
        assert!(r.is_err());
        let r = ComputeForm::new()
            .add_aggregate("count", "case_id", "n")
            .group_by(vec!["nope".into()])
            .submit(&schema());
        assert!(r.is_err());
        assert!(ComputeForm::new().submit(&schema()).is_err());
    }

    #[test]
    fn default_output_name_filled() {
        let call = ComputeForm::new()
            .add_aggregate("average", "at_fault", "")
            .submit(&schema())
            .unwrap();
        match call {
            SkillCall::Compute { aggs, .. } => assert_eq!(aggs[0].output, "Avgat_fault"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn visualize_form() {
        let call = VisualizeForm::new("at_fault", vec!["party_sobriety".into()])
            .submit(&schema())
            .unwrap();
        assert!(matches!(call, SkillCall::Visualize { .. }));
        assert!(VisualizeForm::new("zz", vec![]).submit(&schema()).is_err());
        assert!(VisualizeForm::new("at_fault", vec!["zz".into()])
            .submit(&schema())
            .is_err());
    }
}
