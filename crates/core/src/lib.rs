//! # datachat-core — the platform facade
//!
//! Wires the subsystems into the user-facing surface the paper
//! demonstrates: a [`Platform`] owning the environment (catalog, snapshot
//! store, virtual files), sessions with the three §2.1 entry paths (UI
//! forms, GEL sentences, Python API) plus the NL2Code chat box, artifact
//! saving with sliced recipes, secret-link sharing, and Insights Boards.

pub mod forms;
pub mod platform;

pub use forms::{ComputeForm, FormValue, VisualizeForm};
pub use platform::{ChatPath, ChatReply, Platform, PlatformError, SessionHandle};
