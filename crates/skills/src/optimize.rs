//! Cost-based plan optimizer (ROADMAP item 4).
//!
//! Runs over a planned [`SkillDag`] after planning and before
//! [`crate::pushdown::plan_pushdown`], applying four rewrite families:
//!
//! 1. **Projection pushdown** — a column-liveness pass threads the
//!    minimal live column set of every unprotected `LoadTable` /
//!    `LoadTableFiltered` into a [`SkillCall::LoadTableProjected`], so
//!    the storage scan never reads (or charges for) dead columns.
//! 2. **Filter hoisting** — prunable conjuncts of `KeepRows` /
//!    `DropRows` predicates sink below joins, concats, and group-bys
//!    whose semantics provably pass the referenced columns through
//!    unchanged, landing as scan predicates on the source loads. This
//!    generalizes PR 5's sole-consumer, directly-above-load fusion.
//! 3. **Join-order selection** — chains/stars of 2–4 inner joins are
//!    re-ordered by estimator-style interval upper bounds (dictionary
//!    cardinalities and provable key uniqueness); the written order is
//!    kept on ties or unbounded estimates.
//! 4. **Flattening** — adjacent `KeepRows` pairs merge into one
//!    conjunction (so deeper predicates reach the scan), and duplicate
//!    load nodes dedup by redirecting consumers to the first copy.
//!
//! Every rewrite preserves the PR 5 discipline: node ids and node count
//! never change (calls are swapped in place, edges only redirect to
//! structural twins), targets / vetoed nodes / name-bound nodes are
//! never rewritten and never observe different bytes, and the filter
//! nodes above hoisted predicates still evaluate their full predicate,
//! so pushed filters are purely an optimization.
//!
//! The pass is deterministic: given the same DAG and the same
//! [`PlanStats`] answers it produces the same plan, which is how the
//! executor (stats from [`Env`]) and the static estimator (stats from
//! `dc-analyze`'s context) stay in agreement.

use std::collections::BTreeSet;

use dc_engine::expr::prune::{nnf, prunable_conjuncts, ColumnStats};
use dc_engine::{Expr, Schema, Value};

use crate::dag::{NodeId, SkillDag};
use crate::env::Env;
use crate::skill::SkillCall;

/// The statistics interface the optimizer plans against. Implemented by
/// [`Env`] (live catalog) and by `dc-analyze`'s `AnalysisContext`
/// (static snapshot), so plan-time and analysis-time rewrites agree.
///
/// Schema answers drive the *semantic* rewrites (projection, hoisting);
/// row counts, distinct counts, and uniqueness proofs drive only the
/// join-order *cost* comparison, so a provider without them still
/// produces a correct (just unreordered) plan.
pub trait PlanStats {
    /// Schema of a catalog table, if known.
    fn table_schema(&self, database: &str, table: &str) -> Option<Schema>;
    /// Exact row count of a catalog table, if known.
    fn table_rows(&self, database: &str, table: &str) -> Option<u64>;
    /// Exact distinct-value count of a column (dictionary cardinality),
    /// if known.
    fn column_distinct(&self, database: &str, table: &str, column: &str) -> Option<u64>;
    /// Whether every row of `column` is provably distinct and non-null.
    /// Must only return `true` on a proof — join reordering relies on
    /// uniqueness for exact row-order preservation, not just cost.
    fn column_unique(&self, database: &str, table: &str, column: &str) -> bool;
}

/// Uniqueness proof for an integer column from per-block statistics:
/// every block is a dense null-free run (`max - min + 1 == rows`) and
/// the block ranges are pairwise disjoint, so all values are distinct.
/// This is exactly the shape of surrogate-key columns.
pub fn int_blocks_unique(blocks: &[ColumnStats]) -> bool {
    if blocks.is_empty() {
        return false;
    }
    let mut spans: Vec<(i64, i64)> = Vec::with_capacity(blocks.len());
    for b in blocks {
        if b.null_count != 0 {
            return false;
        }
        if b.row_count == 0 {
            continue;
        }
        let (Some(Value::Int(lo)), Some(Value::Int(hi))) = (&b.min, &b.max) else {
            return false;
        };
        if hi.saturating_sub(*lo).saturating_add(1) != b.row_count as i64 {
            return false;
        }
        spans.push((*lo, *hi));
    }
    spans.sort_unstable();
    spans.windows(2).all(|w| w[0].1 < w[1].0)
}

impl PlanStats for Env {
    fn table_schema(&self, database: &str, table: &str) -> Option<Schema> {
        let t = self.catalog.database(database).ok()?.table(table).ok()?;
        Some(t.schema().clone())
    }

    fn table_rows(&self, database: &str, table: &str) -> Option<u64> {
        let t = self.catalog.database(database).ok()?.table(table).ok()?;
        Some(t.num_rows() as u64)
    }

    fn column_distinct(&self, database: &str, table: &str, column: &str) -> Option<u64> {
        let t = self.catalog.database(database).ok()?.table(table).ok()?;
        t.dict_sizes()
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(column))
            .map(|(_, n)| *n as u64)
    }

    fn column_unique(&self, database: &str, table: &str, column: &str) -> bool {
        let Ok(db) = self.catalog.database(database) else {
            return false;
        };
        let Ok(t) = db.table(table) else {
            return false;
        };
        let Some(ci) = t.schema().index_of(column) else {
            return false;
        };
        let stats: Vec<ColumnStats> = (0..t.num_blocks())
            .map(|bi| t.column_stats(bi, ci))
            .collect();
        let nulls: u64 = stats.iter().map(|s| s.null_count).sum();
        if nulls == 0 {
            if let Some((_, dict)) = t
                .dict_sizes()
                .iter()
                .find(|(name, _)| name.eq_ignore_ascii_case(column))
            {
                if *dict == t.num_rows() {
                    return true;
                }
            }
        }
        int_blocks_unique(&stats)
    }
}

/// Optimize `dag` for `targets`. Returns the rewritten DAG, or `None`
/// when no rewrite applies (execute the input as written). `vetoed`
/// nodes (analyzer rejections) are protected exactly like targets.
pub fn optimize_dag(
    dag: &SkillDag,
    targets: &[NodeId],
    vetoed: &[NodeId],
    stats: &dyn PlanStats,
) -> Option<SkillDag> {
    let mut out = dag.clone();
    let mut changed = false;
    let protected = protected_set(&out, targets, vetoed);
    let mut vetoed_set = vec![false; out.len()];
    for &v in vetoed {
        if let Some(slot) = vetoed_set.get_mut(v) {
            *slot = true;
        }
    }
    dedup_loads(&mut out, &protected, &mut changed);
    merge_adjacent_keeps(&mut out, &protected, &vetoed_set, &mut changed);
    reorder_joins(&mut out, &protected, stats, &mut changed);
    let names = forward_names(&out, stats);
    hoist_filters(&mut out, &protected, &vetoed_set, &names, &mut changed);
    project_loads(&mut out, targets, &protected, &names, stats, &mut changed);
    changed.then_some(out)
}

/// Nodes whose call and output bytes must survive every rewrite:
/// requested targets, analyzer-vetoed nodes, and anything bound to a
/// dataset name (addressable by `Use the dataset`).
fn protected_set(dag: &SkillDag, targets: &[NodeId], vetoed: &[NodeId]) -> Vec<bool> {
    let mut protected = vec![false; dag.len()];
    for &t in targets.iter().chain(vetoed) {
        if let Some(p) = protected.get_mut(t) {
            *p = true;
        }
    }
    for b in dag.bound_nodes() {
        protected[b] = true;
    }
    protected
}

fn is_load(call: &SkillCall) -> bool {
    matches!(
        call,
        SkillCall::LoadTable { .. }
            | SkillCall::LoadTableFiltered { .. }
            | SkillCall::LoadTableProjected { .. }
    )
}

/// Redirect consumers of duplicate load nodes to the first structural
/// copy. The executor's sub-DAG cache would unify them anyway; doing it
/// at plan time also unifies anything pushdown later fuses on top.
fn dedup_loads(dag: &mut SkillDag, protected: &[bool], changed: &mut bool) {
    let n = dag.len();
    let mut first: Vec<(SkillCall, NodeId)> = Vec::new();
    let mut alias: Vec<Option<NodeId>> = vec![None; n];
    for id in 0..n {
        let node = dag.node(id).expect("id in range");
        if !is_load(&node.call) {
            continue;
        }
        match first.iter().find(|(c, _)| *c == node.call) {
            Some(&(_, twin)) if !protected[id] => alias[id] = Some(twin),
            Some(_) => {}
            None => first.push((node.call.clone(), id)),
        }
    }
    for id in 0..n {
        let inputs = dag.node(id).expect("id in range").inputs.clone();
        for from in inputs {
            if let Some(to) = alias[from] {
                if dag.redirect_input(id, from, to).is_ok() {
                    *changed = true;
                }
            }
        }
    }
}

/// Merge `KeepRows(p1) → KeepRows(p2)` chains by conjoining downstream
/// predicates into the upstream node (descending, so whole chains
/// cascade toward the scan). The downstream filter re-applies its own
/// predicate, which is a row-preserving no-op, so results are
/// unchanged; the upstream conjunction is what pushdown can now fuse
/// into the scan.
fn merge_adjacent_keeps(
    dag: &mut SkillDag,
    protected: &[bool],
    vetoed: &[bool],
    changed: &mut bool,
) {
    let counts = dag.consumer_counts();
    for id in (0..dag.len()).rev() {
        if vetoed[id] {
            // An analyzer-rejected predicate never earned the right to
            // run anywhere — merging it upstream would execute it at the
            // unvetoed node (and let hoisting sink it into a scan).
            continue;
        }
        let node = dag.node(id).expect("id in range");
        let SkillCall::KeepRows { predicate: p2 } = &node.call else {
            continue;
        };
        let p2 = p2.clone();
        let Some(&up) = node.inputs.first() else {
            continue;
        };
        if protected[up] || counts[up] != 1 {
            continue;
        }
        let SkillCall::KeepRows { predicate: p1 } = &dag.node(up).expect("id in range").call else {
            continue;
        };
        let merged = p1.clone().and(p2);
        if dag
            .update_call(up, SkillCall::KeepRows { predicate: merged })
            .is_ok()
        {
            *changed = true;
        }
    }
}

// ---------------------------------------------------------------------
// Forward column-name propagation
// ---------------------------------------------------------------------

/// Output column names per node (in order, schema casing), `None` when
/// unknown. A miniature of `dc-analyze`'s schema pass covering exactly
/// the calls the optimizer models; anything else is `None`, which
/// downstream passes treat as "hands off".
fn forward_names(dag: &SkillDag, stats: &dyn PlanStats) -> Vec<Option<Vec<String>>> {
    use SkillCall::*;
    let mut names: Vec<Option<Vec<String>>> = Vec::with_capacity(dag.len());
    for node in dag.nodes() {
        let input = |i: usize| -> Option<&Vec<String>> {
            node.inputs.get(i).and_then(|&n| names[n].as_ref())
        };
        let find = |cols: Option<&Vec<String>>, name: &str| -> Option<usize> {
            cols.and_then(|c| c.iter().position(|f| f.eq_ignore_ascii_case(name)))
        };
        let out: Option<Vec<String>> = match &node.call {
            LoadTable { database, table }
            | LoadTableFiltered {
                database, table, ..
            } => stats
                .table_schema(database, table)
                .map(|s| s.fields().iter().map(|f| f.name.clone()).collect()),
            LoadTableProjected { columns, .. } => Some(columns.clone()),
            UseDataset { .. } if !node.inputs.is_empty() => input(0).cloned(),
            KeepRows { .. }
            | DropRows { .. }
            | Sort { .. }
            | Top { .. }
            | Limit { .. }
            | Sample { .. }
            | ShuffleRows { .. }
            | Distinct { .. }
            | DropMissing { .. }
            | FillMissing { .. }
            | ReplaceValues { .. }
            | TrimColumn { .. }
            | CastColumn { .. }
            | CountRows
            | DescribeColumn { .. }
            | DescribeDataset
            | ShowHead { .. }
            | ProfileMissing
            | Visualize { .. }
            | Plot { .. }
            | ExportCsv
            | SaveArtifact { .. }
            | Snapshot { .. } => input(0).cloned(),
            KeepColumns { columns } => {
                let cur = input(0);
                columns
                    .iter()
                    .map(|c| find(cur, c).map(|i| cur.expect("found").get(i).cloned().expect("i")))
                    .collect()
            }
            DropColumns { columns } => input(0).and_then(|cur| {
                if columns.iter().any(|c| find(Some(cur), c).is_none()) {
                    return None;
                }
                Some(
                    cur.iter()
                        .filter(|f| !columns.iter().any(|c| c.eq_ignore_ascii_case(f)))
                        .cloned()
                        .collect(),
                )
            }),
            RenameColumn { from, to } => input(0).and_then(|cur| {
                let i = find(Some(cur), from)?;
                if find(Some(cur), to).is_some() {
                    return None;
                }
                let mut out = cur.clone();
                out[i] = to.clone();
                Some(out)
            }),
            CreateColumn { name, .. } | CreateConstantColumn { name, .. } => {
                input(0).and_then(|cur| {
                    if find(Some(cur), name).is_some() {
                        return None;
                    }
                    let mut out = cur.clone();
                    out.push(name.clone());
                    Some(out)
                })
            }
            Compute { aggs, for_each } => input(0).and_then(|cur| {
                let mut out: Vec<String> = Vec::with_capacity(for_each.len() + aggs.len());
                for k in for_each {
                    let i = find(Some(cur), k)?;
                    out.push(cur[i].clone());
                }
                out.extend(aggs.iter().map(|a| a.output.clone()));
                Some(out)
            }),
            Join { right_on, .. } => match (input(0), input(1)) {
                (Some(l), Some(r)) => {
                    let mut out = l.clone();
                    for f in r {
                        if right_on.iter().any(|k| k.eq_ignore_ascii_case(f)) {
                            continue;
                        }
                        if l.iter().any(|x| x.eq_ignore_ascii_case(f)) {
                            out.push(format!("{f}_right"));
                        } else {
                            out.push(f.clone());
                        }
                    }
                    Some(out)
                }
                _ => None,
            },
            Concat { .. } => match (input(0), input(1)) {
                (Some(a), Some(b))
                    if a.len() == b.len()
                        && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y)) =>
                {
                    Some(a.clone())
                }
                _ => None,
            },
            _ => None,
        };
        names.push(out);
    }
    names
}

// ---------------------------------------------------------------------
// Column liveness (demand) and projection pushdown
// ---------------------------------------------------------------------

/// What a consumer needs from a node's output: everything, or a
/// specific (lowercased) column set.
#[derive(Debug, Clone, PartialEq)]
enum Demand {
    All,
    Cols(BTreeSet<String>),
}

impl Demand {
    fn none() -> Demand {
        Demand::Cols(BTreeSet::new())
    }

    fn absorb(&mut self, other: Demand) {
        match (&mut *self, other) {
            (Demand::All, _) => {}
            (_, Demand::All) => *self = Demand::All,
            (Demand::Cols(a), Demand::Cols(b)) => a.extend(b),
        }
    }

    fn with(mut self, cols: impl IntoIterator<Item = String>) -> Demand {
        if let Demand::Cols(s) = &mut self {
            s.extend(cols);
        }
        self
    }
}

fn expr_cols(e: &Expr) -> Vec<String> {
    let mut v = Vec::new();
    e.referenced_columns(&mut v);
    v.into_iter().map(|c| c.to_ascii_lowercase()).collect()
}

fn lower(names: &[String]) -> Vec<String> {
    names.iter().map(|n| n.to_ascii_lowercase()).collect()
}

/// Reverse liveness pass: the column demand placed on every node's
/// output. Protected nodes demand everything (their bytes are
/// observable); each call then translates output demand into input
/// demand, always including the columns the call itself references so
/// projection can never turn a working plan into a missing-column
/// error. Unmodeled calls conservatively demand everything.
fn demands(dag: &SkillDag, protected: &[bool], names: &[Option<Vec<String>>]) -> Vec<Demand> {
    use SkillCall::*;
    let mut demand: Vec<Demand> = vec![Demand::none(); dag.len()];
    for (id, p) in protected.iter().enumerate() {
        if *p {
            demand[id] = Demand::All;
        }
    }
    for id in (0..dag.len()).rev() {
        let node = dag.node(id).expect("id in range");
        let d = demand[id].clone();
        let low = |v: &[String]| v.iter().map(|c| c.to_ascii_lowercase()).collect::<Vec<_>>();
        let per_input: Vec<Demand> = match &node.call {
            KeepRows { predicate } | DropRows { predicate } => {
                vec![d.with(expr_cols(predicate))]
            }
            KeepColumns { columns } => vec![Demand::none().with(low(columns))],
            DropColumns { columns } => vec![d.with(low(columns))],
            RenameColumn { from, to } => match d {
                Demand::All => vec![Demand::All],
                Demand::Cols(s) => {
                    let mut s: BTreeSet<String> = s
                        .into_iter()
                        .filter(|c| !c.eq_ignore_ascii_case(to))
                        .collect();
                    s.insert(from.to_ascii_lowercase());
                    // `Table::rename_column` fails with DuplicateColumn
                    // when `to` already exists. Demand `to` whenever the
                    // input provably has it (or its names are unknown)
                    // so projection can't drop it and silently convert a
                    // deterministic failure into a success.
                    let input_has_to = match node.inputs.first().and_then(|&n| names[n].as_ref()) {
                        Some(cur) => cur.iter().any(|c| c.eq_ignore_ascii_case(to)),
                        None => true,
                    };
                    if input_has_to {
                        s.insert(to.to_ascii_lowercase());
                    }
                    vec![Demand::Cols(s)]
                }
            },
            CreateColumn { name, expr } => match d {
                Demand::All => vec![Demand::All],
                Demand::Cols(s) => {
                    let mut s: BTreeSet<String> = s
                        .into_iter()
                        .filter(|c| !c.eq_ignore_ascii_case(name))
                        .collect();
                    s.extend(expr_cols(expr));
                    vec![Demand::Cols(s)]
                }
            },
            CreateConstantColumn { name, .. } => match d {
                Demand::All => vec![Demand::All],
                Demand::Cols(s) => vec![Demand::Cols(
                    s.into_iter()
                        .filter(|c| !c.eq_ignore_ascii_case(name))
                        .collect(),
                )],
            },
            Compute { aggs, for_each } => {
                let mut need = Demand::none().with(low(for_each));
                need = need.with(
                    aggs.iter()
                        .filter_map(|a| a.column.as_ref().map(|c| c.to_ascii_lowercase())),
                );
                vec![need]
            }
            Pivot {
                index,
                columns,
                values,
                ..
            } => vec![Demand::none().with([
                index.to_ascii_lowercase(),
                columns.to_ascii_lowercase(),
                values.to_ascii_lowercase(),
            ])],
            Sort { keys } => vec![d.with(keys.iter().map(|(k, _)| k.to_ascii_lowercase()))],
            Top { column, .. } => vec![d.with([column.to_ascii_lowercase()])],
            Limit { .. } | Sample { .. } | ShuffleRows { .. } | CountRows => vec![d],
            Distinct { columns } | DropMissing { columns } => {
                if columns.is_empty() {
                    vec![Demand::All]
                } else {
                    vec![d.with(low(columns))]
                }
            }
            FillMissing { column, .. }
            | ReplaceValues { column, .. }
            | CastColumn { column, .. }
            | BinColumn { column, .. }
            | ExtractDatePart { column, .. }
            | TrimColumn { column }
            | DescribeColumn { column } => vec![d.with([column.to_ascii_lowercase()])],
            Join {
                left_on, right_on, ..
            } => {
                let (l, r) = (
                    node.inputs.first().and_then(|&n| names[n].as_ref()),
                    node.inputs.get(1).and_then(|&n| names[n].as_ref()),
                );
                match (&d, l, r) {
                    (Demand::Cols(s), Some(l), Some(r)) => {
                        let llow = lower(l);
                        let mut ld: BTreeSet<String> =
                            left_on.iter().map(|c| c.to_ascii_lowercase()).collect();
                        ld.extend(s.iter().filter(|c| llow.contains(c)).cloned());
                        let mut rd: BTreeSet<String> =
                            right_on.iter().map(|c| c.to_ascii_lowercase()).collect();
                        for f in r {
                            let fl = f.to_ascii_lowercase();
                            if s.contains(&fl) {
                                rd.insert(fl);
                            } else if s.contains(&format!("{fl}_right")) {
                                // The `_right` suffix only exists because
                                // the left side also has `fl`: keep that
                                // left column alive too, or projection
                                // would emit the right column unsuffixed
                                // and break the `{fl}_right` reference.
                                if llow.contains(&fl) {
                                    ld.insert(fl.clone());
                                }
                                rd.insert(fl);
                            }
                        }
                        vec![Demand::Cols(ld), Demand::Cols(rd)]
                    }
                    _ => vec![Demand::All, Demand::All],
                }
            }
            UseDataset { .. } if !node.inputs.is_empty() => vec![d],
            _ => vec![Demand::All; node.inputs.len()],
        };
        for (slot, &input) in node.inputs.iter().enumerate() {
            let nd = per_input.get(slot).cloned().unwrap_or(Demand::All);
            demand[input].absorb(nd);
        }
    }
    demand
}

/// Rewrite unprotected loads whose live column set is a strict subset
/// of the table schema into [`SkillCall::LoadTableProjected`]. Columns
/// are emitted in schema order (projection never reorders), demands
/// that fail to resolve against the schema veto the rewrite, and an
/// empty live set keeps the first column so row counts survive.
fn project_loads(
    dag: &mut SkillDag,
    targets: &[NodeId],
    protected: &[bool],
    names: &[Option<Vec<String>>],
    stats: &dyn PlanStats,
    changed: &mut bool,
) {
    let _ = names;
    let counts = dag.consumer_counts();
    let demand = demands(dag, protected, &forward_names(dag, stats));
    for id in 0..dag.len() {
        if protected[id] {
            continue;
        }
        if counts[id] == 0 && !targets.contains(&id) {
            // Dead branch: never executed for these targets, and
            // rewriting it would only obscure DC0101's report.
            continue;
        }
        let node = dag.node(id).expect("id in range");
        let (database, table, predicate) = match &node.call {
            SkillCall::LoadTable { database, table } => (database.clone(), table.clone(), None),
            SkillCall::LoadTableFiltered {
                database,
                table,
                predicate,
            } => (database.clone(), table.clone(), Some(predicate.clone())),
            _ => continue,
        };
        let Demand::Cols(live) = &demand[id] else {
            continue;
        };
        let Some(schema) = stats.table_schema(&database, &table) else {
            continue;
        };
        if schema.fields().is_empty() {
            continue;
        }
        if !live.iter().all(|c| {
            schema
                .fields()
                .iter()
                .any(|f| f.name.eq_ignore_ascii_case(c))
        }) {
            continue;
        }
        let mut columns: Vec<String> = schema
            .fields()
            .iter()
            .filter(|f| live.contains(&f.name.to_ascii_lowercase()))
            .map(|f| f.name.clone())
            .collect();
        if columns.is_empty() {
            columns.push(schema.fields()[0].name.clone());
        }
        if columns.len() == schema.fields().len() {
            continue;
        }
        let call = SkillCall::LoadTableProjected {
            database,
            table,
            columns,
            predicate,
        };
        if dag.update_call(id, call).is_ok() {
            *changed = true;
        }
    }
}

// ---------------------------------------------------------------------
// Filter hoisting
// ---------------------------------------------------------------------

/// Sink the prunable conjuncts of every filter toward source loads,
/// through operators that provably pass the referenced columns'
/// values and the filter's row semantics through. Each node strictly
/// below the filter must be sole-consumed and unprotected (its output
/// loses rows the filter would have dropped anyway — the same
/// intermediate-visibility contract PR 5's pushdown established for
/// the load itself).
fn hoist_filters(
    dag: &mut SkillDag,
    protected: &[bool],
    vetoed: &[bool],
    names: &[Option<Vec<String>>],
    changed: &mut bool,
) {
    let counts = dag.consumer_counts();
    // Indexed loop: the body rewrites `dag` while walking it.
    #[allow(clippy::needless_range_loop)]
    for id in 0..dag.len() {
        let node = dag.node(id).expect("id in range");
        if vetoed[id] {
            // A vetoed filter's predicate never earned the right to run
            // anywhere. Target/name-bound filters may still sink: the
            // rewrite leaves their node (and output) untouched — the
            // prefilter only removes rows they would drop anyway.
            continue;
        }
        let keep = match &node.call {
            SkillCall::KeepRows { predicate } => predicate.clone(),
            SkillCall::DropRows { predicate } => nnf(predicate.clone().not()),
            _ => continue,
        };
        let conjuncts = prunable_conjuncts(&keep);
        if conjuncts.is_empty() {
            continue;
        }
        let Some(&below) = dag.node(id).expect("id in range").inputs.first() else {
            continue;
        };
        sink(dag, below, conjuncts, protected, &counts, names, changed);
    }
}

/// Recursive descent of one conjunct set from a filter toward loads.
fn sink(
    dag: &mut SkillDag,
    id: NodeId,
    conjuncts: Vec<Expr>,
    protected: &[bool],
    counts: &[usize],
    names: &[Option<Vec<String>>],
    changed: &mut bool,
) {
    use SkillCall::*;
    if conjuncts.is_empty() || protected[id] || counts[id] != 1 {
        return;
    }
    let node = dag.node(id).expect("id in range");
    let inputs = node.inputs.clone();
    let not_touching = |conjuncts: &[Expr], touched: &[&String]| -> Vec<Expr> {
        conjuncts
            .iter()
            .filter(|c| {
                let cols = expr_cols(c);
                !touched
                    .iter()
                    .any(|t| cols.iter().any(|x| x.eq_ignore_ascii_case(t)))
            })
            .cloned()
            .collect()
    };
    match node.call.clone() {
        LoadTable { database, table } => {
            let mut pred = conjuncts[0].clone();
            for c in conjuncts.into_iter().skip(1) {
                pred = pred.and(c);
            }
            let call = LoadTableFiltered {
                database,
                table,
                predicate: pred,
            };
            if dag.update_call(id, call).is_ok() {
                *changed = true;
            }
        }
        // Row-removing and row-preserving operators that keep every
        // referenced column's values intact pass all conjuncts through.
        KeepRows { .. } | DropRows { .. } | Sort { .. } | DropMissing { .. } => {
            if let Some(&next) = inputs.first() {
                sink(dag, next, conjuncts, protected, counts, names, changed);
            }
        }
        Distinct { columns } => {
            // Empty = whole-row distinct: duplicate rows agree on every
            // column, so a prefilter removes whole duplicate classes.
            // Keyed distinct keeps its first-occurrence representative
            // only if the conjunct is constant per key.
            let pass = if columns.is_empty() {
                conjuncts
            } else {
                let keys = lower(&columns);
                conjuncts
                    .into_iter()
                    .filter(|c| expr_cols(c).iter().all(|x| keys.contains(x)))
                    .collect()
            };
            if let Some(&next) = inputs.first() {
                sink(dag, next, pass, protected, counts, names, changed);
            }
        }
        Compute { for_each, .. } => {
            // Group keys partition rows: a conjunct over key columns is
            // constant per group, so prefiltering removes exactly the
            // groups the filter above would drop, and aggregates of the
            // surviving groups see every one of their rows.
            let keys = lower(&for_each);
            let pass: Vec<Expr> = conjuncts
                .into_iter()
                .filter(|c| expr_cols(c).iter().all(|x| keys.contains(x)))
                .collect();
            if let Some(&next) = inputs.first() {
                sink(dag, next, pass, protected, counts, names, changed);
            }
        }
        Concat { .. } => {
            for &next in &inputs {
                sink(
                    dag,
                    next,
                    conjuncts.clone(),
                    protected,
                    counts,
                    names,
                    changed,
                );
            }
        }
        Join { right_on, how, .. } => {
            // Only inner joins: an outer join null-pads the other side
            // for unmatched rows, so prefiltering an input with a
            // prunable conjunct (e.g. `c IS NULL`) manufactures padded
            // rows the upper filter then keeps — the classic left-join
            // anti-join idiom would return wrong rows.
            if how != dc_engine::JoinType::Inner {
                return;
            }
            let (Some(l), Some(r)) = (
                inputs.first().and_then(|&n| names[n].as_ref()),
                inputs.get(1).and_then(|&n| names[n].as_ref()),
            ) else {
                return;
            };
            let llow = lower(l);
            // Right columns only route when they appear unsuffixed in
            // the join output: non-key and not shadowed by a left name.
            let rlow: Vec<String> = lower(r)
                .into_iter()
                .filter(|f| {
                    !right_on.iter().any(|k| k.eq_ignore_ascii_case(f)) && !llow.contains(f)
                })
                .collect();
            let mut left_c = Vec::new();
            let mut right_c = Vec::new();
            for c in conjuncts {
                let cols = expr_cols(&c);
                if cols.iter().all(|x| llow.contains(x)) {
                    left_c.push(c);
                } else if cols.iter().all(|x| rlow.contains(x)) {
                    right_c.push(c);
                }
            }
            sink(dag, inputs[0], left_c, protected, counts, names, changed);
            if let Some(&ri) = inputs.get(1) {
                sink(dag, ri, right_c, protected, counts, names, changed);
            }
        }
        FillMissing { column, .. } | ReplaceValues { column, .. } | TrimColumn { column } => {
            let pass = not_touching(&conjuncts, &[&column]);
            if let Some(&next) = inputs.first() {
                sink(dag, next, pass, protected, counts, names, changed);
            }
        }
        CreateColumn { name, .. } | CreateConstantColumn { name, .. } => {
            let pass = not_touching(&conjuncts, &[&name]);
            if let Some(&next) = inputs.first() {
                sink(dag, next, pass, protected, counts, names, changed);
            }
        }
        RenameColumn { from, to } => {
            let pass = not_touching(&conjuncts, &[&from, &to]);
            if let Some(&next) = inputs.first() {
                sink(dag, next, pass, protected, counts, names, changed);
            }
        }
        ExtractDatePart {
            name: Some(name), ..
        } => {
            let pass = not_touching(&conjuncts, &[&name]);
            if let Some(&next) = inputs.first() {
                sink(dag, next, pass, protected, counts, names, changed);
            }
        }
        // Everything else either selects rows by position or sample
        // (Limit/Top/Sample/ShuffleRows), can fail per-row (CastColumn,
        // BinColumn), renders its input (display skills), or is not
        // modeled — prefiltering through those changes behavior.
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Join-order selection
// ---------------------------------------------------------------------

/// One join of a star: the join node, its dimension load, and the call
/// pieces that travel together when the order changes.
#[derive(Debug, Clone)]
struct StarJoin {
    join: NodeId,
    dim: NodeId,
    other: String,
    left_on: Vec<String>,
    right_on: Vec<String>,
}

/// A left-deep chain of inner joins rooted at `base`.
#[derive(Debug)]
struct Star {
    base: NodeId,
    joins: Vec<StarJoin>,
}

/// Per-dimension cost-model inputs.
struct DimCost {
    /// Upper bound on output-rows multiplication per probe row:
    /// 1 for provably unique keys, `rows - distinct + 1` when the
    /// dictionary cardinality is known, `rows` as a last resort.
    mult: Option<u64>,
    /// Whether `mult` came from real statistics (no rows-fallback).
    bounded: bool,
    /// Whether the join key is provably unique in the data.
    unique: bool,
    table: String,
}

/// Collect maximal left-deep inner-join chains whose second inputs are
/// load nodes. Chains longer than 4 joins are skipped (the enumeration
/// window of the tentpole).
/// `(inputs, other, left_on, right_on)` of an inner-join node.
type JoinParts = (Vec<NodeId>, String, Vec<String>, Vec<String>);

fn collect_stars(dag: &SkillDag, consumers: &[Vec<NodeId>]) -> Vec<Star> {
    use SkillCall::*;
    let inner_join = |id: NodeId| -> Option<JoinParts> {
        let node = dag.node(id).ok()?;
        match &node.call {
            Join {
                other,
                left_on,
                right_on,
                how,
            } if *how == dc_engine::JoinType::Inner => Some((
                node.inputs.clone(),
                other.clone(),
                left_on.clone(),
                right_on.clone(),
            )),
            _ => None,
        }
    };
    let mut stars = Vec::new();
    let mut in_chain = vec![false; dag.len()];
    for id in 0..dag.len() {
        if in_chain[id] {
            continue;
        }
        let Some((inputs, other, left_on, right_on)) = inner_join(id) else {
            continue;
        };
        // Chain starts where input[0] is not itself an inner join.
        if inputs.first().is_some_and(|&b| inner_join(b).is_some()) {
            continue;
        }
        let (Some(&base), Some(&dim)) = (inputs.first(), inputs.get(1)) else {
            continue;
        };
        let mut joins = vec![StarJoin {
            join: id,
            dim,
            other,
            left_on,
            right_on,
        }];
        let mut cur = id;
        loop {
            in_chain[cur] = true;
            let [next] = consumers[cur][..] else { break };
            let Some((inputs, other, left_on, right_on)) = inner_join(next) else {
                break;
            };
            if inputs.first() != Some(&cur) {
                break;
            }
            let Some(&dim) = inputs.get(1) else { break };
            joins.push(StarJoin {
                join: next,
                dim,
                other,
                left_on,
                right_on,
            });
            cur = next;
        }
        if joins.len() < 2 || joins.len() > 4 {
            continue;
        }
        if !joins.iter().all(|j| {
            is_load(
                &dag.node(j.dim)
                    .map(|n| n.call.clone())
                    .unwrap_or(SkillCall::ExportCsv),
            )
        }) {
            continue;
        }
        stars.push(Star { base, joins });
    }
    stars
}

fn dim_cost(dag: &SkillDag, j: &StarJoin, stats: &dyn PlanStats) -> Option<DimCost> {
    let node = dag.node(j.dim).ok()?;
    let (database, table) = match &node.call {
        SkillCall::LoadTable { database, table }
        | SkillCall::LoadTableFiltered {
            database, table, ..
        }
        | SkillCall::LoadTableProjected {
            database, table, ..
        } => (database.clone(), table.clone()),
        _ => return None,
    };
    let unique = j.right_on.len() == 1 && stats.column_unique(&database, &table, &j.right_on[0]);
    if unique {
        return Some(DimCost {
            mult: Some(1),
            bounded: true,
            unique,
            table,
        });
    }
    let rows = stats.table_rows(&database, &table);
    let distinct = if j.right_on.len() == 1 {
        stats.column_distinct(&database, &table, &j.right_on[0])
    } else {
        None
    };
    let (mult, bounded) = match (rows, distinct) {
        (Some(r), Some(v)) => (Some(r.saturating_sub(v).saturating_add(1)), true),
        (Some(r), None) => (Some(r), false),
        (None, _) => (None, false),
    };
    Some(DimCost {
        mult,
        bounded,
        unique,
        table,
    })
}

/// Sum of intermediate-result row bounds for one join order (the final
/// join's output is the same size in every order, so it is excluded).
fn order_cost(perm: &[usize], mults: &[u64]) -> u128 {
    let mut rows: u128 = 1;
    let mut cost: u128 = 0;
    for (i, &p) in perm.iter().enumerate() {
        rows = rows.saturating_mul(mults[p] as u128);
        if i + 1 < perm.len() {
            cost = cost.saturating_add(rows);
        }
    }
    cost
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    fn heap(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, cur, out);
            if k.is_multiple_of(2) {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut cur, &mut out);
    out
}

/// Columns a dimension contributes to the join output (lowercased,
/// non-key fields), or `None` when the schema is unknown.
fn dim_nonkeys(dag: &SkillDag, j: &StarJoin, stats: &dyn PlanStats) -> Option<Vec<String>> {
    let node = dag.node(j.dim).ok()?;
    let (database, table) = match &node.call {
        SkillCall::LoadTable { database, table }
        | SkillCall::LoadTableFiltered {
            database, table, ..
        } => (database, table),
        _ => return None,
    };
    let schema = stats.table_schema(database, table)?;
    // Every right_on key must exist in the dimension schema.
    for k in &j.right_on {
        schema.field(k)?;
    }
    Some(
        schema
            .fields()
            .iter()
            .map(|f| f.name.to_ascii_lowercase())
            .filter(|f| !j.right_on.iter().any(|k| k.eq_ignore_ascii_case(f)))
            .collect(),
    )
}

/// Whether the star's written order and every permutation produce the
/// same rows in the same order and route every key to the base: all
/// left keys come from the base, no dimension column shadows another
/// or the base, and at most one dimension can fan rows out.
fn star_semantics_ok(
    star: &Star,
    base_names: Option<&Vec<String>>,
    nonkeys: &[Vec<String>],
    costs: &[DimCost],
) -> bool {
    let Some(base) = base_names else { return false };
    let base_low = lower(base);
    for j in &star.joins {
        if !j
            .left_on
            .iter()
            .all(|k| base_low.contains(&k.to_ascii_lowercase()))
        {
            return false;
        }
    }
    // Dimension payload columns must not collide with the base or each
    // other (no `_right` suffixing anywhere, in any order).
    let mut seen: BTreeSet<String> = base_low.into_iter().collect();
    for nk in nonkeys {
        for c in nk {
            if !seen.insert(c.clone()) {
                return false;
            }
        }
    }
    costs.iter().filter(|c| !c.unique).count() <= 1
}

/// Walk from the chain root through its sole consumers until an
/// operator whose output is independent of input column order
/// (`KeepColumns`, `Compute`, or a terminal `CountRows`). Intermediate
/// row-preserving steps may pass through but must be unprotected and
/// sole-consumed, since their outputs carry the permuted column order.
fn order_insensitive_downstream(
    dag: &SkillDag,
    consumers: &[Vec<NodeId>],
    protected: &[bool],
    root: NodeId,
) -> bool {
    use SkillCall::*;
    let mut cur = root;
    loop {
        let cs = &consumers[cur];
        if cs.is_empty() {
            // Nothing observes the permuted order (the root itself is
            // already known unprotected and un-targeted).
            return cur != root;
        }
        let [next] = cs[..] else { return false };
        let node = dag.node(next).expect("consumer in range");
        match &node.call {
            KeepColumns { .. } | Compute { .. } => return true,
            CountRows => {
                if consumers[next].is_empty() {
                    return true;
                }
                cur = next;
            }
            KeepRows { .. } | DropRows { .. } | Sort { .. } | Top { .. } | Limit { .. } => {
                if protected[next] {
                    return false;
                }
                cur = next;
            }
            _ => return false,
        }
    }
}

/// Pick the cheapest join order for every eligible star and swap the
/// dimension loads' calls (and each join's key tuple) in place — node
/// ids and edges never change. Written order wins ties and anything
/// the cost model cannot bound.
fn reorder_joins(
    dag: &mut SkillDag,
    protected: &[bool],
    stats: &dyn PlanStats,
    changed: &mut bool,
) {
    let consumers = consumer_lists(dag);
    let names = forward_names(dag, stats);
    let stars = collect_stars(dag, &consumers);
    for star in stars {
        let n = star.joins.len();
        // Safety conditions: every rewritten node unprotected, interior
        // results and dimensions sole-consumed, downstream insensitive
        // to the column-order change at the root.
        if star
            .joins
            .iter()
            .any(|j| protected[j.join] || protected[j.dim])
        {
            continue;
        }
        if star.joins.iter().any(|j| consumers[j.dim].len() != 1) {
            continue;
        }
        if star.joins[..n - 1]
            .iter()
            .any(|j| consumers[j.join].len() != 1)
        {
            continue;
        }
        let root = star.joins[n - 1].join;
        if !order_insensitive_downstream(dag, &consumers, protected, root) {
            continue;
        }
        let Some(costs) = star
            .joins
            .iter()
            .map(|j| dim_cost(dag, j, stats))
            .collect::<Option<Vec<_>>>()
        else {
            continue;
        };
        let Some(nonkeys) = star
            .joins
            .iter()
            .map(|j| dim_nonkeys(dag, j, stats))
            .collect::<Option<Vec<_>>>()
        else {
            continue;
        };
        if !star_semantics_ok(&star, names[star.base].as_ref(), &nonkeys, &costs) {
            continue;
        }
        let Some(mults) = costs.iter().map(|c| c.mult).collect::<Option<Vec<_>>>() else {
            continue;
        };
        let written: Vec<usize> = (0..n).collect();
        let mut best = written.clone();
        let mut best_cost = order_cost(&written, &mults);
        for perm in permutations(n) {
            let cost = order_cost(&perm, &mults);
            if cost < best_cost {
                best_cost = cost;
                best = perm;
            }
        }
        if best == written {
            continue;
        }
        let dim_calls: Vec<SkillCall> = star
            .joins
            .iter()
            .map(|j| dag.node(j.dim).expect("dim in range").call.clone())
            .collect();
        for (slot, &src) in best.iter().enumerate() {
            let j = &star.joins[slot];
            let s = &star.joins[src];
            let _ = dag.update_call(j.dim, dim_calls[src].clone());
            let _ = dag.update_call(
                j.join,
                SkillCall::Join {
                    other: s.other.clone(),
                    left_on: s.left_on.clone(),
                    right_on: s.right_on.clone(),
                    how: dc_engine::JoinType::Inner,
                },
            );
        }
        *changed = true;
    }
}

fn consumer_lists(dag: &SkillDag) -> Vec<Vec<NodeId>> {
    let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); dag.len()];
    for node in dag.nodes() {
        for &input in &node.inputs {
            consumers[input].push(node.id);
        }
    }
    consumers
}

// ---------------------------------------------------------------------
// Join-order advice (DC0207)
// ---------------------------------------------------------------------

/// One provably suboptimal written join order, for the analyzer's
/// DC0207 lint. Costs are the optimizer's interval upper bounds on
/// intermediate rows; both sides are fully statistics-backed (no
/// row-count fallbacks), so the ratio is a proof, not a guess.
#[derive(Debug, Clone)]
pub struct JoinOrderAdvice {
    /// The first join whose position differs from the best order.
    pub join: NodeId,
    /// Upper-bound cost of the order as written.
    pub written_cost: u64,
    /// Upper-bound cost of the best order.
    pub best_cost: u64,
    /// Dimension tables in written order.
    pub written_tables: Vec<String>,
    /// Dimension tables in the best order.
    pub best_tables: Vec<String>,
}

/// Statically rank every 2–4 inner-join chain's written order against
/// the best order. Unlike [`optimize_dag`]'s rewrite, this advises the
/// plan *as written* — protection and sole-consumer guards don't apply
/// because nothing is rewritten — but it only speaks when every
/// multiplier is statistics-backed.
pub fn join_order_advice(dag: &SkillDag, stats: &dyn PlanStats) -> Vec<JoinOrderAdvice> {
    let consumers = consumer_lists(dag);
    let names = forward_names(dag, stats);
    let mut advice = Vec::new();
    for star in collect_stars(dag, &consumers) {
        let n = star.joins.len();
        let Some(costs) = star
            .joins
            .iter()
            .map(|j| dim_cost(dag, j, stats))
            .collect::<Option<Vec<_>>>()
        else {
            continue;
        };
        if costs.iter().any(|c| !c.bounded) {
            continue;
        }
        let Some(base) = names[star.base].as_ref() else {
            continue;
        };
        let base_low = lower(base);
        if !star.joins.iter().all(|j| {
            j.left_on
                .iter()
                .all(|k| base_low.contains(&k.to_ascii_lowercase()))
        }) {
            continue;
        }
        let mults: Vec<u64> = costs.iter().map(|c| c.mult.unwrap_or(u64::MAX)).collect();
        let written: Vec<usize> = (0..n).collect();
        let written_cost = order_cost(&written, &mults);
        let mut best = written.clone();
        let mut best_cost = written_cost;
        for perm in permutations(n) {
            let cost = order_cost(&perm, &mults);
            if cost < best_cost {
                best_cost = cost;
                best = perm;
            }
        }
        if best_cost == 0 || written_cost < best_cost.saturating_mul(4) {
            continue;
        }
        let first_diff = best
            .iter()
            .zip(&written)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        advice.push(JoinOrderAdvice {
            join: star.joins[first_diff].join,
            written_cost: u64::try_from(written_cost).unwrap_or(u64::MAX),
            best_cost: u64::try_from(best_cost).unwrap_or(u64::MAX),
            written_tables: costs.iter().map(|c| c.table.clone()).collect(),
            best_tables: best.iter().map(|&i| costs[i].table.clone()).collect(),
        });
    }
    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{Column, JoinType, Table};
    use dc_storage::{CloudDatabase, Pricing};

    fn env_with(tables: &[(&str, Table, usize)]) -> Env {
        let mut env = Env::new();
        let mut db = CloudDatabase::new("Main", Pricing::default_cloud());
        for (name, table, block_rows) in tables {
            db.create_table_with_blocks(*name, table, *block_rows)
                .unwrap();
        }
        env.catalog.add_database(db).unwrap();
        env
    }

    fn wide_table(rows: usize) -> Table {
        Table::new(vec![
            ("k", Column::from_ints((0..rows as i64).collect())),
            ("a", Column::from_ints(vec![1; rows])),
            ("b", Column::from_ints(vec![2; rows])),
            ("c", Column::from_ints(vec![3; rows])),
        ])
        .unwrap()
    }

    #[test]
    fn projection_narrows_a_load_below_a_compute() {
        let env = env_with(&[("wide", wide_table(64), 16)]);
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let agg = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec {
                        func: dc_engine::AggFunc::Sum,
                        column: Some("a".into()),
                        output: "sum_a".into(),
                    }],
                    for_each: vec!["k".into()],
                },
                vec![load],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[agg], &[], &env).expect("rewrite applies");
        match &out.node(load).unwrap().call {
            SkillCall::LoadTableProjected { columns, .. } => {
                assert_eq!(columns, &["k".to_string(), "a".to_string()]);
            }
            other => panic!("expected projected load, got {other:?}"),
        }
    }

    #[test]
    fn target_loads_are_never_projected() {
        let env = env_with(&[("wide", wide_table(64), 16)]);
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        assert!(optimize_dag(&dag, &[load], &[], &env).is_none());
    }

    #[test]
    fn filters_hoist_below_a_join_to_the_owning_side() {
        let env = env_with(&[("wide", wide_table(64), 16), ("dims", dim_table(8), 8)]);
        let mut dag = SkillDag::new();
        let fact = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let dim = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "dims".into(),
                },
                vec![],
            )
            .unwrap();
        let join = dag
            .add(
                SkillCall::Join {
                    other: "dims".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["id".into()],
                    how: JoinType::Inner,
                },
                vec![fact, dim],
            )
            .unwrap();
        let filter = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("a").gt(Expr::lit(0)),
                },
                vec![join],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[filter], &[], &env).expect("rewrite applies");
        match &out.node(fact).unwrap().call {
            SkillCall::LoadTableProjected {
                predicate: Some(_), ..
            } => {}
            SkillCall::LoadTableFiltered { .. } => {}
            other => panic!("expected hoisted predicate on the fact load, got {other:?}"),
        }
        // The filter itself still evaluates in full.
        assert!(matches!(
            out.node(filter).unwrap().call,
            SkillCall::KeepRows { .. }
        ));
    }

    #[test]
    fn filters_never_hoist_through_outer_joins() {
        // `label IS NULL` is prunable, but prefiltering the right side
        // of a LEFT join would turn matched rows into null-padded rows
        // the upper filter then keeps (the left-join anti-join idiom).
        let env = env_with(&[("wide", wide_table(64), 16), ("dims", dim_table(8), 8)]);
        let mut dag = SkillDag::new();
        let fact = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let dim = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "dims".into(),
                },
                vec![],
            )
            .unwrap();
        let join = dag
            .add(
                SkillCall::Join {
                    other: "dims".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["id".into()],
                    how: JoinType::Left,
                },
                vec![fact, dim],
            )
            .unwrap();
        let filter = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("label").is_null(),
                },
                vec![join],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[filter], &[], &env);
        if let Some(out) = out {
            for id in [fact, dim] {
                match &out.node(id).unwrap().call {
                    SkillCall::LoadTable { .. } => {}
                    SkillCall::LoadTableProjected {
                        predicate: None, ..
                    } => {}
                    other => panic!("predicate leaked through an outer join: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn demanding_a_suffixed_column_keeps_the_shadowing_left_column() {
        // The join output has `a_right` only because the left side also
        // has `a`; dropping left `a` would emit the right column
        // unsuffixed and break the `a_right` reference downstream.
        let shadow = Table::new(vec![
            ("id", Column::from_ints((0..8).collect())),
            ("a", Column::from_ints(vec![9; 8])),
        ])
        .unwrap();
        let env = env_with(&[("wide", wide_table(64), 16), ("shadow", shadow, 8)]);
        let mut dag = SkillDag::new();
        let fact = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let dim = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "shadow".into(),
                },
                vec![],
            )
            .unwrap();
        let join = dag
            .add(
                SkillCall::Join {
                    other: "shadow".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["id".into()],
                    how: JoinType::Inner,
                },
                vec![fact, dim],
            )
            .unwrap();
        let keep = dag
            .add(
                SkillCall::KeepColumns {
                    columns: vec!["a_right".into()],
                },
                vec![join],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[keep], &[], &env).expect("rewrite applies");
        match &out.node(fact).unwrap().call {
            SkillCall::LoadTableProjected { columns, .. } => {
                assert_eq!(columns, &["k".to_string(), "a".to_string()]);
            }
            other => panic!("expected projected fact load, got {other:?}"),
        }
    }

    #[test]
    fn rename_onto_an_existing_column_keeps_the_target_alive() {
        // `rename a -> b` fails with DuplicateColumn because `b` exists;
        // projection must not drop `b` and convert that deterministic
        // failure into a silent success.
        let env = env_with(&[("wide", wide_table(64), 16)]);
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let ren = dag
            .add(
                SkillCall::RenameColumn {
                    from: "a".into(),
                    to: "b".into(),
                },
                vec![load],
            )
            .unwrap();
        let agg = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec {
                        func: dc_engine::AggFunc::Sum,
                        column: Some("b".into()),
                        output: "sum_b".into(),
                    }],
                    for_each: vec!["k".into()],
                },
                vec![ren],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[agg], &[], &env).expect("rewrite applies");
        match &out.node(load).unwrap().call {
            SkillCall::LoadTableProjected { columns, .. } => {
                assert_eq!(
                    columns,
                    &["k".to_string(), "a".to_string(), "b".to_string()]
                );
            }
            other => panic!("expected projected load, got {other:?}"),
        }
        // The common case (fresh target name) still projects tightly.
        let mut dag2 = SkillDag::new();
        let load2 = dag2
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let ren2 = dag2
            .add(
                SkillCall::RenameColumn {
                    from: "a".into(),
                    to: "z".into(),
                },
                vec![load2],
            )
            .unwrap();
        let agg2 = dag2
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec {
                        func: dc_engine::AggFunc::Sum,
                        column: Some("z".into()),
                        output: "sum_z".into(),
                    }],
                    for_each: vec!["k".into()],
                },
                vec![ren2],
            )
            .unwrap();
        let out2 = optimize_dag(&dag2, &[agg2], &[], &env).expect("rewrite applies");
        match &out2.node(load2).unwrap().call {
            SkillCall::LoadTableProjected { columns, .. } => {
                assert_eq!(columns, &["k".to_string(), "a".to_string()]);
            }
            other => panic!("expected projected load, got {other:?}"),
        }
    }

    #[test]
    fn vetoed_filters_never_merge_upstream() {
        let env = env_with(&[("wide", wide_table(16), 8)]);
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let f1 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("a").gt(Expr::lit(0)),
                },
                vec![load],
            )
            .unwrap();
        let f2 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("b").gt(Expr::lit(1)),
                },
                vec![f1],
            )
            .unwrap();
        // f2 is analyzer-vetoed: its predicate must not execute at f1
        // (nor reach the scan via f1's hoist).
        if let Some(out) = optimize_dag(&dag, &[f2], &[f2], &env) {
            let SkillCall::KeepRows { predicate } = &out.node(f1).unwrap().call else {
                panic!("expected KeepRows at f1");
            };
            let mut cols = Vec::new();
            predicate.referenced_columns(&mut cols);
            assert_eq!(cols, vec!["a".to_string()]);
            if let SkillCall::LoadTableFiltered { predicate, .. } = &out.node(load).unwrap().call {
                let mut cols = Vec::new();
                predicate.referenced_columns(&mut cols);
                assert!(
                    !cols.contains(&"b".to_string()),
                    "vetoed predicate reached the scan"
                );
            }
        }
    }

    fn dim_table(rows: usize) -> Table {
        Table::new(vec![
            ("id", Column::from_ints((0..rows as i64).collect())),
            ("label", Column::from_ints(vec![7; rows])),
        ])
        .unwrap()
    }

    fn fanout_table(rows: usize, distinct: usize) -> Table {
        Table::new(vec![
            (
                "k",
                Column::from_strs(
                    (0..rows)
                        .map(|i| format!("g{}", i % distinct))
                        .collect::<Vec<_>>(),
                )
                .dict_encode(),
            ),
            (
                "tag",
                Column::from_strs((0..rows).map(|i| ["x", "y"][i % 2]).collect::<Vec<_>>())
                    .dict_encode(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn join_order_moves_the_fanout_dimension_last() {
        let rows = 32usize;
        let fact = Table::new(vec![
            ("fk", Column::from_ints((0..rows as i64).collect())),
            (
                "gk",
                Column::from_strs((0..rows).map(|i| format!("g{}", i % 4)).collect::<Vec<_>>())
                    .dict_encode(),
            ),
            ("v", Column::from_ints(vec![1; rows])),
        ])
        .unwrap();
        let env = env_with(&[
            ("fact", fact, 8),
            ("fan", fanout_table(16, 4), 8),
            ("uni", dim_table(32), 8),
        ]);
        let mut dag = SkillDag::new();
        let base = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "fact".into(),
                },
                vec![],
            )
            .unwrap();
        let d1 = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "fan".into(),
                },
                vec![],
            )
            .unwrap();
        let j1 = dag
            .add(
                SkillCall::Join {
                    other: "fan".into(),
                    left_on: vec!["gk".into()],
                    right_on: vec!["k".into()],
                    how: JoinType::Inner,
                },
                vec![base, d1],
            )
            .unwrap();
        let d2 = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "uni".into(),
                },
                vec![],
            )
            .unwrap();
        let j2 = dag
            .add(
                SkillCall::Join {
                    other: "uni".into(),
                    left_on: vec!["fk".into()],
                    right_on: vec!["id".into()],
                    how: JoinType::Inner,
                },
                vec![j1, d2],
            )
            .unwrap();
        let count = dag.add(SkillCall::CountRows, vec![j2]).unwrap();
        let out = optimize_dag(&dag, &[count], &[], &env).expect("rewrite applies");
        // The unique dimension now joins first; the fanout moved last.
        match &out.node(j1).unwrap().call {
            SkillCall::Join { other, .. } => assert_eq!(other, "uni"),
            other => panic!("expected join, got {other:?}"),
        }
        match &out.node(d1).unwrap().call {
            SkillCall::LoadTable { table, .. } | SkillCall::LoadTableProjected { table, .. } => {
                assert_eq!(table, "uni")
            }
            other => panic!("expected load of uni, got {other:?}"),
        }
        // Advice on the written DAG flags the same star.
        let advice = join_order_advice(&dag, &env);
        assert_eq!(advice.len(), 1);
        assert!(advice[0].written_cost >= advice[0].best_cost * 4);
        assert_eq!(advice[0].best_tables, vec!["uni", "fan"]);
    }

    #[test]
    fn duplicate_loads_dedup_to_one_node() {
        let env = env_with(&[("wide", wide_table(16), 8)]);
        let mut dag = SkillDag::new();
        let l1 = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let l2 = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let cat = dag
            .add(
                SkillCall::Concat {
                    other: "self".into(),
                    remove_duplicates: false,
                },
                vec![l1, l2],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[cat], &[], &env).expect("rewrite applies");
        assert_eq!(out.node(cat).unwrap().inputs, vec![l1, l1]);
        let _ = l2;
    }

    #[test]
    fn adjacent_keeps_merge_into_a_conjunction() {
        let env = env_with(&[("wide", wide_table(16), 8)]);
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "Main".into(),
                    table: "wide".into(),
                },
                vec![],
            )
            .unwrap();
        let f1 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("a").gt(Expr::lit(0)),
                },
                vec![load],
            )
            .unwrap();
        let f2 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("b").gt(Expr::lit(1)),
                },
                vec![f1],
            )
            .unwrap();
        let out = optimize_dag(&dag, &[f2], &[], &env).expect("rewrite applies");
        let SkillCall::KeepRows { predicate } = &out.node(f1).unwrap().call else {
            panic!("expected KeepRows");
        };
        let mut cols = Vec::new();
        predicate.referenced_columns(&mut cols);
        assert!(cols.contains(&"a".to_string()) && cols.contains(&"b".to_string()));
    }

    #[test]
    fn int_blocks_unique_requires_dense_disjoint_spans() {
        let dense = |lo: i64, hi: i64| ColumnStats {
            dtype: dc_engine::DataType::Int,
            min: Some(Value::Int(lo)),
            max: Some(Value::Int(hi)),
            null_count: 0,
            row_count: (hi - lo + 1) as u64,
        };
        assert!(int_blocks_unique(&[dense(0, 9), dense(10, 19)]));
        assert!(!int_blocks_unique(&[dense(0, 9), dense(5, 14)]));
        assert!(!int_blocks_unique(&[]));
    }
}
