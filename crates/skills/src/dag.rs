//! The skill DAG.
//!
//! §2.2: "The user first creates a directed acyclic graph (DAG) of skill
//! requests ... Building this DAG does not require executing any
//! computation." Nodes are skill calls; edges are dataset dependencies.
//! Names can be bound to nodes (`Use the dataset fredgraph, version 1`),
//! which is how recipes reference earlier results.

use std::collections::HashMap;

use crate::error::{Result, SkillError};
use crate::skill::SkillCall;

/// Identifier of a node within one DAG.
pub type NodeId = usize;

/// One node: a skill call plus its input dependencies (inputs[0] is the
/// primary dataset; inputs[1] the secondary for joins/concats).
#[derive(Debug, Clone, PartialEq)]
pub struct SkillNode {
    pub id: NodeId,
    pub call: SkillCall,
    pub inputs: Vec<NodeId>,
}

/// An append-only DAG of skill calls.
///
/// Name bindings are versioned: binding `fredgraph` twice creates
/// versions 1 and 2, and `Use the dataset fredgraph, version 1` resolves
/// the first (§2.3's "Versions" sidebar in the Figure 2 editor).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkillDag {
    nodes: Vec<SkillNode>,
    names: HashMap<String, Vec<NodeId>>,
}

impl SkillDag {
    /// An empty DAG.
    pub fn new() -> SkillDag {
        SkillDag::default()
    }

    /// Append a node. Inputs must already exist (append-only ⇒ acyclic).
    pub fn add(&mut self, call: SkillCall, inputs: Vec<NodeId>) -> Result<NodeId> {
        let id = self.nodes.len();
        for &i in &inputs {
            if i >= id {
                return Err(SkillError::NodeNotFound { id: i });
            }
        }
        if call.needs_input() && inputs.is_empty() {
            return Err(SkillError::invalid(format!(
                "skill {} requires an input dataset",
                call.name()
            )));
        }
        self.nodes.push(SkillNode { id, call, inputs });
        Ok(id)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> Result<&SkillNode> {
        self.nodes.get(id).ok_or(SkillError::NodeNotFound { id })
    }

    /// All nodes in insertion (= topological) order.
    pub fn nodes(&self) -> &[SkillNode] {
        &self.nodes
    }

    /// Bind a dataset name to a node, appending a new version (later
    /// bindings shadow earlier ones for unversioned lookups).
    pub fn bind_name(&mut self, name: impl Into<String>, node: NodeId) -> Result<()> {
        let name = name.into();
        if node >= self.nodes.len() {
            return Err(SkillError::NodeNotFound { id: node });
        }
        self.names
            .entry(name.to_lowercase())
            .or_default()
            .push(node);
        Ok(())
    }

    /// Resolve a dataset name to its latest version (case-insensitive).
    pub fn resolve_name(&self, name: &str) -> Result<NodeId> {
        self.names
            .get(&name.to_lowercase())
            .and_then(|versions| versions.last())
            .copied()
            .ok_or_else(|| SkillError::DatasetNotFound {
                name: name.to_string(),
            })
    }

    /// Resolve a specific 1-based version of a dataset name.
    pub fn resolve_version(&self, name: &str, version: u64) -> Result<NodeId> {
        let versions =
            self.names
                .get(&name.to_lowercase())
                .ok_or_else(|| SkillError::DatasetNotFound {
                    name: name.to_string(),
                })?;
        versions
            .get((version.max(1) - 1) as usize)
            .copied()
            .ok_or_else(|| {
                SkillError::invalid(format!(
                    "dataset {name} has {} version(s), version {version} requested",
                    versions.len()
                ))
            })
    }

    /// Bound dataset names with their latest version (sorted for
    /// determinism).
    pub fn dataset_names(&self) -> Vec<(&str, NodeId)> {
        let mut v: Vec<(&str, NodeId)> = self
            .names
            .iter()
            .filter_map(|(k, versions)| versions.last().map(|&n| (k.as_str(), n)))
            .collect();
        v.sort();
        v
    }

    /// The transitive ancestor set of `target` (including itself), in
    /// topological order — the nodes an artifact actually depends on.
    /// This is the "which steps affect the final artifact" question at
    /// the core of slicing (§2.3).
    pub fn ancestors(&self, target: NodeId) -> Result<Vec<NodeId>> {
        self.node(target)?;
        let mut needed = vec![false; self.nodes.len()];
        let mut stack = vec![target];
        while let Some(id) = stack.pop() {
            if needed[id] {
                continue;
            }
            needed[id] = true;
            stack.extend(&self.nodes[id].inputs);
        }
        Ok((0..self.nodes.len()).filter(|&i| needed[i]).collect())
    }

    /// Replace a node's skill call in place (§2.3: "view the skill DAG
    /// directly in a graphical form and update parameters ... manually").
    /// The new call must have the same input arity class so edges stay
    /// valid.
    pub fn update_call(&mut self, id: NodeId, call: SkillCall) -> Result<()> {
        let node = self.nodes.get(id).ok_or(SkillError::NodeNotFound { id })?;
        if call.needs_input() && node.inputs.is_empty() {
            return Err(SkillError::invalid(format!(
                "skill {} requires an input dataset but node {id} has none",
                call.name()
            )));
        }
        self.nodes[id].call = call;
        Ok(())
    }

    /// Every node bound to a dataset name, across all versions. These
    /// nodes are addressable from outside the DAG (`Use the dataset`),
    /// so plan rewrites must leave their outputs untouched.
    pub fn bound_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.names.values().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Repoint `consumer`'s input edges from `from` to `to`. Used by
    /// plan-time rewrites (load dedup) that merge structurally identical
    /// producers; `to` must precede `consumer` so the topological
    /// invariant (`inputs < id`) is preserved.
    pub fn redirect_input(&mut self, consumer: NodeId, from: NodeId, to: NodeId) -> Result<()> {
        if self.nodes.get(consumer).is_none() || self.nodes.get(to).is_none() {
            return Err(SkillError::NodeNotFound {
                id: consumer.max(to),
            });
        }
        if to >= consumer {
            return Err(SkillError::invalid(format!(
                "redirect target {to} does not precede consumer {consumer}"
            )));
        }
        for input in self.nodes[consumer].inputs.iter_mut() {
            if *input == from {
                *input = to;
            }
        }
        Ok(())
    }

    /// How many consumer edges point at each node (a node feeding two
    /// inputs of one consumer counts twice). One O(edges) pass, shared
    /// by the pushdown planner and the optimizer so neither rescans the
    /// whole DAG per candidate node.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &input in &node.inputs {
                counts[input] += 1;
            }
        }
        counts
    }

    /// Render the DAG in Graphviz dot syntax (the §2.3 graphical view).
    /// Node labels are the skill names; edges carry the data flow.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph skills {\n  rankdir=LR;\n");
        for node in &self.nodes {
            out.push_str(&format!(
                "  n{} [label=\"{}: {}\", shape=box];\n",
                node.id,
                node.id,
                node.call.name()
            ));
        }
        for node in &self.nodes {
            for (slot, input) in node.inputs.iter().enumerate() {
                let style = if slot == 0 { "" } else { " [style=dashed]" };
                out.push_str(&format!("  n{input} -> n{}{style};\n", node.id));
            }
        }
        for (name, id) in self.dataset_names() {
            out.push_str(&format!(
                "  d_{name} [label=\"{name}\", shape=plaintext];\n  n{id} -> d_{name} [style=dotted];\n"
            ));
        }
        out.push_str("}\n");
        out
    }

    /// The linear primary chain ending at `target` (follow `inputs[0]`
    /// back to a source), in source→target order.
    pub fn primary_chain(&self, target: NodeId) -> Result<Vec<NodeId>> {
        self.node(target)?;
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(&prev) = self.nodes[cur].inputs.first() {
            chain.push(prev);
            cur = prev;
        }
        chain.reverse();
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Expr;

    fn linear_dag() -> (SkillDag, NodeId) {
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "t".into(),
                },
                vec![],
            )
            .unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(1i64)),
                },
                vec![load],
            )
            .unwrap();
        let l = dag.add(SkillCall::Limit { n: 10 }, vec![f]).unwrap();
        (dag, l)
    }

    #[test]
    fn append_only_construction() {
        let (dag, last) = linear_dag();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.node(last).unwrap().inputs, vec![1]);
        assert!(dag.node(99).is_err());
    }

    #[test]
    fn forward_references_rejected() {
        let mut dag = SkillDag::new();
        assert!(dag.add(SkillCall::Limit { n: 1 }, vec![5]).is_err());
    }

    #[test]
    fn sources_need_no_input_but_transforms_do() {
        let mut dag = SkillDag::new();
        assert!(dag
            .add(
                SkillCall::LoadFile {
                    path: "a.csv".into()
                },
                vec![]
            )
            .is_ok());
        assert!(dag.add(SkillCall::Limit { n: 1 }, vec![]).is_err());
    }

    #[test]
    fn name_binding_case_insensitive() {
        let (mut dag, last) = linear_dag();
        dag.bind_name("FredGraph", last).unwrap();
        assert_eq!(dag.resolve_name("fredgraph").unwrap(), last);
        assert_eq!(dag.resolve_name("FREDGRAPH").unwrap(), last);
        assert!(dag.resolve_name("other").is_err());
        assert!(dag.bind_name("x", 99).is_err());
    }

    #[test]
    fn versioned_bindings_resolve_by_index() {
        let (mut dag, last) = linear_dag();
        dag.bind_name("d", 0).unwrap();
        dag.bind_name("d", last).unwrap();
        assert_eq!(dag.resolve_name("d").unwrap(), last); // latest wins
        assert_eq!(dag.resolve_version("d", 1).unwrap(), 0);
        assert_eq!(dag.resolve_version("d", 2).unwrap(), last);
        let err = dag.resolve_version("d", 3).unwrap_err();
        assert!(err.to_string().contains("2 version(s)"));
        assert!(dag.resolve_version("missing", 1).is_err());
    }

    #[test]
    fn ancestors_exclude_dead_branches() {
        let (mut dag, last) = linear_dag();
        // Dead branch off the load node.
        let load = 0;
        let dead = dag
            .add(
                SkillCall::Sort {
                    keys: vec![("x".into(), true)],
                },
                vec![load],
            )
            .unwrap();
        let anc = dag.ancestors(last).unwrap();
        assert_eq!(anc, vec![0, 1, 2]);
        assert!(!anc.contains(&dead));
    }

    #[test]
    fn ancestors_follow_secondary_inputs() {
        let (mut dag, last) = linear_dag();
        let other = dag
            .add(
                SkillCall::LoadFile {
                    path: "b.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let join = dag
            .add(
                SkillCall::Join {
                    other: "b".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["k".into()],
                    how: dc_engine::JoinType::Inner,
                },
                vec![last, other],
            )
            .unwrap();
        let anc = dag.ancestors(join).unwrap();
        assert!(anc.contains(&other));
        assert_eq!(anc.len(), 5);
    }

    #[test]
    fn update_call_edits_parameters_in_place() {
        let (mut dag, last) = linear_dag();
        dag.update_call(last, SkillCall::Limit { n: 99 }).unwrap();
        assert_eq!(dag.node(last).unwrap().call, SkillCall::Limit { n: 99 });
        // Arity class is enforced: a source cannot replace a transform.
        assert!(dag
            .update_call(
                0,
                SkillCall::Limit { n: 1 } // needs an input; node 0 has none
            )
            .is_err());
        assert!(dag.update_call(99, SkillCall::CountRows).is_err());
    }

    #[test]
    fn dot_rendering_covers_nodes_edges_and_names() {
        let (mut dag, last) = linear_dag();
        dag.bind_name("result", last).unwrap();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph skills {"));
        assert!(dot.contains("LoadTable"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("d_result"));
        assert_eq!(dot.matches("shape=box").count(), 3);
    }

    #[test]
    fn primary_chain_order() {
        let (dag, last) = linear_dag();
        assert_eq!(dag.primary_chain(last).unwrap(), vec![0, 1, 2]);
    }
}
