//! Executing planned tasks (§2.2).
//!
//! "Most execution tasks within DataChat are implemented in both SQL and
//! Python, separately. This approach allows the system to use the
//! appropriate language for a variety of tasks." [`run_planned`] executes
//! the planner's output: consolidated SQL tasks run through the SQL
//! executor against the environment's catalog (one flattened query per
//! task, as the database would see it); everything else runs through the
//! skill interpreter. Tests assert both routes agree with plain
//! node-by-node execution.

use dc_engine::Table;
use dc_sql::{ExecStats, TableProvider};
use dc_storage::ScanOptions;

use crate::dag::{NodeId, SkillDag};
use crate::env::Env;
use crate::error::{Result, SkillError};
use crate::exec::execute_call;
use crate::output::SkillOutput;
use crate::planner::{plan, ExecutionTask};

/// Statistics from one planned execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlannedStats {
    /// Number of execution tasks run.
    pub tasks: usize,
    /// Logical skill calls covered by consolidated SQL.
    pub calls_in_sql: usize,
    /// SQL executor counters (query blocks, materialized rows).
    pub sql_blocks: u64,
    pub sql_rows_materialized: u64,
}

/// Table provider over one database of the environment's catalog
/// (scans are metered, exactly like a warehouse would charge).
struct DatabaseProvider<'e> {
    env: &'e Env,
    database: String,
}

impl TableProvider for DatabaseProvider<'_> {
    fn get_table(&self, name: &str) -> dc_sql::Result<Table> {
        let db = self
            .env
            .catalog
            .database(&self.database)
            .map_err(|e| dc_sql::SqlError::provider(e, false))?;
        let (t, _) = db.scan(name, &ScanOptions::full()).map_err(|e| {
            // Keep the not-found shape the planner tests rely on, but
            // preserve every other failure (including transients) as a
            // live source instead of a flattened string.
            if matches!(e, dc_storage::StorageError::TableNotFound { .. }) {
                dc_sql::SqlError::TableNotFound {
                    name: name.to_string(),
                }
            } else {
                let retryable = e.is_retryable();
                dc_sql::SqlError::provider(e, retryable)
            }
        })?;
        Ok(t)
    }
}

/// Execute `target` via the planner: consolidated SQL where possible,
/// the interpreter elsewhere. Returns the final output plus stats.
///
/// Supported shape: the target's *primary chain* (what [`plan`] covers).
/// Multi-input skills along the chain fall back to interpreter tasks
/// whose secondary inputs are executed node-by-node.
pub fn run_planned(
    dag: &SkillDag,
    target: NodeId,
    env: &mut Env,
) -> Result<(SkillOutput, PlannedStats)> {
    let tasks = plan(dag, target)?;
    let mut stats = PlannedStats {
        tasks: tasks.len(),
        ..PlannedStats::default()
    };
    let mut current: Option<Table> = None;
    let mut last_output: Option<SkillOutput> = None;

    for task in &tasks {
        match task {
            ExecutionTask::Sql {
                database,
                query,
                covers,
            } => {
                stats.calls_in_sql += covers.len();
                let mut sql_stats = ExecStats::default();
                let table = {
                    let provider = DatabaseProvider {
                        env,
                        database: database.clone(),
                    };
                    dc_sql::execute(query, &provider, &mut sql_stats)?
                };
                stats.sql_blocks += sql_stats.query_blocks;
                stats.sql_rows_materialized += sql_stats.rows_materialized;
                last_output = Some(SkillOutput::Table(table.clone()));
                current = Some(table);
            }
            ExecutionTask::Skill { node } => {
                let node = dag.node(*node)?;
                // Secondary inputs (joins/concats) run node-by-node.
                let mut input_tables: Vec<std::sync::Arc<Table>> = Vec::new();
                if node.call.needs_input() {
                    let first = current.clone().ok_or_else(|| {
                        SkillError::invalid(format!(
                            "{} has no upstream result in the plan",
                            node.call.name()
                        ))
                    })?;
                    input_tables.push(std::sync::Arc::new(first));
                }
                for &extra in node.inputs.iter().skip(1) {
                    let mut ex = crate::exec::Executor::new();
                    input_tables.push(ex.table_of(dag, extra, env)?);
                }
                let refs: Vec<&Table> = input_tables.iter().map(|t| t.as_ref()).collect();
                let out = execute_call(&node.call, &refs, env)?;
                if let Some(t) = out.as_table() {
                    if node.call.transforms_data() {
                        current = Some(t.clone());
                    }
                } else if !node.call.needs_input() {
                    current = None;
                }
                last_output = Some(out);
            }
        }
    }
    let output = last_output.ok_or_else(|| SkillError::invalid("empty plan"))?;
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::skill::SkillCall;
    use dc_engine::{AggFunc, AggSpec, Column, Expr};
    use dc_storage::{CloudDatabase, Pricing};

    fn env() -> Env {
        let mut env = Env::new();
        let n = 10_000usize;
        let t = Table::new(vec![
            ("x", Column::from_ints((0..n as i64).collect())),
            (
                "k",
                Column::from_strs((0..n).map(|i| format!("g{}", i % 7)).collect::<Vec<_>>()),
            ),
        ])
        .unwrap();
        let mut db = CloudDatabase::new("db", Pricing::default_cloud());
        db.create_table("events", &t).unwrap();
        env.catalog.add_database(db).unwrap();
        env
    }

    fn chain() -> (SkillDag, NodeId) {
        let mut dag = SkillDag::new();
        let l = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").ge(Expr::lit(100i64)),
                },
                vec![l],
            )
            .unwrap();
        let c = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![AggSpec::new(AggFunc::Count, "x", "n")],
                    for_each: vec!["k".into()],
                },
                vec![f],
            )
            .unwrap();
        let s = dag
            .add(
                SkillCall::Sort {
                    keys: vec![("n".into(), false), ("k".into(), true)],
                },
                vec![c],
            )
            .unwrap();
        (dag, s)
    }

    #[test]
    fn planned_sql_route_matches_interpreter() {
        let (dag, target) = chain();
        let mut env1 = env();
        let (planned, stats) = run_planned(&dag, target, &mut env1).unwrap();
        assert_eq!(stats.tasks, 1, "whole chain consolidates to one SQL task");
        assert_eq!(stats.calls_in_sql, 4);

        let mut env2 = env();
        let mut ex = Executor::new();
        let interpreted = ex.run(&dag, target, &mut env2).unwrap();
        assert_eq!(
            planned.as_table().unwrap(),
            interpreted.as_table().unwrap(),
            "SQL and interpreter routes must agree"
        );
    }

    #[test]
    fn planned_route_handles_ml_breaks() {
        let mut dag = SkillDag::new();
        let l = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").lt(Expr::lit(500i64)),
                },
                vec![l],
            )
            .unwrap();
        let o = dag
            .add(
                SkillCall::DetectOutliers {
                    column: "x".into(),
                    method: dc_ml::OutlierMethod::default_iqr(),
                },
                vec![f],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 7 }, vec![o]).unwrap();

        let mut env1 = env();
        let (planned, stats) = run_planned(&dag, lim, &mut env1).unwrap();
        assert!(stats.tasks >= 3, "SQL run + ML task + trailing limit");
        let mut env2 = env();
        let mut ex = Executor::new();
        let interpreted = ex.run(&dag, lim, &mut env2).unwrap();
        assert_eq!(planned.as_table().unwrap(), interpreted.as_table().unwrap());
    }

    #[test]
    fn planned_join_uses_secondary_inputs() {
        let mut dag = SkillDag::new();
        let l = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let other = dag
            .add(
                SkillCall::LoadTable {
                    database: "db".into(),
                    table: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let j = dag
            .add(
                SkillCall::Join {
                    other: "events2".into(),
                    left_on: vec!["x".into()],
                    right_on: vec!["x".into()],
                    how: dc_engine::JoinType::Inner,
                },
                vec![l, other],
            )
            .unwrap();
        let mut env1 = env();
        let (planned, _) = run_planned(&dag, j, &mut env1).unwrap();
        assert_eq!(planned.as_table().unwrap().num_rows(), 10_000);
    }

    #[test]
    fn sql_route_is_metered_like_any_scan() {
        let (dag, target) = chain();
        let mut env1 = env();
        run_planned(&dag, target, &mut env1).unwrap();
        assert!(
            env1.catalog.database("db").unwrap().meter().queries() >= 1,
            "the consolidated query still pays for its base scan"
        );
    }
}
