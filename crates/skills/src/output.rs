//! Skill outputs — the artifacts of §2.3.

use dc_engine::stats::ColumnSummary;
use dc_engine::Table;
use dc_ml::Model;
use dc_viz::ChartSpec;

use crate::error::{Result, SkillError};

/// What a skill produced. Non-table artifacts (charts, models, text)
/// leave the data lineage untouched: downstream skills keep operating on
/// the producing node's input table.
#[derive(Debug, Clone, PartialEq)]
pub enum SkillOutput {
    Table(Table),
    Charts(Vec<ChartSpec>),
    Model(Model),
    Summaries(Vec<ColumnSummary>),
    Text(String),
}

impl SkillOutput {
    /// Short kind name for error messages and artifact listings.
    pub fn kind(&self) -> &'static str {
        match self {
            SkillOutput::Table(_) => "table",
            SkillOutput::Charts(_) => "charts",
            SkillOutput::Model(_) => "model",
            SkillOutput::Summaries(_) => "summaries",
            SkillOutput::Text(_) => "text",
        }
    }

    /// Extract the table, erroring otherwise.
    pub fn into_table(self) -> Result<Table> {
        match self {
            SkillOutput::Table(t) => Ok(t),
            other => Err(SkillError::WrongOutputKind {
                expected: "table".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Borrow the table if this is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            SkillOutput::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Borrow the chart specs if present.
    pub fn as_charts(&self) -> Option<&[ChartSpec]> {
        match self {
            SkillOutput::Charts(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    #[test]
    fn kind_and_extraction() {
        let t = Table::new(vec![("x", Column::from_ints(vec![1]))]).unwrap();
        let out = SkillOutput::Table(t.clone());
        assert_eq!(out.kind(), "table");
        assert_eq!(out.as_table().unwrap(), &t);
        assert_eq!(out.into_table().unwrap(), t);
        let text = SkillOutput::Text("hi".into());
        assert!(text.as_table().is_none());
        assert!(matches!(
            text.into_table(),
            Err(SkillError::WrongOutputKind { .. })
        ));
    }
}
