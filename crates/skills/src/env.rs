//! The execution environment skills run against.
//!
//! Bundles everything outside the DAG itself: the cloud-database catalog,
//! the snapshot store, a virtual file/URL system (this reproduction runs
//! offline — `Load data from the URL ...` resolves against registered
//! fixtures), trained models, and the semantic-layer phrase definitions
//! created by the `Define` skill.

use std::collections::HashMap;
use std::sync::Arc;

use dc_engine::Table;
use dc_ml::Model;
use dc_storage::{CancelToken, Catalog, ScanReceipt, SnapshotStore};

use crate::cache::MaterializedCache;
use crate::error::{Result, SkillError};

/// Running totals of storage-scan traffic for one environment.
///
/// Every table scan a skill performs adds its receipt here; the
/// resilient executor snapshots the tally around each node to attribute
/// bytes (scanned and zone-map-pruned) per node in its report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanTally {
    /// Bytes charged by scans so far.
    pub bytes_scanned: u64,
    /// Bytes zone-map pruning avoided charging so far.
    pub bytes_pruned: u64,
}

impl ScanTally {
    /// Fold one scan receipt into the totals.
    pub fn record(&mut self, receipt: &ScanReceipt) {
        self.bytes_scanned += receipt.bytes_scanned;
        self.bytes_pruned += receipt.bytes_pruned;
    }

    /// The traffic that happened after `earlier` was captured.
    pub fn delta_since(&self, earlier: ScanTally) -> ScanTally {
        ScanTally {
            bytes_scanned: self.bytes_scanned.saturating_sub(earlier.bytes_scanned),
            bytes_pruned: self.bytes_pruned.saturating_sub(earlier.bytes_pruned),
        }
    }
}

/// Mutable world state for skill execution.
#[derive(Debug, Default)]
pub struct Env {
    /// Cloud databases.
    pub catalog: Catalog,
    /// The fixed-cost local snapshot store.
    pub snapshots: SnapshotStore,
    /// Cooperative-cancellation handle threaded into storage scans. The
    /// resilient executor arms it with each node's wall-clock budget;
    /// unarmed it never fires.
    pub cancel: CancelToken,
    /// Scan-traffic totals across every table load this environment ran.
    pub scan_tally: ScanTally,
    /// Cross-session materialized sub-DAG cache (tier two above each
    /// executor's per-run cache). `None` (the default) disables sharing;
    /// the platform installs one handle here for every session it hosts.
    /// All environments sharing a handle must view the same logical
    /// catalog — version-salted keys handle mutation, not divergence.
    pub shared_cache: Option<Arc<MaterializedCache>>,
    /// Who shared-cache traffic is attributed to. A serving layer sets
    /// this to the tenant name before running a job so
    /// [`MaterializedCache`] per-tenant stats know which tenant's probes
    /// hit and how many scan bytes each hit saved. `None` (the default)
    /// books traffic under the aggregate counters only.
    pub attribution: Option<String>,
    /// Out-of-core memory context: a [`MemContext`] carries the memory
    /// governor, spill directory, spill metrics and fault hooks. `None`
    /// (the default) means unbounded in-memory execution — join,
    /// group-by and sort never spill. The resilient executor installs
    /// one when [`crate::resilient::ExecPolicy::mem_budget`] is set.
    ///
    /// [`MemContext`]: dc_engine::MemContext
    pub memory: Option<Arc<dc_engine::MemContext>>,
    /// Virtual filesystem: path → CSV text.
    files: HashMap<String, String>,
    /// Virtual network: URL → CSV text.
    urls: HashMap<String, String>,
    /// Trained models by name.
    models: HashMap<String, Model>,
    /// Semantic-layer phrase definitions (`Define` skill).
    definitions: HashMap<String, String>,
    /// Saved artifacts' tabular payloads by name (the collab layer adds
    /// richer artifact metadata on top).
    saved: HashMap<String, Table>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Register a CSV fixture for `LoadFile`.
    pub fn add_file(&mut self, path: impl Into<String>, csv_text: impl Into<String>) {
        self.files.insert(path.into(), csv_text.into());
    }

    /// Register a CSV fixture for `LoadUrl`.
    pub fn add_url(&mut self, url: impl Into<String>, csv_text: impl Into<String>) {
        self.urls.insert(url.into(), csv_text.into());
    }

    /// Fetch a file fixture.
    pub fn file(&self, path: &str) -> Result<&str> {
        self.files
            .get(path)
            .map(|s| s.as_str())
            .ok_or_else(|| SkillError::SourceNotFound {
                name: path.to_string(),
            })
    }

    /// All registered file fixtures, sorted by path.
    pub fn files(&self) -> Vec<(&str, &str)> {
        let mut v: Vec<(&str, &str)> = self
            .files
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        v.sort();
        v
    }

    /// All registered URL fixtures, sorted by URL.
    pub fn urls(&self) -> Vec<(&str, &str)> {
        let mut v: Vec<(&str, &str)> = self
            .urls
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        v.sort();
        v
    }

    /// Fetch a URL fixture.
    pub fn url(&self, url: &str) -> Result<&str> {
        self.urls
            .get(url)
            .map(|s| s.as_str())
            .ok_or_else(|| SkillError::SourceNotFound {
                name: url.to_string(),
            })
    }

    /// Store a trained model (replacing any same-named model).
    pub fn put_model(&mut self, model: Model) {
        self.models.insert(model.name.clone(), model);
    }

    /// Fetch a model.
    pub fn model(&self, name: &str) -> Result<&Model> {
        self.models
            .get(name)
            .ok_or_else(|| SkillError::ModelNotFound {
                name: name.to_string(),
            })
    }

    /// Model names (sorted).
    pub fn model_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.models.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// All trained models, sorted by name.
    pub fn models(&self) -> Vec<&Model> {
        let mut v: Vec<&Model> = self.models.values().collect();
        v.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Record a `Define` phrase.
    pub fn define(&mut self, phrase: impl Into<String>, expansion: impl Into<String>) {
        self.definitions
            .insert(phrase.into().to_lowercase(), expansion.into());
    }

    /// Look up a defined phrase (case-insensitive).
    pub fn definition(&self, phrase: &str) -> Option<&str> {
        self.definitions
            .get(&phrase.to_lowercase())
            .map(|s| s.as_str())
    }

    /// All phrase definitions (sorted by phrase).
    pub fn definitions(&self) -> Vec<(&str, &str)> {
        let mut v: Vec<(&str, &str)> = self
            .definitions
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        v.sort();
        v
    }

    /// Persist a saved artifact's table payload.
    pub fn save_table(&mut self, name: impl Into<String>, table: Table) {
        self.saved.insert(name.into(), table);
    }

    /// All saved artifact tables, sorted by name.
    pub fn saved_tables(&self) -> Vec<(&str, &Table)> {
        let mut v: Vec<(&str, &Table)> = self.saved.iter().map(|(k, v)| (k.as_str(), v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Fetch a saved artifact's table payload.
    pub fn saved_table(&self, name: &str) -> Result<&Table> {
        self.saved
            .get(name)
            .ok_or_else(|| SkillError::DatasetNotFound {
                name: name.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_and_url_fixtures() {
        let mut env = Env::new();
        env.add_file("data.csv", "a\n1\n");
        env.add_url("https://example.com/x.csv", "b\n2\n");
        assert_eq!(env.file("data.csv").unwrap(), "a\n1\n");
        assert!(env.file("missing.csv").is_err());
        assert!(env.url("https://example.com/x.csv").is_ok());
        assert!(env.url("https://other").is_err());
    }

    #[test]
    fn definitions_case_insensitive() {
        let mut env = Env::new();
        env.define("Successful Purchases", "PurchaseStatus = 'Successful'");
        assert_eq!(
            env.definition("successful purchases").unwrap(),
            "PurchaseStatus = 'Successful'"
        );
        assert!(env.definition("other").is_none());
        assert_eq!(env.definitions().len(), 1);
    }

    #[test]
    fn models_roundtrip() {
        let mut env = Env::new();
        assert!(env.model("m").is_err());
        let t = dc_engine::Table::new(vec![
            ("x", dc_engine::Column::from_ints((0..10).collect())),
            (
                "y",
                dc_engine::Column::from_floats((0..10).map(|i| i as f64).collect()),
            ),
        ])
        .unwrap();
        let m =
            dc_ml::train_model(&t, "m", "y", &["x".to_string()], dc_ml::MlMethod::Auto).unwrap();
        env.put_model(m);
        assert!(env.model("m").is_ok());
        assert_eq!(env.model_names(), vec!["m"]);
    }
}
