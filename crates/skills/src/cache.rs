//! Cross-session materialized sub-DAG cache.
//!
//! Every [`crate::exec::Executor`] keeps a per-run structural cache, but
//! that cache is born empty and dies with the executor — N collaborators
//! asking overlapping questions against the same catalog recompute the
//! shared plan prefixes N times. The [`MaterializedCache`] is the
//! cross-session tier: a size-bounded, thread-safe store of materialized
//! sub-DAG results, keyed by a *version-addressable* structural hash and
//! handed to executors through [`crate::env::Env::shared_cache`].
//!
//! ## Keying and invalidation
//!
//! Executors only publish (and probe) entries whose whole ancestor cone
//! is version-addressable: pure transforms over `LoadTable` /
//! `LoadTableFiltered` / `UseSnapshot` leaves. Each leaf's call
//! signature is salted with the source's current storage version
//! (`CloudDatabase::table_version`, `SnapshotStore::snapshot_version`),
//! and a node's [`SharedKey`] hashes its salted call together with its
//! inputs' keys — so a `create_table`, `drop_table`, or snapshot write
//! changes the leaf key and every ancestor key with it. Stale entries
//! are never *served*; they simply stop being reachable and age out
//! under eviction pressure.
//!
//! Side-effecting or environment-reading nodes (model training, SQL,
//! artifact saves, file/URL loads...) are never shared: replaying their
//! result from a cache would skip the side effect that other sessions
//! rely on. Degraded (block-sampled) results are excluded by the
//! executor before admission — see `Executor::finish`.
//!
//! ## Eviction
//!
//! Cost-aware: each entry records the scan footprint
//! (`bytes_scanned + bytes_pruned`) its recomputation would charge, and
//! eviction drops the entry with the lowest footprint **per resident
//! byte** first (ties broken LRU). A small aggregate that took a
//! terabyte of scans to produce is the last thing to go; a huge raw
//! load that was cheap per byte goes first.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use dc_engine::Table;

use crate::output::SkillOutput;

/// Globally stable structural identity of a version-addressable sub-DAG.
///
/// Unlike [`crate::exec::SubDagId`] (dense ids local to one executor's
/// interner), a `SharedKey` is a 128-bit structural hash that two
/// independent executors compute identically for the same sub-DAG over
/// the same storage versions — which is what lets them meet in this
/// cache.
pub type SharedKey = u128;

/// Per-tenant slice of the cache counters, keyed by the attribution
/// string executors carry in [`crate::env::Env::attribution`]. Lets a
/// serving layer answer "whose queries is this cache actually helping"
/// without guessing from aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Probes by this tenant that found a live entry.
    pub hits: u64,
    /// Probes by this tenant that found nothing.
    pub misses: u64,
    /// Entries this tenant's executions admitted.
    pub insertions: u64,
    /// Scan footprint this tenant's hits avoided re-charging.
    pub bytes_saved: u64,
}

/// One cache hit: the node output, the downstream-facing table (shared,
/// zero-copy), and the scan footprint the hit avoided recomputing.
#[derive(Debug, Clone)]
pub struct CacheHit {
    pub output: SkillOutput,
    pub table: Arc<Table>,
    /// `bytes_scanned + bytes_pruned` recomputing this sub-DAG would
    /// have charged.
    pub footprint_bytes: u64,
}

/// Aggregate counters, snapshotted by [`MaterializedCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that found a live entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Entries admitted (including replacements).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Admissions refused because the entry alone exceeds capacity.
    pub rejected: u64,
    /// Total scan footprint served from hits — bytes of storage traffic
    /// the cache absorbed instead of the catalog.
    pub bytes_saved: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry {
    output: SkillOutput,
    table: Arc<Table>,
    footprint: u64,
    resident: u64,
    last_used: u64,
}

impl Entry {
    /// Eviction value: recompute footprint per resident byte. Compared
    /// via `f64` — precision loss only matters when two scores are
    /// within rounding of each other, where either victim is fine.
    fn score(&self) -> f64 {
        self.footprint as f64 / self.resident.max(1) as f64
    }
}

struct Inner {
    entries: HashMap<SharedKey, Entry>,
    used: u64,
    /// Logical clock for LRU tie-breaking.
    clock: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    rejected: u64,
    bytes_saved: u64,
    /// Attributed counters, one slice per tenant that ever probed or
    /// admitted with an attribution set.
    per_tenant: BTreeMap<String, TenantCacheStats>,
}

impl Inner {
    fn tenant(&mut self, who: &str) -> &mut TenantCacheStats {
        self.per_tenant.entry(who.to_string()).or_default()
    }
}

/// The shared, size-bounded, thread-safe materialized-result store.
pub struct MaterializedCache {
    inner: Mutex<Inner>,
    capacity_bytes: u64,
}

impl std::fmt::Debug for MaterializedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("MaterializedCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &s)
            .finish()
    }
}

impl Default for MaterializedCache {
    fn default() -> Self {
        MaterializedCache::new(MaterializedCache::DEFAULT_CAPACITY)
    }
}

impl MaterializedCache {
    /// Default capacity: 256 MiB of materialized results.
    pub const DEFAULT_CAPACITY: u64 = 256 * 1024 * 1024;

    /// A cache bounded at `capacity_bytes` of resident results.
    pub fn new(capacity_bytes: u64) -> MaterializedCache {
        MaterializedCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                used: 0,
                clock: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                rejected: 0,
                bytes_saved: 0,
                per_tenant: BTreeMap::new(),
            }),
            capacity_bytes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means some thread panicked mid-update of
        // the counters; the map itself is always left consistent.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Probe for `key`. A hit hands back the stored output plus the
    /// downstream-facing table as a shared `Arc` — a pointer copy of the
    /// resident allocation, never a data copy.
    pub fn get(&self, key: SharedKey) -> Option<CacheHit> {
        self.get_as(key, None)
    }

    /// [`MaterializedCache::get`] with the probe attributed to a tenant,
    /// so [`MaterializedCache::tenant_stats`] can report per-tenant hit
    /// rates and bytes saved.
    pub fn get_as(&self, key: SharedKey, who: Option<&str>) -> Option<CacheHit> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = clock;
                let hit = CacheHit {
                    output: e.output.clone(),
                    table: Arc::clone(&e.table),
                    footprint_bytes: e.footprint,
                };
                inner.hits += 1;
                inner.bytes_saved += hit.footprint_bytes;
                if let Some(who) = who {
                    let t = inner.tenant(who);
                    t.hits += 1;
                    t.bytes_saved += hit.footprint_bytes;
                }
                Some(hit)
            }
            None => {
                inner.misses += 1;
                if let Some(who) = who {
                    inner.tenant(who).misses += 1;
                }
                None
            }
        }
    }

    /// Admit a result under `key`, evicting lowest-value entries
    /// (footprint per resident byte, LRU tie-break) until it fits. An
    /// entry larger than the whole capacity is refused. Re-admitting an
    /// existing key replaces it.
    ///
    /// Callers are responsible for only admitting authoritative results:
    /// the executor never calls this for degraded (block-sampled)
    /// outputs or for non-version-addressable sub-DAGs.
    pub fn admit(&self, key: SharedKey, output: SkillOutput, table: Arc<Table>, footprint: u64) {
        self.admit_as(key, output, table, footprint, None)
    }

    /// [`MaterializedCache::admit`] with the insertion attributed to a
    /// tenant for [`MaterializedCache::tenant_stats`].
    pub fn admit_as(
        &self,
        key: SharedKey,
        output: SkillOutput,
        table: Arc<Table>,
        footprint: u64,
        who: Option<&str>,
    ) {
        let resident = (table.byte_size() as u64)
            + match &output {
                // The flow table usually aliases the output table's data
                // shape; counting both is deliberately conservative.
                SkillOutput::Table(t) => t.byte_size() as u64,
                _ => 64,
            };
        if resident > self.capacity_bytes {
            self.lock().rejected += 1;
            return;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.remove(&key) {
            inner.used -= old.resident;
        }
        while inner.used + resident > self.capacity_bytes {
            // Victim: lowest footprint-per-byte; oldest on ties.
            let victim = inner
                .entries
                .iter()
                .min_by(|(_, a), (_, b)| {
                    a.score()
                        .partial_cmp(&b.score())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.last_used.cmp(&b.last_used))
                })
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = inner.entries.remove(&k).expect("victim exists");
                    inner.used -= e.resident;
                    inner.evictions += 1;
                }
                None => break,
            }
        }
        inner.used += resident;
        inner.insertions += 1;
        if let Some(who) = who {
            inner.tenant(who).insertions += 1;
        }
        inner.entries.insert(
            key,
            Entry {
                output,
                table,
                footprint,
                resident,
                last_used: clock,
            },
        );
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters keep accumulating).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.used = 0;
    }

    /// Snapshot the attributed counters: one slice per tenant that ever
    /// probed or admitted with an attribution set, sorted by tenant name.
    pub fn tenant_stats(&self) -> Vec<(String, TenantCacheStats)> {
        self.lock()
            .per_tenant
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// One tenant's attributed counters (zeroes when the tenant never
    /// touched the cache).
    pub fn stats_for(&self, who: &str) -> TenantCacheStats {
        self.lock().per_tenant.get(who).copied().unwrap_or_default()
    }

    /// Snapshot the aggregate counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            rejected: inner.rejected,
            bytes_saved: inner.bytes_saved,
            resident_bytes: inner.used,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Column;

    fn table(n: usize) -> Arc<Table> {
        Arc::new(Table::new(vec![("v", Column::from_ints((0..n as i64).collect()))]).unwrap())
    }

    fn entry(n: usize) -> (SkillOutput, Arc<Table>) {
        let t = table(n);
        (SkillOutput::Table(t.as_ref().clone()), t)
    }

    #[test]
    fn get_after_admit_is_zero_copy() {
        let cache = MaterializedCache::new(1 << 20);
        let (out, t) = entry(100);
        cache.admit(1, out, Arc::clone(&t), 800);
        let hit = cache.get(1).expect("hit");
        assert!(Arc::ptr_eq(&hit.table, &t));
        assert_eq!(hit.footprint_bytes, 800);
        assert!(cache.get(2).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.bytes_saved, 800);
    }

    #[test]
    fn eviction_prefers_high_footprint_per_byte() {
        // Capacity fits roughly two of the three entries.
        let (out, t) = entry(1000);
        let resident = 2 * t.byte_size() as u64;
        let cache = MaterializedCache::new(resident * 2 + resident / 2);
        // Entry 1: huge footprint per byte (expensive to recompute).
        cache.admit(1, out, t, 1 << 40);
        // Entry 2: cheap per byte.
        let (out, t) = entry(1000);
        cache.admit(2, out, t, 1);
        // Entry 3 forces one eviction; the cheap entry 2 must go.
        let (out, t) = entry(1000);
        cache.admit(3, out, t, 1 << 30);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_breaks_footprint_ties() {
        let (out, t) = entry(1000);
        let resident = 2 * t.byte_size() as u64;
        let cache = MaterializedCache::new(resident * 2 + resident / 2);
        cache.admit(1, out, t, 500);
        let (out, t) = entry(1000);
        cache.admit(2, out, t, 500);
        // Touch 1 so 2 becomes the LRU victim among equal scores.
        cache.get(1);
        let (out, t) = entry(1000);
        cache.admit(3, out, t, 500);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn oversized_entry_rejected() {
        let cache = MaterializedCache::new(16);
        let (out, t) = entry(10_000);
        cache.admit(1, out, t, 999);
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn readmit_replaces_without_leaking_bytes() {
        let cache = MaterializedCache::new(1 << 20);
        let (out, t) = entry(100);
        cache.admit(1, out, t, 10);
        let used = cache.stats().resident_bytes;
        let (out, t) = entry(100);
        cache.admit(1, out, t, 20);
        assert_eq!(cache.stats().resident_bytes, used);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1).unwrap().footprint_bytes, 20);
    }

    #[test]
    fn per_tenant_attribution_splits_counters() {
        let cache = MaterializedCache::new(1 << 20);
        let (out, t) = entry(100);
        cache.admit_as(1, out, t, 640, Some("ann"));
        assert!(cache.get_as(1, Some("bob")).is_some());
        assert!(cache.get_as(2, Some("bob")).is_none());
        assert!(cache.get_as(1, Some("ann")).is_some());
        // Unattributed traffic lands only in the aggregate counters.
        assert!(cache.get(1).is_some());
        let ann = cache.stats_for("ann");
        let bob = cache.stats_for("bob");
        assert_eq!((ann.hits, ann.misses, ann.insertions), (1, 0, 1));
        assert_eq!(ann.bytes_saved, 640);
        assert_eq!((bob.hits, bob.misses, bob.insertions), (1, 1, 0));
        assert_eq!(bob.bytes_saved, 640);
        assert_eq!(cache.stats_for("carol"), TenantCacheStats::default());
        let all = cache.stats();
        assert_eq!((all.hits, all.misses), (3, 1));
        let names: Vec<String> = cache.tenant_stats().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["ann", "bob"]);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = MaterializedCache::new(1 << 20);
        let (out, t) = entry(10);
        cache.admit(7, out, t, 5);
        cache.get(7);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.get(7).is_none());
    }
}
