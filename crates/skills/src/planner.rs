//! Converting the logical skill DAG to execution tasks (§2.2, Figure 4).
//!
//! The planner walks the primary chain feeding a target node and folds
//! maximal runs of SQL-able skills rooted at a `LoadTable` into a single
//! flattened SQL query — "the platform consolidates the request into a
//! single SQL query". Skills outside the SQL subset (ML, charts,
//! sampling, joins across datasets) become their own tasks.

use dc_engine::Expr;
use dc_sql::{generate_sql, QueryStep, Select};

use crate::dag::{NodeId, SkillDag};
use crate::error::Result;
use crate::skill::SkillCall;

/// One unit of execution produced by planning.
// A plan holds a handful of tasks, so the Sql/Skill size gap is moot.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionTask {
    /// A consolidated SQL query against one database, covering the listed
    /// DAG nodes.
    Sql {
        database: String,
        query: Select,
        covers: Vec<NodeId>,
    },
    /// A single skill executed by the engine/ML/viz interpreter.
    Skill { node: NodeId },
}

impl ExecutionTask {
    /// How many logical skill calls this task covers.
    pub fn covered_calls(&self) -> usize {
        match self {
            ExecutionTask::Sql { covers, .. } => covers.len(),
            ExecutionTask::Skill { .. } => 1,
        }
    }
}

/// Map a skill call to its SQL step, if it is SQL-able.
fn as_query_step(call: &SkillCall) -> Option<QueryStep> {
    match call {
        SkillCall::KeepRows { predicate } => Some(QueryStep::Filter {
            predicate: predicate.clone(),
        }),
        SkillCall::DropRows { predicate } => Some(QueryStep::Filter {
            predicate: predicate.clone().not(),
        }),
        SkillCall::KeepColumns { columns } => Some(QueryStep::SelectColumns {
            columns: columns.clone(),
        }),
        SkillCall::CreateColumn { name, expr } => Some(QueryStep::WithColumn {
            name: name.clone(),
            expr: expr.clone(),
        }),
        SkillCall::CreateConstantColumn { name, value } => Some(QueryStep::WithColumn {
            name: name.clone(),
            expr: Expr::Literal(value.clone()),
        }),
        SkillCall::Compute { aggs, for_each } => Some(QueryStep::Compute {
            keys: for_each.clone(),
            aggs: aggs.clone(),
        }),
        SkillCall::Sort { keys } => Some(QueryStep::Sort { keys: keys.clone() }),
        SkillCall::Limit { n } => Some(QueryStep::Limit { n: *n }),
        SkillCall::Distinct { columns } if columns.is_empty() => Some(QueryStep::Distinct),
        _ => None,
    }
}

/// Plan the execution of `target`: tasks in execution order.
///
/// Exploration/visualization pass-through skills inside a SQL-able run do
/// not break consolidation (their artifacts are computed from the shared
/// result); any other non-SQL skill ends the current run.
pub fn plan(dag: &SkillDag, target: NodeId) -> Result<Vec<ExecutionTask>> {
    let chain = dag.primary_chain(target)?;
    let mut tasks: Vec<ExecutionTask> = Vec::new();
    let mut pending: Option<(String, Vec<QueryStep>, Vec<NodeId>)> = None;

    let flush = |pending: &mut Option<(String, Vec<QueryStep>, Vec<NodeId>)>,
                 tasks: &mut Vec<ExecutionTask>|
     -> Result<()> {
        if let Some((database, steps, covers)) = pending.take() {
            let query = generate_sql(&steps, true)?;
            tasks.push(ExecutionTask::Sql {
                database,
                query,
                covers,
            });
        }
        Ok(())
    };

    for &id in &chain {
        let node = dag.node(id)?;
        match &node.call {
            SkillCall::LoadTable { database, table } => {
                flush(&mut pending, &mut tasks)?;
                pending = Some((
                    database.clone(),
                    vec![QueryStep::Scan {
                        table: table.clone(),
                    }],
                    vec![id],
                ));
            }
            call => {
                if let (Some(step), Some((_, steps, covers))) =
                    (as_query_step(call), pending.as_mut())
                {
                    steps.push(step);
                    covers.push(id);
                } else if !call.transforms_data() && pending.is_some() {
                    // Pass-through artifact: runs as its own task against
                    // the consolidated result, without breaking the run.
                    tasks.push(ExecutionTask::Skill { node: id });
                } else {
                    flush(&mut pending, &mut tasks)?;
                    tasks.push(ExecutionTask::Skill { node: id });
                }
            }
        }
    }
    flush(&mut pending, &mut tasks)?;
    Ok(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{AggFunc, AggSpec};

    fn load() -> SkillCall {
        SkillCall::LoadTable {
            database: "MainDatabase".into(),
            table: "readings".into(),
        }
    }

    #[test]
    fn figure4_consolidation() {
        // User: view table with filter; app inserts a Limit; platform
        // consolidates Load + Filter + Limit into ONE SQL query.
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("temperature").gt(Expr::lit(30i64)),
                },
                vec![l],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 100 }, vec![f]).unwrap();
        let tasks = plan(&dag, lim).unwrap();
        assert_eq!(tasks.len(), 1, "one execution task for three skills");
        match &tasks[0] {
            ExecutionTask::Sql { query, covers, .. } => {
                assert_eq!(covers.len(), 3);
                assert_eq!(query.nesting_depth(), 1, "flattened to one block");
                assert_eq!(
                    query.to_sql(),
                    "SELECT * FROM readings WHERE (temperature > 30) LIMIT 100"
                );
            }
            other => panic!("expected SQL task, got {other:?}"),
        }
    }

    #[test]
    fn projection_chain_flattens_like_the_paper() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = dag
            .add(
                SkillCall::KeepColumns {
                    columns: vec!["a".into(), "b".into(), "c".into()],
                },
                vec![l],
            )
            .unwrap();
        let b = dag
            .add(
                SkillCall::KeepColumns {
                    columns: vec!["a".into(), "b".into()],
                },
                vec![a],
            )
            .unwrap();
        let c = dag
            .add(
                SkillCall::KeepColumns {
                    columns: vec!["a".into()],
                },
                vec![b],
            )
            .unwrap();
        let tasks = plan(&dag, c).unwrap();
        assert_eq!(tasks.len(), 1);
        match &tasks[0] {
            ExecutionTask::Sql { query, .. } => {
                assert_eq!(query.to_sql(), "SELECT a FROM readings");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ml_skill_breaks_the_run() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(0i64)),
                },
                vec![l],
            )
            .unwrap();
        let train = dag
            .add(
                SkillCall::TrainModel {
                    name: "m".into(),
                    target: "y".into(),
                    features: vec![],
                    method: dc_ml::MlMethod::Auto,
                },
                vec![f],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 5 }, vec![train]).unwrap();
        let tasks = plan(&dag, lim).unwrap();
        // SQL(load+filter), Skill(train), Skill(limit) — the limit can't
        // rejoin the earlier SQL run across the ML task.
        assert_eq!(tasks.len(), 3);
        assert!(matches!(&tasks[0], ExecutionTask::Sql { covers, .. } if covers.len() == 2));
        assert!(matches!(tasks[1], ExecutionTask::Skill { .. }));
        assert!(matches!(tasks[2], ExecutionTask::Skill { .. }));
    }

    #[test]
    fn pass_through_artifacts_do_not_break_consolidation() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let d = dag
            .add(SkillCall::DescribeColumn { column: "x".into() }, vec![l])
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 5 }, vec![d]).unwrap();
        let tasks = plan(&dag, lim).unwrap();
        // SQL(load + limit) consolidated, describe as its own task.
        let sql_tasks: Vec<_> = tasks
            .iter()
            .filter(|t| matches!(t, ExecutionTask::Sql { .. }))
            .collect();
        assert_eq!(sql_tasks.len(), 1);
        assert_eq!(sql_tasks[0].covered_calls(), 2);
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn compute_then_filter_stays_one_task_two_blocks() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let c = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![AggSpec::new(AggFunc::Sum, "v", "total")],
                    for_each: vec!["k".into()],
                },
                vec![l],
            )
            .unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("total").gt(Expr::lit(10i64)),
                },
                vec![c],
            )
            .unwrap();
        let tasks = plan(&dag, f).unwrap();
        assert_eq!(tasks.len(), 1);
        match &tasks[0] {
            ExecutionTask::Sql { query, .. } => {
                // Two blocks: the aggregate and the post-filter wrapper.
                assert_eq!(query.nesting_depth(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_table_source_is_a_skill_task() {
        let mut dag = SkillDag::new();
        let l = dag
            .add(
                SkillCall::LoadFile {
                    path: "a.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 5 }, vec![l]).unwrap();
        let tasks = plan(&dag, lim).unwrap();
        // CSV loads can't be pushed to a database; both run as skills.
        assert_eq!(tasks.len(), 2);
        assert!(tasks
            .iter()
            .all(|t| matches!(t, ExecutionTask::Skill { .. })));
    }
}
