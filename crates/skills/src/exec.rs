//! The skill interpreter: one function per skill semantics, plus the
//! DAG executor with its sub-DAG cache.
//!
//! Execution is split along an environment boundary: most skills are pure
//! functions of their input tables ([`execute_pure_call`]), while
//! ingestion, model-registry, SQL, and platform skills need the mutable
//! [`Env`]. The [`Executor`] exploits the split by running independent
//! pure nodes of a wave concurrently; environment-dependent nodes always
//! run serially.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dc_engine::csv::{read_csv, write_csv};
use dc_engine::ops::{
    concat, distinct, filter, group_by_with_mem, join_with_mem, limit, pivot, sample_fraction,
    sort_by, sort_by_with_mem, top_n, SortKey,
};
use dc_engine::MemContext;
use dc_engine::{Column, Expr, ScalarFunc, Table, Value};
use dc_ml::{detect_outliers, fit_kmeans, fit_time_series, predict, train_model, ModelKind};
use dc_storage::ScanOptions;
use dc_viz::{auto_visualize, ChartSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cache::{MaterializedCache, SharedKey};
use crate::dag::{NodeId, SkillDag, SkillNode};
use crate::env::Env;
use crate::error::{Result, SkillError};
use crate::output::SkillOutput;
use crate::skill::{DatePart, SkillCall};

/// Whether `call` must execute against the mutable [`Env`] (catalog,
/// snapshot store, file/URL fixtures, model registry, definitions).
///
/// Everything else is a pure function of its input tables and is safe to
/// run concurrently with other nodes. `UseDataset` is pure when the DAG
/// already wired the named node as an input; it only falls back to the
/// environment's saved artifacts otherwise.
pub fn needs_env(call: &SkillCall, has_input: bool) -> bool {
    use SkillCall::*;
    match call {
        UseDataset { .. } => !has_input,
        LoadFile { .. }
        | LoadUrl { .. }
        | LoadTable { .. }
        | LoadTableFiltered { .. }
        | LoadTableProjected { .. }
        | UseSnapshot { .. }
        | ListDatasets
        | TrainModel { .. }
        | Predict { .. }
        | EvaluateModel { .. }
        | RunSql { .. }
        | SaveArtifact { .. }
        | Snapshot { .. }
        | Define { .. } => true,
        _ => false,
    }
}

/// Execute one skill call against its input tables.
///
/// `inputs[0]` is the primary dataset (when the skill needs one);
/// `inputs[1]` the secondary for joins and concatenations. Calls that do
/// not [`needs_env`] are delegated to [`execute_pure_call`].
pub fn execute_call(call: &SkillCall, inputs: &[&Table], env: &mut Env) -> Result<SkillOutput> {
    use SkillCall::*;
    let primary = || -> Result<&Table> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| SkillError::invalid(format!("{} needs an input dataset", call.name())))
    };
    match call {
        // ----- ingestion -----
        LoadFile { path } => Ok(SkillOutput::Table(read_csv(env.file(path)?)?)),
        LoadUrl { url } => Ok(SkillOutput::Table(read_csv(env.url(url)?)?)),
        LoadTable { database, table } => {
            let db = env.catalog.database(database)?;
            let mut opts = ScanOptions::full();
            opts.cancel = Some(env.cancel.clone());
            let (data, receipt) = db.scan(table, &opts)?;
            env.scan_tally.record(&receipt);
            Ok(SkillOutput::Table(data))
        }
        LoadTableFiltered {
            database,
            table,
            predicate,
        } => {
            let db = env.catalog.database(database)?;
            let mut opts = ScanOptions::full();
            opts.predicate = Some(predicate.clone());
            opts.cancel = Some(env.cancel.clone());
            let (data, receipt) = db.scan(table, &opts)?;
            env.scan_tally.record(&receipt);
            Ok(SkillOutput::Table(data))
        }
        LoadTableProjected {
            database,
            table,
            columns,
            predicate,
        } => {
            let db = env.catalog.database(database)?;
            let mut opts = ScanOptions::full();
            opts.columns = Some(columns.clone());
            opts.predicate = predicate.clone();
            opts.cancel = Some(env.cancel.clone());
            let (data, receipt) = db.scan(table, &opts)?;
            env.scan_tally.record(&receipt);
            Ok(SkillOutput::Table(data))
        }
        UseDataset { name, .. } if inputs.is_empty() => {
            Ok(SkillOutput::Table(env.saved_table(name)?.clone()))
        }
        UseSnapshot { name } => Ok(SkillOutput::Table(env.snapshots.read(name)?.clone())),
        ListDatasets => {
            let mut lines = Vec::new();
            for db_name in env.catalog.database_names() {
                let db = env.catalog.database(db_name)?;
                for info in db.dataset_listing() {
                    lines.push(format!(
                        "{}\t{}\t{} rows\t{} columns\t{}",
                        info.database,
                        info.dataset_name,
                        info.num_rows,
                        info.num_columns,
                        info.columns.join(", ")
                    ));
                }
            }
            Ok(SkillOutput::Text(lines.join("\n")))
        }

        // ----- machine learning against the model registry -----
        TrainModel {
            name,
            target,
            features,
            method,
        } => {
            let t = primary()?;
            let features = if features.is_empty() {
                // Default: every numeric column except the target.
                t.schema()
                    .fields()
                    .iter()
                    .filter(|f| f.dtype.is_numeric() && !f.name.eq_ignore_ascii_case(target))
                    .map(|f| f.name.clone())
                    .collect()
            } else {
                features.clone()
            };
            let model = train_model(t, name.clone(), target, &features, *method)?;
            env.put_model(model.clone());
            Ok(SkillOutput::Model(model))
        }
        Predict { model } => {
            let t = primary()?;
            let m = env.model(model)?.clone();
            let preds = predict(&m, t)?;
            let name = format!("Predicted_{}", m.target);
            let name = t.schema().fresh_name(&name);
            Ok(SkillOutput::Table(t.with_column(&name, preds)?))
        }
        EvaluateModel { model, target } => {
            let t = primary()?;
            let m = env.model(model)?.clone();
            let preds = predict(&m, t)?;
            let actual_col = t.column(target)?;
            match m.kind {
                ModelKind::Regression(_) => {
                    let mut a = Vec::new();
                    let mut p = Vec::new();
                    for i in 0..t.num_rows() {
                        if let (Some(av), Some(pv)) =
                            (actual_col.numeric_at(i), preds.numeric_at(i))
                        {
                            a.push(av);
                            p.push(pv);
                        }
                    }
                    let rmse = dc_ml::metrics::rmse(&a, &p)?;
                    let mae = dc_ml::metrics::mae(&a, &p)?;
                    let r2 = dc_ml::metrics::r_squared(&a, &p)?;
                    Ok(SkillOutput::Table(Table::new(vec![
                        (
                            "metric",
                            Column::from_strs(vec!["rmse", "mae", "r_squared"]),
                        ),
                        ("value", Column::from_floats(vec![rmse, mae, r2])),
                    ])?))
                }
                ModelKind::Classification(_) => {
                    let mut a = Vec::new();
                    let mut p = Vec::new();
                    for i in 0..t.num_rows() {
                        let av = actual_col.get(i);
                        let pv = preds.get(i);
                        if !av.is_null() && !pv.is_null() {
                            a.push(av.render());
                            p.push(pv.render());
                        }
                    }
                    let acc = dc_ml::metrics::accuracy(&a, &p)?;
                    Ok(SkillOutput::Table(Table::new(vec![
                        ("metric", Column::from_strs(vec!["accuracy"])),
                        ("value", Column::from_floats(vec![acc])),
                    ])?))
                }
            }
        }

        // ----- SQL -----
        RunSql { query } => {
            let provider = CatalogProvider { env };
            let (out, _stats) = dc_sql::run_sql(query, &provider)?;
            Ok(SkillOutput::Table(out))
        }

        // ----- collaboration / platform -----
        SaveArtifact { name } => {
            let t = primary()?.clone();
            env.save_table(name.clone(), t);
            Ok(SkillOutput::Text(format!("Saved artifact {name}")))
        }
        Snapshot { name } => {
            let t = primary()?.clone();
            env.snapshots
                .create(name.clone(), t, "session", Vec::new(), None)?;
            Ok(SkillOutput::Text(format!("Created snapshot {name}")))
        }
        Define { phrase, expansion } => {
            env.define(phrase.clone(), expansion.clone());
            Ok(SkillOutput::Text(format!("Defined {phrase:?}")))
        }

        other => execute_pure_call_with_mem(other, inputs, env.memory.as_deref()),
    }
}

/// Execute one environment-free skill call against its input tables.
///
/// These skills are pure functions of `inputs`, which is what lets the
/// executor's wave scheduler run them on worker threads. Runs without a
/// memory budget (never spills); the executor threads one through
/// [`execute_pure_call_with_mem`].
pub fn execute_pure_call(call: &SkillCall, inputs: &[&Table]) -> Result<SkillOutput> {
    execute_pure_call_with_mem(call, inputs, None)
}

/// [`execute_pure_call`] with an optional out-of-core memory context.
/// When `mem` is set, join, group-by (`Compute`) and sort admit their
/// transient state against the context's governor and spill to disk
/// instead of exceeding the budget.
pub fn execute_pure_call_with_mem(
    call: &SkillCall,
    inputs: &[&Table],
    mem: Option<&MemContext>,
) -> Result<SkillOutput> {
    use SkillCall::*;
    let primary = || -> Result<&Table> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| SkillError::invalid(format!("{} needs an input dataset", call.name())))
    };
    let secondary = || -> Result<&Table> {
        inputs
            .get(1)
            .copied()
            .ok_or_else(|| SkillError::invalid(format!("{} needs a second dataset", call.name())))
    };
    match call {
        // The DAG wired the named dataset's node as our input.
        UseDataset { .. } => Ok(SkillOutput::Table(primary()?.clone())),

        // ----- exploration (pass-through artifacts) -----
        DescribeColumn { column } => Ok(SkillOutput::Summaries(vec![
            dc_engine::stats::describe_column(primary()?, column)?,
        ])),
        DescribeDataset => Ok(SkillOutput::Summaries(dc_engine::stats::describe_table(
            primary()?,
        ))),
        ShowHead { n } => Ok(SkillOutput::Text(primary()?.render(*n))),
        CountRows => Ok(SkillOutput::Text(primary()?.num_rows().to_string())),
        ProfileMissing => {
            let t = primary()?;
            let mut names = Vec::new();
            let mut nulls = Vec::new();
            let mut pcts = Vec::new();
            for (f, c) in t.schema().fields().iter().zip(t.columns()) {
                names.push(f.name.clone());
                nulls.push(c.null_count() as i64);
                pcts.push(if t.num_rows() == 0 {
                    0.0
                } else {
                    c.null_count() as f64 / t.num_rows() as f64 * 100.0
                });
            }
            Ok(SkillOutput::Table(Table::new(vec![
                ("column", Column::from_strs(names)),
                ("missing", Column::from_ints(nulls)),
                ("missing_pct", Column::from_floats(pcts)),
            ])?))
        }

        // ----- visualization -----
        Visualize { kpi, by } => {
            let charts = auto_visualize(primary()?, kpi, by)?;
            Ok(SkillOutput::Charts(charts))
        }
        Plot {
            chart,
            x,
            y,
            color,
            size,
            for_each,
        } => {
            let t = primary()?;
            // Keep only the involved columns in the spec payload.
            let mut cols: Vec<&str> = Vec::new();
            for c in [x, y, color, size, for_each].into_iter().flatten() {
                if !cols.iter().any(|e| e.eq_ignore_ascii_case(c)) {
                    cols.push(c);
                }
            }
            let data = if cols.is_empty() {
                t.clone()
            } else {
                t.select(&cols)?
            };
            let title = match (x, y) {
                (Some(x), Some(y)) => format!("{y} over {x}"),
                (Some(x), None) => format!("Distribution of {x}"),
                _ => "chart".to_string(),
            };
            Ok(SkillOutput::Charts(vec![ChartSpec {
                name: "Chart".to_string(),
                chart: *chart,
                title,
                x: x.clone(),
                y: y.clone(),
                color: color.clone(),
                size: size.clone(),
                for_each: for_each.clone(),
                data,
            }]))
        }

        // ----- wrangling -----
        KeepRows { predicate } => Ok(SkillOutput::Table(filter(primary()?, predicate)?)),
        DropRows { predicate } => Ok(SkillOutput::Table(filter(
            primary()?,
            &predicate.clone().not(),
        )?)),
        KeepColumns { columns } => {
            let refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
            Ok(SkillOutput::Table(primary()?.select(&refs)?))
        }
        DropColumns { columns } => {
            let mut t = primary()?.clone();
            for c in columns {
                t = t.drop_column(c)?;
            }
            Ok(SkillOutput::Table(t))
        }
        RenameColumn { from, to } => Ok(SkillOutput::Table(primary()?.rename_column(from, to)?)),
        CreateColumn { name, expr } => {
            let t = primary()?;
            let col = dc_engine::eval::eval(t, expr)?;
            Ok(SkillOutput::Table(t.with_column(name, col)?))
        }
        CreateConstantColumn { name, value } => {
            let t = primary()?;
            let col = dc_engine::eval::eval(t, &Expr::Literal(value.clone()))?;
            Ok(SkillOutput::Table(t.with_column(name, col)?))
        }
        Compute { aggs, for_each } => {
            let keys: Vec<&str> = for_each.iter().map(|s| s.as_str()).collect();
            Ok(SkillOutput::Table(group_by_with_mem(
                primary()?,
                &keys,
                aggs,
                mem,
            )?))
        }
        Pivot {
            index,
            columns,
            values,
            agg,
        } => Ok(SkillOutput::Table(pivot(
            primary()?,
            index,
            columns,
            values,
            *agg,
        )?)),
        Sort { keys } => {
            let sk: Vec<SortKey> = keys
                .iter()
                .map(|(c, asc)| {
                    if *asc {
                        SortKey::asc(c.clone())
                    } else {
                        SortKey::desc(c.clone())
                    }
                })
                .collect();
            Ok(SkillOutput::Table(sort_by_with_mem(primary()?, &sk, mem)?))
        }
        Top { column, n } => Ok(SkillOutput::Table(top_n(primary()?, column, *n)?)),
        Limit { n } => Ok(SkillOutput::Table(limit(primary()?, *n))),
        Concat {
            remove_duplicates, ..
        } => Ok(SkillOutput::Table(concat(
            &[primary()?, secondary()?],
            *remove_duplicates,
        )?)),
        Join {
            left_on,
            right_on,
            how,
            ..
        } => {
            let l: Vec<&str> = left_on.iter().map(|s| s.as_str()).collect();
            let r: Vec<&str> = right_on.iter().map(|s| s.as_str()).collect();
            Ok(SkillOutput::Table(join_with_mem(
                primary()?,
                secondary()?,
                &l,
                &r,
                *how,
                mem,
            )?))
        }
        Distinct { columns } => {
            let refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
            Ok(SkillOutput::Table(distinct(primary()?, &refs)?))
        }
        DropMissing { columns } => {
            let t = primary()?;
            let cols: Vec<String> = if columns.is_empty() {
                t.schema().names().iter().map(|s| s.to_string()).collect()
            } else {
                columns.clone()
            };
            let pred = cols
                .iter()
                .map(|c| Expr::col(c.clone()).is_not_null())
                .reduce(|a, b| a.and(b))
                .ok_or_else(|| SkillError::invalid("no columns to check"))?;
            Ok(SkillOutput::Table(filter(t, &pred)?))
        }
        FillMissing { column, value } => {
            let t = primary()?;
            let filled = dc_engine::eval::eval(
                t,
                &Expr::func(
                    ScalarFunc::Coalesce,
                    vec![Expr::col(column.clone()), Expr::Literal(value.clone())],
                ),
            )?;
            Ok(SkillOutput::Table(t.with_column(column, filled)?))
        }
        ReplaceValues { column, from, to } => {
            let t = primary()?;
            let expr = Expr::func(
                ScalarFunc::If,
                vec![
                    Expr::col(column.clone()).eq(Expr::Literal(from.clone())),
                    Expr::Literal(to.clone()),
                    Expr::col(column.clone()),
                ],
            );
            let replaced = dc_engine::eval::eval(t, &expr)?;
            Ok(SkillOutput::Table(t.with_column(column, replaced)?))
        }
        CastColumn { column, to } => {
            let t = primary()?;
            let cast = t.column(column)?.cast(*to)?;
            Ok(SkillOutput::Table(t.with_column(column, cast)?))
        }
        BinColumn {
            column,
            width,
            name,
        } => {
            let t = primary()?;
            let out_name = name
                .clone()
                .unwrap_or_else(|| format!("{column}Int{width}"));
            let binned = dc_engine::eval::eval(
                t,
                &Expr::func(
                    ScalarFunc::Bin,
                    vec![Expr::col(column.clone()), Expr::lit(*width)],
                ),
            )?;
            Ok(SkillOutput::Table(t.with_column(&out_name, binned)?))
        }
        ExtractDatePart { column, part, name } => {
            let t = primary()?;
            let func = match part {
                DatePart::Year => ScalarFunc::Year,
                DatePart::Month => ScalarFunc::Month,
                DatePart::Day => ScalarFunc::Day,
            };
            let out_name = name
                .clone()
                .unwrap_or_else(|| format!("{column}_{}", part.name()));
            let extracted =
                dc_engine::eval::eval(t, &Expr::func(func, vec![Expr::col(column.clone())]))?;
            Ok(SkillOutput::Table(t.with_column(&out_name, extracted)?))
        }
        TrimColumn { column } => {
            let t = primary()?;
            let trimmed = dc_engine::eval::eval(
                t,
                &Expr::func(ScalarFunc::Trim, vec![Expr::col(column.clone())]),
            )?;
            Ok(SkillOutput::Table(t.with_column(column, trimmed)?))
        }
        Sample { fraction, seed } => Ok(SkillOutput::Table(sample_fraction(
            primary()?,
            *fraction,
            *seed,
        )?)),
        ShuffleRows { seed } => {
            let t = primary()?;
            let mut idx: Vec<usize> = (0..t.num_rows()).collect();
            let mut rng = StdRng::seed_from_u64(*seed);
            idx.shuffle(&mut rng);
            Ok(SkillOutput::Table(t.take(&idx)))
        }

        // ----- machine learning -----
        PredictTimeSeries {
            measures,
            horizon,
            time_column,
        } => Ok(SkillOutput::Table(predict_time_series(
            primary()?,
            measures,
            *horizon,
            time_column,
        )?)),
        DetectOutliers { column, method } => {
            let t = primary()?;
            let col = t.column(column)?;
            let vals: Vec<Option<f64>> = (0..col.len()).map(|i| col.numeric_at(i)).collect();
            let flags = detect_outliers(&vals, *method)?;
            let name = t.schema().fresh_name(&format!("IsOutlier_{column}"));
            Ok(SkillOutput::Table(
                t.with_column(&name, Column::from_bools(flags))?,
            ))
        }
        Cluster { k, features } => {
            let t = primary()?;
            let cols: Vec<&Column> = features
                .iter()
                .map(|f| t.column(f))
                .collect::<dc_engine::Result<_>>()?;
            let mut points = Vec::new();
            let mut kept = Vec::new();
            'rows: for r in 0..t.num_rows() {
                let mut p = Vec::with_capacity(cols.len());
                for c in &cols {
                    match c.numeric_at(r) {
                        Some(v) => p.push(v),
                        None => continue 'rows,
                    }
                }
                points.push(p);
                kept.push(r);
            }
            let model = fit_kmeans(&points, *k, 42)?;
            let labels = model.predict(&points)?;
            let mut col_vals: Vec<Option<i64>> = vec![None; t.num_rows()];
            for (&r, &l) in kept.iter().zip(&labels) {
                col_vals[r] = Some(l as i64);
            }
            let name = t.schema().fresh_name("Cluster");
            Ok(SkillOutput::Table(
                t.with_column(&name, Column::from_opt_ints(col_vals))?,
            ))
        }
        ExportCsv => Ok(SkillOutput::Text(write_csv(primary()?))),

        // ----- collaboration / platform -----
        Comment { text } => Ok(SkillOutput::Text(text.clone())),
        ShareArtifact {
            artifact,
            with_user,
        } => Ok(SkillOutput::Text(format!(
            "Shared {artifact} with {with_user}"
        ))),

        other => Err(SkillError::invalid(format!(
            "{} requires the execution environment",
            other.name()
        ))),
    }
}

/// Time-series prediction (Figure 2 step 3): fit trend + seasonality on
/// the measure columns, forecast `horizon` steps, and emit a table with
/// the advanced time column, predicted measures, and
/// `RecordType = "Predicted"`.
fn predict_time_series(
    t: &Table,
    measures: &[String],
    horizon: usize,
    time_column: &str,
) -> Result<Table> {
    if horizon == 0 {
        return Err(SkillError::invalid("horizon must be positive"));
    }
    if measures.is_empty() {
        return Err(SkillError::invalid("at least one measure column required"));
    }
    // Sort by time first so the series is well ordered.
    let sorted = sort_by(t, &[SortKey::asc(time_column)])?;
    let time_col = sorted.column(time_column)?;
    let is_date = time_col.dtype() == dc_engine::DataType::Date;

    // Collect valid time points.
    let times: Vec<f64> = (0..sorted.num_rows())
        .filter_map(|i| time_col.numeric_at(i))
        .collect();
    if times.len() < 3 {
        return Err(SkillError::Ml(dc_ml::MlError::InsufficientData {
            needed: 3,
            got: times.len(),
        }));
    }
    // Median spacing.
    let mut deltas: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let spacing = deltas[deltas.len() / 2];

    // Future time values.
    let last = *times.last().expect("non-empty");
    let future_times: Vec<Value> = (1..=horizon)
        .map(|k| {
            if is_date {
                let base = last as i32;
                // Quarterly/monthly/annual calendar stepping when the
                // spacing matches; otherwise uniform day steps.
                let stepped = if (89.0..=92.0).contains(&spacing) {
                    dc_engine::date::add_months(base, 3 * k as i32)
                } else if (28.0..=31.0).contains(&spacing) {
                    dc_engine::date::add_months(base, k as i32)
                } else if (365.0..=366.0).contains(&spacing) {
                    dc_engine::date::add_years(base, k as i32)
                } else {
                    base + (spacing as i32) * k as i32
                };
                Value::Date(stepped)
            } else {
                Value::Float(last + spacing * k as f64)
            }
        })
        .collect();

    // One fitted model per measure; seasonality guessed from spacing
    // (quarterly data gets an annual cycle).
    let period = if is_date && (89.0..=92.0).contains(&spacing) {
        4
    } else if is_date && (28.0..=31.0).contains(&spacing) {
        12
    } else {
        1
    };
    let mut out = Table::empty();
    let mut time_out = Column::empty(time_col.dtype());
    for v in &future_times {
        time_out.push_value(v)?;
    }
    out.add_column(
        &sorted
            .schema()
            .field(time_column)
            .expect("resolved above")
            .name
            .clone(),
        time_out,
    )?;
    for m in measures {
        let col = sorted.column(m)?;
        if !col.dtype().is_numeric() {
            return Err(SkillError::invalid(format!(
                "measure column {m} must be numeric"
            )));
        }
        let series: Vec<f64> = (0..sorted.num_rows())
            .filter_map(|i| {
                time_col.numeric_at(i)?;
                col.numeric_at(i)
            })
            .collect();
        let period = if series.len() > 2 * period { period } else { 1 };
        let model = fit_time_series(&series, period)?;
        let preds = model.forecast(horizon);
        out.add_column(m, Column::from_floats(preds))?;
    }
    out.add_column("RecordType", Column::from_strs(vec!["Predicted"; horizon]))?;
    Ok(out)
}

/// SQL table provider over every database in the environment's catalog
/// (tables resolve by bare name across databases, first match wins).
struct CatalogProvider<'e> {
    env: &'e Env,
}

impl dc_sql::TableProvider for CatalogProvider<'_> {
    fn get_table(&self, name: &str) -> dc_sql::Result<Table> {
        for db_name in self.env.catalog.database_names() {
            if let Ok(db) = self.env.catalog.database(db_name) {
                if db
                    .table_names()
                    .iter()
                    .any(|t| t.eq_ignore_ascii_case(name))
                {
                    let (t, _) = db.scan(name, &ScanOptions::full()).map_err(|e| {
                        let retryable = e.is_retryable();
                        dc_sql::SqlError::provider(e, retryable)
                    })?;
                    return Ok(t);
                }
            }
        }
        Err(dc_sql::SqlError::TableNotFound {
            name: name.to_string(),
        })
    }
}

/// Counters for one executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    pub nodes_executed: u64,
    /// Sub-DAG results served without executing, from either cache tier.
    pub cache_hits: u64,
    /// The subset of `cache_hits` served by the cross-session
    /// [`MaterializedCache`] rather than this executor's own cache.
    pub shared_hits: u64,
    /// Scan footprint (`bytes_scanned + bytes_pruned`) that cache hits
    /// avoided re-charging against storage.
    pub bytes_saved: u64,
    /// Extra attempts spent absorbing retryable failures (resilient
    /// execution only; [`Executor::run`] never retries).
    pub retries: u64,
}

impl ExecutorStats {
    /// Zero every counter (between benchmark phases).
    pub fn reset(&mut self) {
        *self = ExecutorStats::default();
    }
}

/// Interned identity of one sub-DAG (a call plus the identities of the
/// sub-DAGs feeding it).
pub type SubDagId = u64;

/// Structural cache-key signature: the canonical call description plus
/// the interned ids of the input sub-DAGs.
///
/// Unlike the flat `"{call}|{input_keys}"` string this replaced, input
/// identity is a *list of ids*, not a joined substring, so different
/// input groupings can never alias — `T(M(p, q))` and `T(M(p), q)`
/// render to the same legacy string but intern to different signatures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct KeySig {
    pub(crate) call: String,
    pub(crate) inputs: Vec<SubDagId>,
}

/// Structural sub-DAG ids for every node of `dag`, computed with the
/// same interning the executor's cache keys use, but against a fresh
/// interner that touches no executor state. Structurally identical
/// sub-DAGs (same canonical call, same interned input ids) share an id —
/// the property the resilient scheduler's alias tracking and the static
/// analyzer's duplicate-sub-DAG pass are both built on.
pub fn structural_ids(dag: &SkillDag) -> HashMap<NodeId, SubDagId> {
    let mut interner: HashMap<KeySig, SubDagId> = HashMap::new();
    let mut ids: HashMap<NodeId, SubDagId> = HashMap::with_capacity(dag.len());
    // Nodes are append-only, so insertion order is topological and every
    // input id is already interned when its consumer is reached.
    for node in dag.nodes() {
        let sig = KeySig {
            call: node.call.cache_key(),
            inputs: node.inputs.iter().map(|i| ids[i]).collect(),
        };
        let next = interner.len() as SubDagId;
        ids.insert(node.id, *interner.entry(sig).or_insert(next));
    }
    ids
}

/// Version-salted canonical call signature, plus whether the salt was
/// applied. Catalog- and snapshot-reading calls fold the source's
/// current storage version into the signature, so `create_table` /
/// `drop_table` / snapshot writes change the key of the load — and,
/// because input ids feed every consumer's [`KeySig`], the key of every
/// ancestor with it. A missing source gets no salt (`false`): the run
/// errors before anything is cached under that signature, and the
/// unsalted key is never shareable.
fn versioned_call_sig(call: &SkillCall, env: &Env) -> (String, bool) {
    let base = call.cache_key();
    match call {
        SkillCall::LoadTable { database, table }
        | SkillCall::LoadTableFiltered {
            database, table, ..
        }
        | SkillCall::LoadTableProjected {
            database, table, ..
        } => {
            let version = env
                .catalog
                .database(database)
                .ok()
                .and_then(|db| db.table_version(table));
            match version {
                Some(v) => (format!("{base}@v{v}"), true),
                None => (base, false),
            }
        }
        SkillCall::UseSnapshot { name } => match env.snapshots.snapshot_version(name) {
            Some(v) => (format!("{base}@v{v}"), true),
            None => (base, false),
        },
        _ => (base, false),
    }
}

/// 128-bit FNV-1a, the mixer behind [`SharedKey`]s. Two independent
/// executors hashing the same version-salted sub-DAG structure land on
/// the same key without sharing an interner.
fn fnv128(h: u128, bytes: &[u8]) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h = h;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// The result of interning one run's node slice: executor-local ids plus
/// the globally stable [`SharedKey`]s of every shareable sub-DAG.
pub(crate) struct Interned {
    pub(crate) ids: HashMap<NodeId, SubDagId>,
    /// Present only for version-addressable cones: pure transforms over
    /// versioned loads. Environment-reading or side-effecting nodes (and
    /// anything downstream of them) never get a shared key.
    pub(crate) shared: HashMap<SubDagId, SharedKey>,
}

impl Interned {
    pub(crate) fn id(&self, nid: NodeId) -> SubDagId {
        self.ids[&nid]
    }

    pub(crate) fn shared_key(&self, id: SubDagId) -> Option<SharedKey> {
        self.shared.get(&id).copied()
    }
}

/// Instrumentation callback invoked just before a node executes.
pub(crate) type BeforeExecuteHook = Arc<dyn Fn(&SkillCall) + Send + Sync>;

/// Executes DAG nodes with a sub-DAG result cache (§2.2: "the conversion
/// of skill calls to execution tasks is also aware of a caching layer
/// that can execute directly on previous results based on a shared skill
/// sub-DAG").
///
/// Nodes run in topological *waves*: every uncached node whose inputs are
/// materialized belongs to the current wave, and the wave's pure nodes
/// ([`needs_env`] = false) execute concurrently on scoped threads when
/// the `parallel` feature is on. Cached tables are held behind
/// [`Arc`], so cache hits and fan-out reuse are pointer copies, never
/// deep clones.
pub struct Executor {
    /// Whether the cost-based optimizer pass ([`crate::optimize`]) runs
    /// over each DAG before pushdown planning. On by default; turn off
    /// to execute plans exactly as written (the rewrites are invisible
    /// to results either way).
    pub optimize: bool,
    /// Structural signature → interned sub-DAG id.
    pub(crate) interner: HashMap<KeySig, SubDagId>,
    /// Interned id → (output, downstream-facing table).
    pub(crate) cache: HashMap<SubDagId, (SkillOutput, Arc<Table>)>,
    /// Interned id → scan footprint (`bytes_scanned + bytes_pruned`) of
    /// the whole sub-DAG, the recompute cost a cache hit saves.
    pub(crate) costs: HashMap<SubDagId, u64>,
    /// Sub-DAGs whose cached result is degraded (block-sampled) or
    /// derived from one. They stay resumable in the local cache but are
    /// never admitted to the shared [`MaterializedCache`].
    pub(crate) tainted: HashSet<SubDagId>,
    pub stats: ExecutorStats,
    /// Test/chaos instrumentation (e.g. to make specific nodes slow or
    /// panic on demand).
    pub(crate) before_execute: Option<BeforeExecuteHook>,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor {
            optimize: true,
            interner: HashMap::new(),
            cache: HashMap::new(),
            costs: HashMap::new(),
            tainted: HashSet::new(),
            stats: ExecutorStats::default(),
            before_execute: None,
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("cache_len", &self.cache.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Executor {
    /// A fresh executor with an empty cache.
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Approximate heap bytes held by checkpointed sub-DAG results. The
    /// serving layer polls this to keep long-lived session executors
    /// memory-bounded.
    pub fn cache_bytes(&self) -> u64 {
        self.cache
            .values()
            .map(|(_, table)| table.byte_size() as u64)
            .sum()
    }

    /// Execute `target` (and any un-cached ancestors), returning its
    /// output. Non-transforming skills pass their input table through to
    /// downstream consumers.
    pub fn run(&mut self, dag: &SkillDag, target: NodeId, env: &mut Env) -> Result<SkillOutput> {
        let id = self.materialize(dag, target, env)?;
        Ok(self.cache[&id].0.clone())
    }

    /// The downstream-facing table of a node executed by
    /// [`Executor::run`]. The table is shared with the cache: on a warm
    /// cache this is a pointer copy, not a deep clone.
    pub fn table_of(&mut self, dag: &SkillDag, node: NodeId, env: &mut Env) -> Result<Arc<Table>> {
        let id = self.materialize(dag, node, env)?;
        Ok(Arc::clone(&self.cache[&id].1))
    }

    /// Install an instrumentation hook invoked just before every node
    /// executes (on whichever thread runs the node). Tests use it to make
    /// nodes slow; the chaos harness uses it to make nodes panic.
    pub fn set_before_execute(&mut self, hook: impl Fn(&SkillCall) + Send + Sync + 'static) {
        self.before_execute = Some(Arc::new(hook));
    }

    /// Intern a structural id for every node in the topologically ordered
    /// slice `order` (insertion order guarantees input ids are present),
    /// and compute the globally stable [`SharedKey`] of every
    /// version-addressable sub-DAG. Signatures are salted with current
    /// storage versions, so the same recipe interns to *different* ids
    /// after a catalog or snapshot mutation — stale local entries simply
    /// stop being addressed.
    pub(crate) fn intern_ids(
        &mut self,
        dag: &SkillDag,
        order: &[NodeId],
        env: &Env,
    ) -> Result<Interned> {
        let mut ids: HashMap<NodeId, SubDagId> = HashMap::with_capacity(order.len());
        let mut shared: HashMap<SubDagId, SharedKey> = HashMap::new();
        for &nid in order {
            let node = dag.node(nid)?;
            let (call_sig, salted) = versioned_call_sig(&node.call, env);
            let sig = KeySig {
                call: call_sig.clone(),
                inputs: node.inputs.iter().map(|i| ids[i]).collect(),
            };
            let next = self.interner.len() as SubDagId;
            let id = *self.interner.entry(sig).or_insert(next);
            ids.insert(nid, id);

            // A sub-DAG is shareable when its own call is pure or reads
            // version-addressable storage, and every input sub-DAG is
            // shareable too.
            let own_shareable = salted || !needs_env(&node.call, !node.inputs.is_empty());
            let input_keys: Option<Vec<SharedKey>> = node
                .inputs
                .iter()
                .map(|i| shared.get(&ids[i]).copied())
                .collect();
            if let (true, Some(input_keys)) = (own_shareable, input_keys) {
                let mut key = fnv128(FNV128_OFFSET, call_sig.as_bytes());
                for ik in input_keys {
                    key = fnv128(key, &ik.to_le_bytes());
                }
                shared.insert(id, key);
            }
        }
        Ok(Interned { ids, shared })
    }

    /// Probe the cross-session cache for sub-DAG `id`, installing a hit
    /// into the local cache (zero-copy table, inherited footprint) and
    /// counting it. Returns whether the probe hit.
    pub(crate) fn probe_shared(&mut self, env: &Env, interned: &Interned, id: SubDagId) -> bool {
        let Some(shared) = env.shared_cache.as_deref() else {
            return false;
        };
        let Some(key) = interned.shared_key(id) else {
            return false;
        };
        let Some(hit) = shared.get_as(key, env.attribution.as_deref()) else {
            return false;
        };
        self.stats.cache_hits += 1;
        self.stats.shared_hits += 1;
        self.stats.bytes_saved += hit.footprint_bytes;
        self.costs.insert(id, hit.footprint_bytes);
        self.cache.insert(id, (hit.output, hit.table));
        true
    }

    /// Ensure `target`'s sub-DAG result is in the cache, returning its id.
    fn materialize(&mut self, dag: &SkillDag, target: NodeId, env: &mut Env) -> Result<SubDagId> {
        // Cost-based rewrites first (projection pushdown, filter
        // hoisting, join reordering, dedup), then fuse single-consumer
        // filters into their scans so zone maps can prune blocks. Both
        // passes preserve node ids and filter nodes, so caching,
        // reporting, and error attribution are unaffected.
        let optimized = if self.optimize {
            crate::optimize::optimize_dag(dag, &[target], &[], env)
        } else {
            None
        };
        let dag = optimized.as_ref().unwrap_or(dag);
        let planned = crate::pushdown::plan_pushdown(dag, &[target], &[]);
        let dag = planned.as_ref().unwrap_or(dag);
        let order = dag.ancestors(target)?;
        let interned = self.intern_ids(dag, &order, env)?;
        let ids = &interned.ids;

        // Nodes whose sub-DAG result is not cached yet. Structurally
        // identical duplicates execute once; the rest count as hits. The
        // local cache is probed first, then the cross-session tier.
        let mut pending: Vec<NodeId> = Vec::new();
        for &nid in &order {
            let id = ids[&nid];
            if self.cache.contains_key(&id) {
                self.stats.cache_hits += 1;
                self.stats.bytes_saved += self.costs.get(&id).copied().unwrap_or(0);
            } else if pending.iter().any(|p| ids[p] == id) {
                self.stats.cache_hits += 1;
            } else if self.probe_shared(env, &interned, id) {
                // Installed into the local cache by the probe.
            } else {
                pending.push(nid);
            }
        }

        // Wave scheduler: repeatedly execute every pending node whose
        // inputs are all materialized.
        while !pending.is_empty() {
            let mut wave = Vec::new();
            let mut rest = Vec::new();
            for nid in pending {
                let node = dag.node(nid)?;
                if node.inputs.iter().all(|i| self.cache.contains_key(&ids[i])) {
                    wave.push(nid);
                } else {
                    rest.push(nid);
                }
            }
            debug_assert!(!wave.is_empty(), "ancestors are topologically ordered");
            pending = rest;
            self.run_wave(dag, &wave, &interned, env)?;
        }
        Ok(interned.id(target))
    }

    /// Execute one wave. Environment-dependent nodes run serially (they
    /// need `&mut Env`); the pure remainder runs concurrently, one scoped
    /// thread per node, when the `parallel` feature is on.
    fn run_wave(
        &mut self,
        dag: &SkillDag,
        wave: &[NodeId],
        interned: &Interned,
        env: &mut Env,
    ) -> Result<()> {
        let ids = &interned.ids;
        let mut pure: Vec<&SkillNode> = Vec::new();
        for &nid in wave {
            let node = dag.node(nid)?;
            if needs_env(&node.call, !node.inputs.is_empty()) {
                let inputs = self.input_tables(node, ids);
                let refs: Vec<&Table> = inputs.iter().map(|t| t.as_ref()).collect();
                if let Some(hook) = &self.before_execute {
                    hook(&node.call);
                }
                let tally_before = env.scan_tally;
                let output = execute_call(&node.call, &refs, env)?;
                let scan = env.scan_tally.delta_since(tally_before);
                self.finish(
                    node,
                    interned,
                    inputs,
                    output,
                    scan.bytes_scanned + scan.bytes_pruned,
                    false,
                    env.shared_cache.as_deref(),
                    env.attribution.as_deref(),
                );
            } else {
                pure.push(node);
            }
        }

        let jobs: Vec<(&SkillNode, Vec<Arc<Table>>)> = pure
            .into_iter()
            .map(|node| (node, self.input_tables(node, ids)))
            .collect();
        type JobResult<'d> = (&'d SkillNode, Vec<Arc<Table>>, Result<SkillOutput>);
        let mem = env.memory.clone();
        let results: Vec<JobResult<'_>> = if cfg!(feature = "parallel") && jobs.len() > 1 {
            let hook = self.before_execute.clone();
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(node, inputs)| {
                        let hook = hook.clone();
                        let mem = mem.clone();
                        scope.spawn(move || {
                            if let Some(hook) = &hook {
                                hook(&node.call);
                            }
                            let refs: Vec<&Table> = inputs.iter().map(|t| t.as_ref()).collect();
                            let out =
                                execute_pure_call_with_mem(&node.call, &refs, mem.as_deref());
                            (node, inputs, out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        } else {
            jobs.into_iter()
                .map(|(node, inputs)| {
                    if let Some(hook) = &self.before_execute {
                        hook(&node.call);
                    }
                    let refs: Vec<&Table> = inputs.iter().map(|t| t.as_ref()).collect();
                    let out = execute_pure_call_with_mem(&node.call, &refs, mem.as_deref());
                    (node, inputs, out)
                })
                .collect()
        };

        // Commit in DAG order so the first error (by node id) wins, like
        // the serial walk this replaced.
        for (node, inputs, out) in results {
            self.finish(
                node,
                interned,
                inputs,
                out?,
                0,
                false,
                env.shared_cache.as_deref(),
                env.attribution.as_deref(),
            );
        }
        Ok(())
    }

    /// A node's input tables as shared handles (pointer copies).
    pub(crate) fn input_tables(
        &self,
        node: &SkillNode,
        ids: &HashMap<NodeId, SubDagId>,
    ) -> Vec<Arc<Table>> {
        node.inputs
            .iter()
            .map(|i| Arc::clone(&self.cache[&ids[i]].1))
            .collect()
    }

    /// Record one executed node's output and downstream-facing table,
    /// accumulate its sub-DAG scan footprint, and — for authoritative
    /// results of version-addressable sub-DAGs — publish it to the
    /// cross-session cache. `degraded` results (and everything computed
    /// from one) are tainted: they stay in the local cache so resume
    /// semantics hold, but are never shared as authoritative.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        &mut self,
        node: &SkillNode,
        interned: &Interned,
        inputs: Vec<Arc<Table>>,
        output: SkillOutput,
        own_scan_bytes: u64,
        degraded: bool,
        shared: Option<&MaterializedCache>,
        who: Option<&str>,
    ) {
        self.stats.nodes_executed += 1;
        let id = interned.id(node.id);
        let footprint = own_scan_bytes
            + node
                .inputs
                .iter()
                .map(|i| self.costs.get(&interned.ids[i]).copied().unwrap_or(0))
                .sum::<u64>();
        self.costs.insert(id, footprint);
        let tainted = degraded
            || node
                .inputs
                .iter()
                .any(|i| self.tainted.contains(&interned.ids[i]));
        if tainted {
            self.tainted.insert(id);
        }
        let flow = match output.as_table() {
            Some(t) if node.call.transforms_data() => Arc::new(t.clone()),
            _ => inputs
                .into_iter()
                .next()
                .unwrap_or_else(|| Arc::new(Table::empty())),
        };
        if !tainted && footprint > 0 {
            if let (Some(shared), Some(key)) = (shared, interned.shared_key(id)) {
                shared.admit_as(key, output.clone(), Arc::clone(&flow), footprint, who);
            }
        }
        self.cache.insert(id, (output, flow));
    }

    /// Drop all cached results, the interner that keys them, and the
    /// per-sub-DAG bookkeeping. (The interner must go with the cache:
    /// signatures are only ever looked up to reach cached results, so a
    /// cleared executor keeping them would leak arbitrarily many
    /// signatures across cleared runs.)
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.interner.clear();
        self.costs.clear();
        self.tainted.clear();
    }

    /// Zero the stats counters without touching cached results.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of cached sub-DAG results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_storage::{CloudDatabase, Pricing};

    fn env_with_table() -> Env {
        let mut env = Env::new();
        let mut db = CloudDatabase::new("MainDatabase", Pricing::default_cloud());
        let t = Table::new(vec![
            ("x", Column::from_ints((0..100).collect())),
            (
                "category",
                Column::from_strs(
                    (0..100)
                        .map(|i| if i % 2 == 0 { "even" } else { "odd" })
                        .collect(),
                ),
            ),
        ])
        .unwrap();
        db.create_table("numbers", &t).unwrap();
        env.catalog.add_database(db).unwrap();
        env
    }

    fn load_dag() -> (SkillDag, NodeId) {
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadTable {
                    database: "MainDatabase".into(),
                    table: "numbers".into(),
                },
                vec![],
            )
            .unwrap();
        (dag, load)
    }

    #[test]
    fn load_filter_limit_pipeline() {
        let mut env = env_with_table();
        let (mut dag, load) = load_dag();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").ge(Expr::lit(50i64)),
                },
                vec![load],
            )
            .unwrap();
        let l = dag.add(SkillCall::Limit { n: 5 }, vec![f]).unwrap();
        let mut ex = Executor::new();
        let out = ex.run(&dag, l, &mut env).unwrap().into_table().unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(out.value(0, "x").unwrap(), Value::Int(50));
    }

    #[test]
    fn cache_hits_on_shared_subdag() {
        let mut env = env_with_table();
        let (mut dag, load) = load_dag();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").ge(Expr::lit(10i64)),
                },
                vec![load],
            )
            .unwrap();
        let a = dag.add(SkillCall::Limit { n: 5 }, vec![f]).unwrap();
        let b = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec::count_records("n")],
                    for_each: vec!["category".into()],
                },
                vec![f],
            )
            .unwrap();
        let mut ex = Executor::new();
        ex.run(&dag, a, &mut env).unwrap();
        assert_eq!(ex.stats.nodes_executed, 3);
        assert_eq!(ex.stats.cache_hits, 0);
        // Second request shares the load+filter sub-DAG.
        ex.run(&dag, b, &mut env).unwrap();
        assert_eq!(ex.stats.nodes_executed, 4); // only the Compute ran
        assert_eq!(ex.stats.cache_hits, 2);
        // The cloud table was scanned exactly once.
        assert_eq!(
            env.catalog
                .database("MainDatabase")
                .unwrap()
                .meter()
                .queries(),
            1
        );
    }

    #[test]
    fn exploration_passes_data_through() {
        let mut env = env_with_table();
        let (mut dag, load) = load_dag();
        let describe = dag
            .add(SkillCall::DescribeColumn { column: "x".into() }, vec![load])
            .unwrap();
        let after = dag.add(SkillCall::Limit { n: 3 }, vec![describe]).unwrap();
        let mut ex = Executor::new();
        let summaries = ex.run(&dag, describe, &mut env).unwrap();
        assert!(matches!(summaries, SkillOutput::Summaries(_)));
        // Downstream of the describe, the table still flows.
        let out = ex.run(&dag, after, &mut env).unwrap().into_table().unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn compute_skill_matches_figure3() {
        let mut env = env_with_table();
        let (mut dag, load) = load_dag();
        let c = dag
            .add(
                SkillCall::Compute {
                    aggs: vec![dc_engine::AggSpec::new(
                        dc_engine::AggFunc::Count,
                        "x",
                        "NumberOfCases",
                    )],
                    for_each: vec!["category".into()],
                },
                vec![load],
            )
            .unwrap();
        let mut ex = Executor::new();
        let out = ex.run(&dag, c, &mut env).unwrap().into_table().unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().names(), vec!["category", "NumberOfCases"]);
    }

    #[test]
    fn train_and_predict_roundtrip() {
        let mut env = Env::new();
        env.add_file("train.csv", &{
            let mut s = String::from("x,y\n");
            for i in 0..50 {
                s.push_str(&format!("{i},{}\n", 2 * i + 1));
            }
            s
        });
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadFile {
                    path: "train.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let train = dag
            .add(
                SkillCall::TrainModel {
                    name: "m".into(),
                    target: "y".into(),
                    features: vec![],
                    method: dc_ml::MlMethod::Auto,
                },
                vec![load],
            )
            .unwrap();
        let pred = dag
            .add(SkillCall::Predict { model: "m".into() }, vec![train])
            .unwrap();
        let mut ex = Executor::new();
        let out = ex.run(&dag, pred, &mut env).unwrap().into_table().unwrap();
        let p = out.value(10, "Predicted_y").unwrap().as_f64().unwrap();
        assert!((p - 21.0).abs() < 1e-6);
    }

    #[test]
    fn time_series_prediction_outputs_record_type() {
        // The Figure 2 shape: quarterly dates, 12-step horizon.
        let dates: Vec<i32> = (0..40)
            .map(|q| dc_engine::date::add_months(dc_engine::date::days_from_ymd(2005, 1, 1), 3 * q))
            .collect();
        let vals: Vec<f64> = (0..40).map(|q| 100.0 + 2.0 * q as f64).collect();
        let t = Table::new(vec![
            ("DATE", Column::from_dates(dates)),
            ("GDPC1", Column::from_floats(vals)),
        ])
        .unwrap();
        let out = predict_time_series(&t, &["GDPC1".to_string()], 12, "DATE").unwrap();
        assert_eq!(out.num_rows(), 12);
        assert_eq!(out.schema().names(), vec!["DATE", "GDPC1", "RecordType"]);
        assert_eq!(
            out.value(0, "RecordType").unwrap(),
            Value::Str("Predicted".into())
        );
        // First forecast continues the trend.
        let first = out.value(0, "GDPC1").unwrap().as_f64().unwrap();
        assert!((first - 180.0).abs() < 1.0, "{first}");
        // Dates advance quarterly.
        assert_eq!(
            out.value(0, "DATE").unwrap(),
            Value::Date(dc_engine::date::add_months(
                dc_engine::date::days_from_ymd(2005, 1, 1),
                3 * 40
            ))
        );
    }

    #[test]
    fn run_sql_against_catalog() {
        let mut env = env_with_table();
        let mut dag = SkillDag::new();
        let q = dag
            .add(
                SkillCall::RunSql {
                    query: "SELECT category, COUNT(*) AS n FROM numbers GROUP BY category".into(),
                },
                vec![],
            )
            .unwrap();
        let mut ex = Executor::new();
        let out = ex.run(&dag, q, &mut env).unwrap().into_table().unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn snapshot_skill_persists() {
        let mut env = env_with_table();
        let (mut dag, load) = load_dag();
        let snap = dag
            .add(
                SkillCall::Snapshot {
                    name: "snap1".into(),
                },
                vec![load],
            )
            .unwrap();
        let mut ex = Executor::new();
        ex.run(&dag, snap, &mut env).unwrap();
        assert_eq!(env.snapshots.read("snap1").unwrap().num_rows(), 100);
        // UseSnapshot reads it back.
        let mut dag2 = SkillDag::new();
        let use_snap = dag2
            .add(
                SkillCall::UseSnapshot {
                    name: "snap1".into(),
                },
                vec![],
            )
            .unwrap();
        let out = ex
            .run(&dag2, use_snap, &mut env)
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(out.num_rows(), 100);
    }

    #[test]
    fn missing_sources_error() {
        let mut env = Env::new();
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadFile {
                    path: "none.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let mut ex = Executor::new();
        assert!(matches!(
            ex.run(&dag, load, &mut env),
            Err(SkillError::SourceNotFound { .. })
        ));
    }

    #[test]
    fn fill_and_replace_values() {
        let mut env = Env::new();
        env.add_file("d.csv", "v\n1\n\n3\n");
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadFile {
                    path: "d.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let fill = dag
            .add(
                SkillCall::FillMissing {
                    column: "v".into(),
                    value: Value::Int(0),
                },
                vec![load],
            )
            .unwrap();
        let replace = dag
            .add(
                SkillCall::ReplaceValues {
                    column: "v".into(),
                    from: Value::Int(3),
                    to: Value::Int(30),
                },
                vec![fill],
            )
            .unwrap();
        let mut ex = Executor::new();
        let out = ex
            .run(&dag, replace, &mut env)
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(0));
        assert_eq!(out.value(2, "v").unwrap(), Value::Int(30));
    }

    /// Regression test for the flat-string cache keys this executor
    /// replaced: `"{call}|{inputs.join(\"|\")}"` loses input grouping, so
    /// `T(M(p, q))` and `T(M(p), q)` aliased to one key and the second
    /// target was served the first target's cached result. The
    /// structural interner must keep them distinct.
    #[test]
    fn structural_keys_distinguish_input_groupings() {
        let mut env = Env::new();
        let mut dag = SkillDag::new();
        let c = |text: &str| SkillCall::Comment { text: text.into() };
        let p = dag.add(c("p"), vec![]).unwrap();
        let q = dag.add(c("q"), vec![]).unwrap();
        let m_pq = dag.add(c("m"), vec![p, q]).unwrap();
        let t_of_m_pq = dag.add(c("t"), vec![m_pq]).unwrap();
        let m_p = dag.add(c("m"), vec![p]).unwrap();
        let t_of_m_p_q = dag.add(c("t"), vec![m_p, q]).unwrap();

        // Demonstrate that the two targets collide under the old scheme.
        let legacy_key = |dag: &SkillDag, target: NodeId| -> String {
            let mut keys: HashMap<NodeId, String> = HashMap::new();
            for &id in &dag.ancestors(target).unwrap() {
                let node = dag.node(id).unwrap();
                let input_keys: Vec<&str> = node.inputs.iter().map(|i| keys[i].as_str()).collect();
                let key = format!("{}|{}", node.call.cache_key(), input_keys.join("|"));
                keys.insert(id, key);
            }
            keys.remove(&target).unwrap()
        };
        assert_eq!(legacy_key(&dag, t_of_m_pq), legacy_key(&dag, t_of_m_p_q));

        let mut ex = Executor::new();
        ex.run(&dag, t_of_m_pq, &mut env).unwrap();
        assert_eq!(ex.stats.nodes_executed, 4);
        // The second target shares only p and q with the first; m and t
        // have different input sub-DAGs and must execute again.
        ex.run(&dag, t_of_m_p_q, &mut env).unwrap();
        assert_eq!(ex.stats.nodes_executed, 6);
        assert_eq!(ex.stats.cache_hits, 2);
        assert_eq!(ex.cache_len(), 6);
    }

    /// Two independent slow branches of a diamond must overlap: total
    /// latency stays near one branch's latency, not the sum.
    #[cfg(feature = "parallel")]
    #[test]
    fn diamond_waves_overlap_slow_branches() {
        use std::time::{Duration, Instant};

        let mut env = env_with_table();
        let (mut dag, load) = load_dag();
        let left = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").lt(Expr::lit(50i64)),
                },
                vec![load],
            )
            .unwrap();
        let right = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").ge(Expr::lit(50i64)),
                },
                vec![load],
            )
            .unwrap();
        let both = dag
            .add(
                SkillCall::Concat {
                    other: "right".into(),
                    remove_duplicates: false,
                },
                vec![left, right],
            )
            .unwrap();

        let mut ex = Executor::new();
        ex.set_before_execute(|call| {
            if matches!(call, SkillCall::KeepRows { .. }) {
                std::thread::sleep(Duration::from_millis(120));
            }
        });
        let start = Instant::now();
        let out = ex.run(&dag, both, &mut env).unwrap().into_table().unwrap();
        let elapsed = start.elapsed();
        assert_eq!(out.num_rows(), 100);
        assert!(elapsed >= Duration::from_millis(120));
        // Serial execution would take >= 240ms; allow generous headroom
        // for the surrounding (fast) load and concat work.
        assert!(
            elapsed < Duration::from_millis(220),
            "branches did not overlap: {elapsed:?}"
        );
    }

    /// Warm `table_of` calls share one allocation with the cache — a
    /// pointer copy, not a deep clone.
    #[test]
    fn warm_table_of_is_zero_copy() {
        let mut env = env_with_table();
        let (dag, load) = load_dag();
        let mut ex = Executor::new();
        let first = ex.table_of(&dag, load, &mut env).unwrap();
        let second = ex.table_of(&dag, load, &mut env).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(ex.stats.nodes_executed, 1);
    }
}
