//! # dc-skills — the skill layer (§2 of the paper)
//!
//! DataChat's core abstraction: ~50 high-level, declarative [`skill`]s
//! organized into the categories of Table 1. Users (or the GEL parser, the
//! Python API, or NL2Code) build a lazy [`dag::SkillDag`]; execution
//! converts it to tasks:
//!
//! * [`planner`] — consolidates SQL-able runs into single flattened SQL
//!   queries (Figure 4) via `dc-sql`'s generator;
//! * [`exec`] — the interpreter with a shared sub-DAG result cache
//!   (§2.2's caching layer);
//! * [`slicing`] — dead-step elimination plus adjacent-call merging, so
//!   saved artifacts carry minimal recipes (Figure 5);
//! * [`env`] — the world skills run against (catalog, snapshots, virtual
//!   files/URLs, models, phrase definitions);
//! * [`resilient`] — fault-tolerant execution: retry with backoff,
//!   per-node budgets, panic isolation, degraded scans, and
//!   checkpointed resume over the same wave scheduler.

pub mod cache;
pub mod dag;
pub mod env;
pub mod error;
pub mod exec;
pub mod exec_plan;
pub mod optimize;
pub mod output;
pub mod planner;
pub mod pushdown;
pub mod resilient;
pub mod skill;
pub mod slicing;

pub use cache::{CacheHit, CacheStats, MaterializedCache, SharedKey, TenantCacheStats};
pub use dag::{NodeId, SkillDag, SkillNode};
pub use env::{Env, ScanTally};
pub use error::{Result, SkillError};
pub use exec::{
    execute_call, execute_pure_call, needs_env, structural_ids, Executor, ExecutorStats, SubDagId,
};
pub use exec_plan::{run_planned, PlannedStats};
pub use optimize::{
    int_blocks_unique, join_order_advice, optimize_dag, JoinOrderAdvice, PlanStats,
};
pub use output::SkillOutput;
pub use planner::{plan, ExecutionTask};
pub use pushdown::{plan_linear_pushdown, plan_pushdown};
pub use resilient::{ExecPolicy, ExecReport, NodeOutcome, NodeReport, RetryPolicy};
pub use skill::{registry, Category, DatePart, SkillCall, SkillInfo};
pub use slicing::{slice, sliced_recipe, SliceStats};
