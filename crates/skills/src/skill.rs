//! The skill vocabulary.
//!
//! §2.1: "DataChat simplifies data science functions into a set of around
//! 50 high-level skills." [`SkillCall`] is one parameterized invocation;
//! [`registry`] enumerates the full catalog with categories (Table 1).

use dc_engine::{AggFunc, AggSpec, DataType, Expr, JoinType, Value};
use dc_ml::{MlMethod, OutlierMethod};
use dc_viz::ChartType;

/// Skill categories (the rows of Table 1, plus the platform categories
/// discussed in §2.4/§3/§4.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    DataIngestion,
    DataExploration,
    DataVisualization,
    DataWrangling,
    MachineLearning,
    Sql,
    Collaboration,
}

impl Category {
    /// Display name matching Table 1.
    pub fn display_name(self) -> &'static str {
        match self {
            Category::DataIngestion => "Data Ingestion",
            Category::DataExploration => "Data Exploration",
            Category::DataVisualization => "Data Visualization",
            Category::DataWrangling => "Data Wrangling",
            Category::MachineLearning => "Machine Learning",
            Category::Sql => "SQL",
            Category::Collaboration => "Collaboration",
        }
    }

    /// All categories.
    pub fn all() -> [Category; 7] {
        [
            Category::DataIngestion,
            Category::DataExploration,
            Category::DataVisualization,
            Category::DataWrangling,
            Category::MachineLearning,
            Category::Sql,
            Category::Collaboration,
        ]
    }
}

/// Date parts extractable by [`SkillCall::ExtractDatePart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatePart {
    Year,
    Month,
    Day,
}

impl DatePart {
    /// Lowercase name used in GEL.
    pub fn name(self) -> &'static str {
        match self {
            DatePart::Year => "year",
            DatePart::Month => "month",
            DatePart::Day => "day",
        }
    }
}

/// One parameterized skill invocation — the unit of the skill DAG, of GEL
/// sentences, and of recipes.
#[derive(Debug, Clone, PartialEq)]
pub enum SkillCall {
    // ----- Data Ingestion -----
    /// `Load data from the file <path>`.
    LoadFile { path: String },
    /// `Load data from the URL <url>` (Figure 2 step 1).
    LoadUrl { url: String },
    /// `Load the table <table> from the database <database>`.
    LoadTable { database: String, table: String },
    /// `Load the table <table> from the database <database> where
    /// <predicate>` — a [`SkillCall::LoadTable`] with a filter pushed
    /// into the storage scan so zone maps can skip blocks. Produced by
    /// the executor's pushdown rewrite (it is not in the user-facing
    /// registry); the downstream filter still evaluates its full
    /// predicate, so pushing is purely an optimization.
    LoadTableFiltered {
        database: String,
        table: String,
        predicate: Expr,
    },
    /// `Load the columns <columns> of the table <table> from the
    /// database <database> [where <predicate>]` — a
    /// [`SkillCall::LoadTable`] narrowed to the columns the downstream
    /// plan actually touches, optionally carrying a pushed filter.
    /// Produced by the optimizer's projection-pushdown rewrite (not in
    /// the user-facing registry); downstream steps still evaluate their
    /// full logic, so narrowing is purely an optimization.
    LoadTableProjected {
        database: String,
        table: String,
        columns: Vec<String>,
        predicate: Option<Expr>,
    },
    /// `Use the dataset <name>, version <v>` (Figure 2 step 5).
    UseDataset { name: String, version: Option<u64> },
    /// `Use the snapshot <name>` (§3).
    UseSnapshot { name: String },

    // ----- Data Exploration -----
    /// `Describe the column <column>` (Table 1).
    DescribeColumn { column: String },
    /// `Describe the dataset`.
    DescribeDataset,
    /// `List the datasets`.
    ListDatasets,
    /// `Show the first <n> rows`.
    ShowHead { n: usize },
    /// `Count the rows`.
    CountRows,
    /// `Profile the missing values`.
    ProfileMissing,

    // ----- Data Visualization -----
    /// `Visualize <kpi> by <columns>` — auto-charting (Figure 1).
    Visualize { kpi: String, by: Vec<String> },
    /// `Plot a <chart> chart with the x-axis <x>, the y-axis <y>, ...`
    /// (Figure 2 step 10).
    Plot {
        chart: ChartType,
        x: Option<String>,
        y: Option<String>,
        color: Option<String>,
        size: Option<String>,
        for_each: Option<String>,
    },

    // ----- Data Wrangling -----
    /// `Keep the rows where <predicate>`.
    KeepRows { predicate: Expr },
    /// `Drop the rows where <predicate>`.
    DropRows { predicate: Expr },
    /// `Keep the columns <columns>` (Figure 2 steps 4/7).
    KeepColumns { columns: Vec<String> },
    /// `Drop the columns <columns>`.
    DropColumns { columns: Vec<String> },
    /// `Rename the column <from> to <to>`.
    RenameColumn { from: String, to: String },
    /// `Create a new column <name> as <expression>`.
    CreateColumn { name: String, expr: Expr },
    /// `Create a new column <name> with text <value>` (Figure 2 step 6).
    CreateConstantColumn { name: String, value: Value },
    /// `Compute the <aggregate> of <column> for each <keys>` (Figure 3).
    Compute {
        aggs: Vec<AggSpec>,
        for_each: Vec<String>,
    },
    /// `Pivot on <index> by <columns> using <agg> of <values>`.
    Pivot {
        index: String,
        columns: String,
        values: String,
        agg: AggFunc,
    },
    /// `Sort by <keys>`.
    Sort { keys: Vec<(String, bool)> },
    /// `Keep the top <n> rows by <column>`.
    Top { column: String, n: usize },
    /// `Keep the first <n> rows`.
    Limit { n: usize },
    /// `Concatenate the datasets <self> and <other> [remove all
    /// duplicates]` (Figure 2 step 8).
    Concat {
        other: String,
        remove_duplicates: bool,
    },
    /// `Join with the dataset <other> on <keys>`.
    Join {
        other: String,
        left_on: Vec<String>,
        right_on: Vec<String>,
        how: JoinType,
    },
    /// `Remove duplicate rows [based on <columns>]`.
    Distinct { columns: Vec<String> },
    /// `Drop the rows with missing <columns>`.
    DropMissing { columns: Vec<String> },
    /// `Fill the missing values of <column> with <value>`.
    FillMissing { column: String, value: Value },
    /// `Replace <from> with <to> in the column <column>`.
    ReplaceValues {
        column: String,
        from: Value,
        to: Value,
    },
    /// `Change the type of <column> to <type>`.
    CastColumn { column: String, to: DataType },
    /// `Bin the column <column> with width <width>` (party_ageInt20).
    BinColumn {
        column: String,
        width: i64,
        name: Option<String>,
    },
    /// `Extract the <part> of <column>`.
    ExtractDatePart {
        column: String,
        part: DatePart,
        name: Option<String>,
    },
    /// `Trim whitespace in the column <column>`.
    TrimColumn { column: String },
    /// `Sample <fraction> of the rows` (§3).
    Sample { fraction: f64, seed: u64 },
    /// `Shuffle the rows`.
    ShuffleRows { seed: u64 },

    // ----- Machine Learning -----
    /// `Train a model to predict <target>` (Table 1).
    TrainModel {
        name: String,
        target: String,
        features: Vec<String>,
        method: MlMethod,
    },
    /// `Predict with the model <model>`.
    Predict { model: String },
    /// `Predict time series with measure columns <measures> for the next
    /// <horizon> values of <time_column>` (Figure 2 step 3).
    PredictTimeSeries {
        measures: Vec<String>,
        horizon: usize,
        time_column: String,
    },
    /// `Detect outliers in the column <column>`.
    DetectOutliers {
        column: String,
        method: OutlierMethod,
    },
    /// `Cluster the rows into <k> groups using <features>`.
    Cluster { k: usize, features: Vec<String> },
    /// `Evaluate the model <model> against <target>`.
    EvaluateModel { model: String, target: String },

    // ----- SQL -----
    /// `Run the SQL query <query>`.
    RunSql { query: String },
    /// `Export the dataset as CSV`.
    ExportCsv,

    // ----- Collaboration / platform -----
    /// `Save this as <name>` — persist the current result as an artifact.
    SaveArtifact { name: String },
    /// `Snapshot this as <name>` (§3).
    Snapshot { name: String },
    /// `Define <phrase> as <expansion>` (§4.8's semantic-layer skill).
    Define { phrase: String, expansion: String },
    /// `Comment: <text>` — a recipe annotation with no data effect.
    Comment { text: String },
    /// `Share the artifact <artifact> with <user>`.
    ShareArtifact { artifact: String, with_user: String },
}

impl SkillCall {
    /// The category this call belongs to.
    pub fn category(&self) -> Category {
        use SkillCall::*;
        match self {
            LoadFile { .. }
            | LoadUrl { .. }
            | LoadTable { .. }
            | LoadTableFiltered { .. }
            | LoadTableProjected { .. }
            | UseDataset { .. }
            | UseSnapshot { .. } => Category::DataIngestion,
            DescribeColumn { .. }
            | DescribeDataset
            | ListDatasets
            | ShowHead { .. }
            | CountRows
            | ProfileMissing => Category::DataExploration,
            Visualize { .. } | Plot { .. } => Category::DataVisualization,
            KeepRows { .. }
            | DropRows { .. }
            | KeepColumns { .. }
            | DropColumns { .. }
            | RenameColumn { .. }
            | CreateColumn { .. }
            | CreateConstantColumn { .. }
            | Compute { .. }
            | Pivot { .. }
            | Sort { .. }
            | Top { .. }
            | Limit { .. }
            | Concat { .. }
            | Join { .. }
            | Distinct { .. }
            | DropMissing { .. }
            | FillMissing { .. }
            | ReplaceValues { .. }
            | CastColumn { .. }
            | BinColumn { .. }
            | ExtractDatePart { .. }
            | TrimColumn { .. }
            | Sample { .. }
            | ShuffleRows { .. } => Category::DataWrangling,
            TrainModel { .. }
            | Predict { .. }
            | PredictTimeSeries { .. }
            | DetectOutliers { .. }
            | Cluster { .. }
            | EvaluateModel { .. } => Category::MachineLearning,
            RunSql { .. } | ExportCsv => Category::Sql,
            SaveArtifact { .. }
            | Snapshot { .. }
            | Define { .. }
            | Comment { .. }
            | ShareArtifact { .. } => Category::Collaboration,
        }
    }

    /// Stable skill name (matches the registry).
    pub fn name(&self) -> &'static str {
        use SkillCall::*;
        match self {
            LoadFile { .. } => "LoadFile",
            LoadUrl { .. } => "LoadUrl",
            LoadTable { .. } => "LoadTable",
            LoadTableFiltered { .. } => "LoadTableFiltered",
            LoadTableProjected { .. } => "LoadTableProjected",
            UseDataset { .. } => "UseDataset",
            UseSnapshot { .. } => "UseSnapshot",
            DescribeColumn { .. } => "DescribeColumn",
            DescribeDataset => "DescribeDataset",
            ListDatasets => "ListDatasets",
            ShowHead { .. } => "ShowHead",
            CountRows => "CountRows",
            ProfileMissing => "ProfileMissing",
            Visualize { .. } => "Visualize",
            Plot { .. } => "Plot",
            KeepRows { .. } => "KeepRows",
            DropRows { .. } => "DropRows",
            KeepColumns { .. } => "KeepColumns",
            DropColumns { .. } => "DropColumns",
            RenameColumn { .. } => "RenameColumn",
            CreateColumn { .. } => "CreateColumn",
            CreateConstantColumn { .. } => "CreateConstantColumn",
            Compute { .. } => "Compute",
            Pivot { .. } => "Pivot",
            Sort { .. } => "Sort",
            Top { .. } => "Top",
            Limit { .. } => "Limit",
            Concat { .. } => "Concat",
            Join { .. } => "Join",
            Distinct { .. } => "Distinct",
            DropMissing { .. } => "DropMissing",
            FillMissing { .. } => "FillMissing",
            ReplaceValues { .. } => "ReplaceValues",
            CastColumn { .. } => "CastColumn",
            BinColumn { .. } => "BinColumn",
            ExtractDatePart { .. } => "ExtractDatePart",
            TrimColumn { .. } => "TrimColumn",
            Sample { .. } => "Sample",
            ShuffleRows { .. } => "ShuffleRows",
            TrainModel { .. } => "TrainModel",
            Predict { .. } => "Predict",
            PredictTimeSeries { .. } => "PredictTimeSeries",
            DetectOutliers { .. } => "DetectOutliers",
            Cluster { .. } => "Cluster",
            EvaluateModel { .. } => "EvaluateModel",
            RunSql { .. } => "RunSql",
            ExportCsv => "ExportCsv",
            SaveArtifact { .. } => "SaveArtifact",
            Snapshot { .. } => "Snapshot",
            Define { .. } => "Define",
            Comment { .. } => "Comment",
            ShareArtifact { .. } => "ShareArtifact",
        }
    }

    /// Whether this skill consumes an input dataset (false for sources
    /// and catalog-level skills).
    pub fn needs_input(&self) -> bool {
        use SkillCall::*;
        !matches!(
            self,
            LoadFile { .. }
                | LoadUrl { .. }
                | LoadTable { .. }
                | LoadTableFiltered { .. }
                | LoadTableProjected { .. }
                | UseDataset { .. }
                | UseSnapshot { .. }
                | ListDatasets
                | Define { .. }
                | Comment { .. }
                | ShareArtifact { .. }
                | RunSql { .. }
        )
    }

    /// Whether the skill transforms data (vs. producing a side artifact
    /// like a description, chart, or share). Non-transforming skills pass
    /// their input through, so slicing can drop them from data lineage.
    pub fn transforms_data(&self) -> bool {
        use SkillCall::*;
        !matches!(
            self,
            DescribeColumn { .. }
                | DescribeDataset
                | ListDatasets
                | ShowHead { .. }
                | CountRows
                | ProfileMissing
                | Visualize { .. }
                | Plot { .. }
                | ExportCsv
                | SaveArtifact { .. }
                | Snapshot { .. }
                | Define { .. }
                | Comment { .. }
                | ShareArtifact { .. }
                | EvaluateModel { .. }
        )
    }

    /// A canonical, deterministic description of the call including all
    /// parameters — the basis of sub-DAG cache keys.
    pub fn cache_key(&self) -> String {
        format!("{self:?}")
    }
}

/// One registry entry: a skill the platform advertises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkillInfo {
    pub name: &'static str,
    pub category: Category,
    /// The GEL template users see in autocomplete.
    pub gel_template: &'static str,
}

/// The full skill catalog (Table 1's "around 50 high-level skills").
pub fn registry() -> Vec<SkillInfo> {
    use Category::*;
    let e = |name, category, gel_template| SkillInfo {
        name,
        category,
        gel_template,
    };
    vec![
        e("LoadFile", DataIngestion, "Load data from the file <file name>"),
        e("LoadUrl", DataIngestion, "Load data from the URL <url>"),
        e("LoadTable", DataIngestion, "Load the table <table> from the database <database>"),
        e("UseDataset", DataIngestion, "Use the dataset <name>, version <version>"),
        e("UseSnapshot", DataIngestion, "Use the snapshot <name>"),
        e("DescribeColumn", DataExploration, "Describe the column <column>"),
        e("DescribeDataset", DataExploration, "Describe the dataset"),
        e("ListDatasets", DataExploration, "List the datasets"),
        e("ShowHead", DataExploration, "Show the first <n> rows"),
        e("CountRows", DataExploration, "Count the rows"),
        e("ProfileMissing", DataExploration, "Profile the missing values"),
        e("Visualize", DataVisualization, "Visualize <kpi column> using <column>"),
        e("Plot", DataVisualization, "Plot a <chart> chart with the x-axis <x>, the y-axis <y>"),
        e("KeepRows", DataWrangling, "Keep the rows where <condition>"),
        e("DropRows", DataWrangling, "Drop the rows where <condition>"),
        e("KeepColumns", DataWrangling, "Keep the columns <columns>"),
        e("DropColumns", DataWrangling, "Drop the columns <columns>"),
        e("RenameColumn", DataWrangling, "Rename the column <from> to <to>"),
        e("CreateColumn", DataWrangling, "Create a new column <name> as <expression>"),
        e("CreateConstantColumn", DataWrangling, "Create a new column <name> with text <value>"),
        e("Compute", DataWrangling, "Compute the <aggregate> of <column> for each <columns>"),
        e("Pivot", DataWrangling, "Pivot on <index> by <columns> using the <aggregate> of <values>"),
        e("Sort", DataWrangling, "Sort by <columns>"),
        e("Top", DataWrangling, "Keep the top <n> rows by <column>"),
        e("Limit", DataWrangling, "Keep the first <n> rows"),
        e("Concat", DataWrangling, "Concatenate the datasets <a> and <b>"),
        e("Join", DataWrangling, "Join with the dataset <other> on <columns>"),
        e("Distinct", DataWrangling, "Remove duplicate rows"),
        e("DropMissing", DataWrangling, "Drop the rows with missing <columns>"),
        e("FillMissing", DataWrangling, "Fill the missing values of <column> with <value>"),
        e("ReplaceValues", DataWrangling, "Replace <from> with <to> in the column <column>"),
        e("CastColumn", DataWrangling, "Change the type of <column> to <type>"),
        e("BinColumn", DataWrangling, "Bin the column <column> with width <width>"),
        e("ExtractDatePart", DataWrangling, "Extract the <part> of <column>"),
        e("TrimColumn", DataWrangling, "Trim whitespace in the column <column>"),
        e("Sample", DataWrangling, "Sample <percent> of the rows"),
        e("ShuffleRows", DataWrangling, "Shuffle the rows"),
        e("TrainModel", MachineLearning, "Train a model to predict <column>"),
        e("Predict", MachineLearning, "Predict with the model <model>"),
        e(
            "PredictTimeSeries",
            MachineLearning,
            "Predict time series with measure columns <columns> for the next <n> values of <column>",
        ),
        e("DetectOutliers", MachineLearning, "Detect outliers in the column <column>"),
        e("Cluster", MachineLearning, "Cluster the rows into <k> groups using <columns>"),
        e("EvaluateModel", MachineLearning, "Evaluate the model <model> against <column>"),
        e("RunSql", Sql, "Run the SQL query <query>"),
        e("ExportCsv", Sql, "Export the dataset as CSV"),
        e("SaveArtifact", Collaboration, "Save this as <name>"),
        e("Snapshot", Collaboration, "Snapshot this as <name>"),
        e("Define", Collaboration, "Define <phrase> as <expansion>"),
        e("Comment", Collaboration, "Comment: <text>"),
        e("ShareArtifact", Collaboration, "Share the artifact <artifact> with <user>"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_about_fifty_skills() {
        let r = registry();
        assert!(
            (45..=60).contains(&r.len()),
            "paper says ~50 skills, registry has {}",
            r.len()
        );
    }

    #[test]
    fn registry_covers_all_table1_categories() {
        let r = registry();
        for cat in Category::all() {
            assert!(
                r.iter().any(|s| s.category == cat),
                "missing category {cat:?}"
            );
        }
    }

    #[test]
    fn registry_names_unique() {
        let r = registry();
        let mut names: Vec<&str> = r.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), r.len());
    }

    #[test]
    fn call_names_appear_in_registry() {
        let r = registry();
        let calls = [
            SkillCall::LoadFile { path: "x".into() },
            SkillCall::Visualize {
                kpi: "k".into(),
                by: vec![],
            },
            SkillCall::Compute {
                aggs: vec![],
                for_each: vec![],
            },
            SkillCall::TrainModel {
                name: "m".into(),
                target: "t".into(),
                features: vec![],
                method: MlMethod::Auto,
            },
            SkillCall::Define {
                phrase: "p".into(),
                expansion: "e".into(),
            },
        ];
        for c in calls {
            assert!(
                r.iter().any(|s| s.name == c.name()),
                "{} missing from registry",
                c.name()
            );
        }
    }

    #[test]
    fn needs_input_classification() {
        assert!(!SkillCall::LoadFile { path: "x".into() }.needs_input());
        assert!(SkillCall::Limit { n: 3 }.needs_input());
        assert!(!SkillCall::RunSql { query: "q".into() }.needs_input());
    }

    #[test]
    fn transforms_data_classification() {
        assert!(SkillCall::Limit { n: 3 }.transforms_data());
        assert!(!SkillCall::DescribeDataset.transforms_data());
        assert!(!SkillCall::Comment { text: "hi".into() }.transforms_data());
        assert!(SkillCall::Sample {
            fraction: 0.1,
            seed: 0
        }
        .transforms_data());
    }

    #[test]
    fn cache_keys_distinguish_parameters() {
        let a = SkillCall::Limit { n: 3 }.cache_key();
        let b = SkillCall::Limit { n: 4 }.cache_key();
        assert_ne!(a, b);
    }

    #[test]
    fn categories_display_like_table1() {
        assert_eq!(Category::DataWrangling.display_name(), "Data Wrangling");
        assert_eq!(Category::MachineLearning.display_name(), "Machine Learning");
    }
}
