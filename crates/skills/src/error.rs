//! Skill-layer errors.

use std::fmt;

/// Errors from building or executing skill DAGs.
#[derive(Debug, Clone, PartialEq)]
pub enum SkillError {
    /// A referenced dataset/node does not exist.
    DatasetNotFound { name: String },
    /// A referenced DAG node id is invalid.
    NodeNotFound { id: usize },
    /// A referenced model does not exist.
    ModelNotFound { name: String },
    /// A referenced file/URL is not available in the environment.
    SourceNotFound { name: String },
    /// The skill's parameters are invalid.
    InvalidArgument { message: String },
    /// A skill produced the wrong kind of output for its consumer.
    WrongOutputKind { expected: String, actual: String },
    /// A node exceeded its wall-clock budget. Retryable: slow attempts
    /// are usually transient (a stalled block, a throttled scan).
    Timeout { skill: String, budget_ms: u64 },
    /// A skill panicked; the panic was caught at the node boundary so it
    /// poisons only this node, never the scheduler. Not retryable — a
    /// panic is a bug, not weather.
    Panic { skill: String, message: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
    /// Propagated storage failure.
    Storage(dc_storage::StorageError),
    /// Propagated SQL failure.
    Sql(dc_sql::SqlError),
    /// Propagated ML failure.
    Ml(dc_ml::MlError),
    /// Propagated visualization failure.
    Viz(dc_viz::VizError),
}

impl SkillError {
    /// Convenience constructor for [`SkillError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        SkillError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Whether retrying the failed node can plausibly succeed. The
    /// taxonomy threads up from the storage layer: transient storage
    /// faults (directly or via SQL) and timeouts are retryable; logic
    /// errors, panics, and hard outages are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            SkillError::Storage(e) => e.is_retryable(),
            SkillError::Sql(e) => e.is_retryable(),
            SkillError::Engine(dc_engine::EngineError::Spill { retryable, .. }) => *retryable,
            SkillError::Timeout { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for SkillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkillError::DatasetNotFound { name } => write!(f, "dataset not found: {name:?}"),
            SkillError::NodeNotFound { id } => write!(f, "DAG node not found: {id}"),
            SkillError::ModelNotFound { name } => write!(f, "model not found: {name:?}"),
            SkillError::SourceNotFound { name } => write!(f, "source not found: {name:?}"),
            SkillError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            SkillError::WrongOutputKind { expected, actual } => {
                write!(f, "expected {expected} output, got {actual}")
            }
            SkillError::Timeout { skill, budget_ms } => {
                write!(f, "skill {skill} exceeded its {budget_ms}ms budget")
            }
            SkillError::Panic { skill, message } => {
                write!(f, "skill {skill} panicked: {message}")
            }
            SkillError::Engine(e) => write!(f, "engine error: {e}"),
            SkillError::Storage(e) => write!(f, "storage error: {e}"),
            SkillError::Sql(e) => write!(f, "sql error: {e}"),
            SkillError::Ml(e) => write!(f, "ml error: {e}"),
            SkillError::Viz(e) => write!(f, "viz error: {e}"),
        }
    }
}

impl std::error::Error for SkillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SkillError::Engine(e) => Some(e),
            SkillError::Storage(e) => Some(e),
            SkillError::Sql(e) => Some(e),
            SkillError::Ml(e) => Some(e),
            SkillError::Viz(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dc_engine::EngineError> for SkillError {
    fn from(e: dc_engine::EngineError) -> Self {
        SkillError::Engine(e)
    }
}
impl From<dc_storage::StorageError> for SkillError {
    fn from(e: dc_storage::StorageError) -> Self {
        SkillError::Storage(e)
    }
}
impl From<dc_sql::SqlError> for SkillError {
    fn from(e: dc_sql::SqlError) -> Self {
        SkillError::Sql(e)
    }
}
impl From<dc_ml::MlError> for SkillError {
    fn from(e: dc_ml::MlError) -> Self {
        SkillError::Ml(e)
    }
}
impl From<dc_viz::VizError> for SkillError {
    fn from(e: dc_viz::VizError) -> Self {
        SkillError::Viz(e)
    }
}

/// Result alias for the skills crate.
pub type Result<T> = std::result::Result<T, SkillError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_variants() {
        assert!(SkillError::invalid("x").to_string().contains("x"));
        assert!(SkillError::DatasetNotFound { name: "d".into() }
            .to_string()
            .contains("d"));
        let e: SkillError = dc_engine::EngineError::column_not_found("c").into();
        assert!(e.to_string().contains("engine"));
    }

    #[test]
    fn source_chain_is_preserved() {
        // Storage → skill keeps the storage error reachable via source().
        let e: SkillError = dc_storage::StorageError::SnapshotNotFound { name: "s".into() }.into();
        let src = e.source().expect("storage source");
        assert!(src.to_string().contains("snapshot not found"));
        // ML and viz errors are structured, not flattened strings.
        let e: SkillError = dc_ml::MlError::invalid("bad k").into();
        assert!(e.source().unwrap().to_string().contains("bad k"));
        let e: SkillError = dc_viz::VizError::ColumnNotFound { name: "x".into() }.into();
        assert!(e.source().unwrap().to_string().contains("x"));
        // SQL provider errors chain two levels deep: skill → sql → cause.
        let e: SkillError =
            dc_sql::SqlError::provider(dc_engine::EngineError::column_not_found("c"), true).into();
        let sql_src = e.source().expect("sql source");
        assert!(sql_src
            .source()
            .expect("provider source")
            .to_string()
            .contains("c"));
    }

    #[test]
    fn retryable_taxonomy_threads_through() {
        let transient: SkillError = dc_storage::StorageError::Transient {
            operation: "scan".into(),
            message: "flaky".into(),
        }
        .into();
        assert!(transient.is_retryable());
        let outage: SkillError = dc_storage::StorageError::Unavailable {
            operation: "scan".into(),
            message: "down".into(),
        }
        .into();
        assert!(!outage.is_retryable());
        let via_sql: SkillError = dc_sql::SqlError::provider(
            dc_storage::StorageError::Transient {
                operation: "scan".into(),
                message: "flaky".into(),
            },
            true,
        )
        .into();
        assert!(via_sql.is_retryable());
        assert!(SkillError::Timeout {
            skill: "KeepRows".into(),
            budget_ms: 50
        }
        .is_retryable());
        assert!(!SkillError::Panic {
            skill: "KeepRows".into(),
            message: "boom".into()
        }
        .is_retryable());
        assert!(!SkillError::invalid("x").is_retryable());
    }
}
