//! Skill-layer errors.

use std::fmt;

/// Errors from building or executing skill DAGs.
#[derive(Debug, Clone, PartialEq)]
pub enum SkillError {
    /// A referenced dataset/node does not exist.
    DatasetNotFound { name: String },
    /// A referenced DAG node id is invalid.
    NodeNotFound { id: usize },
    /// A referenced model does not exist.
    ModelNotFound { name: String },
    /// A referenced file/URL is not available in the environment.
    SourceNotFound { name: String },
    /// The skill's parameters are invalid.
    InvalidArgument { message: String },
    /// A skill produced the wrong kind of output for its consumer.
    WrongOutputKind { expected: String, actual: String },
    /// Propagated engine failure.
    Engine(dc_engine::EngineError),
    /// Propagated storage failure.
    Storage(dc_storage::StorageError),
    /// Propagated SQL failure.
    Sql(dc_sql::SqlError),
    /// Propagated ML failure.
    Ml(String),
    /// Propagated visualization failure.
    Viz(String),
}

impl SkillError {
    /// Convenience constructor for [`SkillError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        SkillError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for SkillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkillError::DatasetNotFound { name } => write!(f, "dataset not found: {name:?}"),
            SkillError::NodeNotFound { id } => write!(f, "DAG node not found: {id}"),
            SkillError::ModelNotFound { name } => write!(f, "model not found: {name:?}"),
            SkillError::SourceNotFound { name } => write!(f, "source not found: {name:?}"),
            SkillError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            SkillError::WrongOutputKind { expected, actual } => {
                write!(f, "expected {expected} output, got {actual}")
            }
            SkillError::Engine(e) => write!(f, "engine error: {e}"),
            SkillError::Storage(e) => write!(f, "storage error: {e}"),
            SkillError::Sql(e) => write!(f, "sql error: {e}"),
            SkillError::Ml(m) => write!(f, "ml error: {m}"),
            SkillError::Viz(m) => write!(f, "viz error: {m}"),
        }
    }
}

impl std::error::Error for SkillError {}

impl From<dc_engine::EngineError> for SkillError {
    fn from(e: dc_engine::EngineError) -> Self {
        SkillError::Engine(e)
    }
}
impl From<dc_storage::StorageError> for SkillError {
    fn from(e: dc_storage::StorageError) -> Self {
        SkillError::Storage(e)
    }
}
impl From<dc_sql::SqlError> for SkillError {
    fn from(e: dc_sql::SqlError) -> Self {
        SkillError::Sql(e)
    }
}

/// Result alias for the skills crate.
pub type Result<T> = std::result::Result<T, SkillError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SkillError::invalid("x").to_string().contains("x"));
        assert!(SkillError::DatasetNotFound { name: "d".into() }
            .to_string()
            .contains("d"));
        let e: SkillError = dc_engine::EngineError::column_not_found("c").into();
        assert!(e.to_string().contains("engine"));
    }
}
