//! Recipe slicing (§2.3, Figure 5).
//!
//! "When saving an artifact ... the system evaluates which steps in the
//! DAG affect the final artifact. All steps that have no effect are
//! removed prior to saving. Additionally ... some skill calls might be
//! merged if they can be represented by a single skill call."

use crate::dag::{NodeId, SkillDag};
use crate::error::Result;
use crate::skill::SkillCall;

/// Statistics about one slicing pass (reported by the Figure 5 bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Nodes in the original DAG.
    pub original_nodes: usize,
    /// Nodes removed because the artifact does not depend on them.
    pub dead_removed: usize,
    /// Nodes removed because they carry no data effect (comments,
    /// exploration peeks) — the artifact's lineage doesn't need them.
    pub passthrough_removed: usize,
    /// Nodes eliminated by merging adjacent compatible calls.
    pub merged: usize,
    /// Nodes in the sliced recipe.
    pub final_nodes: usize,
}

/// Slice the DAG down to the minimal recipe producing `target`.
///
/// Returns the sliced recipe as a fresh linear-ish DAG (same structure,
/// only live nodes) plus statistics. Secondary inputs (joins, concats)
/// keep their own upstream chains.
pub fn slice(dag: &SkillDag, target: NodeId) -> Result<(SkillDag, SliceStats)> {
    let mut stats = SliceStats {
        original_nodes: dag.len(),
        ..SliceStats::default()
    };

    // 1. Dead-step elimination: keep only ancestors of the target.
    let live = dag.ancestors(target)?;
    stats.dead_removed = dag.len() - live.len();

    // 2. Drop non-transforming pass-through steps from the lineage
    //    (except the target itself, which may be the artifact step).
    let mut kept: Vec<NodeId> = Vec::with_capacity(live.len());
    for &id in &live {
        let node = dag.node(id)?;
        if id != target && !node.call.transforms_data() && !node.inputs.is_empty() {
            stats.passthrough_removed += 1;
            continue;
        }
        kept.push(id);
    }

    // Remap inputs through dropped pass-through nodes.
    let resolve = |mut id: NodeId| -> Result<NodeId> {
        loop {
            let node = dag.node(id)?;
            if id != target && !node.call.transforms_data() && !node.inputs.is_empty() {
                id = node.inputs[0];
            } else {
                return Ok(id);
            }
        }
    };

    // 3. Merge adjacent compatible calls along primary edges. Build the
    //    new call list first, merging into predecessors where legal.
    #[derive(Debug)]
    struct Pending {
        source: NodeId,
        call: SkillCall,
        inputs: Vec<NodeId>, // original ids, resolved
    }
    let mut pending: Vec<Pending> = Vec::new();
    // index of pending entry by original node id
    let mut where_is: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();

    for &id in &kept {
        let node = dag.node(id)?;
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|&i| resolve(i))
            .collect::<Result<_>>()?;
        // Try to merge with the pending entry producing our primary input,
        // but only when we are its sole consumer candidate in `kept`
        // (merging under fan-out would change the shared result).
        let consumers_of_input = |inp: NodeId| {
            kept.iter()
                .filter(|&&k| {
                    dag.node(k)
                        .map(|n| {
                            n.inputs
                                .iter()
                                .any(|&i| resolve(i).unwrap_or(usize::MAX) == inp)
                        })
                        .unwrap_or(false)
                })
                .count()
        };
        let merged = if let Some(&first) = inputs.first() {
            if consumers_of_input(first) == 1 {
                where_is
                    .get(&first)
                    .copied()
                    .and_then(|pi| merge_calls(&pending[pi].call, &node.call).map(|m| (pi, m)))
            } else {
                None
            }
        } else {
            None
        };
        match merged {
            Some((pi, merged_call)) => {
                pending[pi].call = merged_call;
                pending[pi].source = id;
                stats.merged += 1;
                where_is.insert(id, pi);
            }
            None => {
                let idx = pending.len();
                pending.push(Pending {
                    source: id,
                    call: node.call.clone(),
                    inputs,
                });
                where_is.insert(id, idx);
            }
        }
    }

    // 4. Materialize the sliced DAG.
    let mut out = SkillDag::new();
    let mut new_id: std::collections::HashMap<usize, NodeId> = std::collections::HashMap::new();
    for (idx, p) in pending.iter().enumerate() {
        let inputs: Vec<NodeId> = p
            .inputs
            .iter()
            .filter_map(|orig| where_is.get(orig).and_then(|pi| new_id.get(pi)).copied())
            .collect();
        let nid = out.add(p.call.clone(), inputs)?;
        new_id.insert(idx, nid);
    }
    stats.final_nodes = out.len();
    Ok((out, stats))
}

/// Merge two adjacent calls into one when a single skill call expresses
/// both. Returns the merged call, or `None` when they must stay separate.
fn merge_calls(first: &SkillCall, second: &SkillCall) -> Option<SkillCall> {
    use SkillCall::*;
    match (first, second) {
        // Consecutive projections: the later one wins (it must be a
        // subset for the recipe to have been valid).
        (KeepColumns { .. }, KeepColumns { columns }) => Some(KeepColumns {
            columns: columns.clone(),
        }),
        // Consecutive filters conjoin.
        (KeepRows { predicate: a }, KeepRows { predicate: b }) => Some(KeepRows {
            predicate: a.clone().and(b.clone()),
        }),
        (DropRows { predicate: a }, DropRows { predicate: b }) => Some(DropRows {
            predicate: a.clone().or(b.clone()),
        }),
        // Consecutive limits keep the minimum.
        (Limit { n: a }, Limit { n: b }) => Some(Limit { n: (*a).min(*b) }),
        // A later sort supersedes an earlier one.
        (Sort { .. }, Sort { keys }) => Some(Sort { keys: keys.clone() }),
        // Distinct twice is Distinct once (same column set only).
        (Distinct { columns: a }, Distinct { columns: b }) if a == b => {
            Some(Distinct { columns: a.clone() })
        }
        // Fill-missing twice on the same column: later value wins.
        (FillMissing { column: c1, .. }, FillMissing { column: c2, value })
            if c1.eq_ignore_ascii_case(c2) =>
        {
            Some(FillMissing {
                column: c2.clone(),
                value: value.clone(),
            })
        }
        // Rename chains collapse a→b, b→c into a→c.
        (RenameColumn { from, to }, RenameColumn { from: f2, to: t2 })
            if to.eq_ignore_ascii_case(f2) =>
        {
            Some(RenameColumn {
                from: from.clone(),
                to: t2.clone(),
            })
        }
        // Constant column overwritten by another constant of the same name.
        (CreateConstantColumn { name: n1, .. }, CreateConstantColumn { name: n2, value })
            if n1.eq_ignore_ascii_case(n2) =>
        {
            Some(CreateConstantColumn {
                name: n2.clone(),
                value: value.clone(),
            })
        }
        _ => None,
    }
}

/// Convenience: the sliced recipe as a call list in execution order.
pub fn sliced_recipe(dag: &SkillDag, target: NodeId) -> Result<Vec<SkillCall>> {
    let (sliced, _) = slice(dag, target)?;
    Ok(sliced.nodes().iter().map(|n| n.call.clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Expr;

    fn load() -> SkillCall {
        SkillCall::LoadTable {
            database: "db".into(),
            table: "t".into(),
        }
    }

    #[test]
    fn figure5_exploratory_dag_slims_down() {
        // An exploratory session: load, describe, dead sort branch,
        // filter, peek, filter again, limit — saved artifact at the end.
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let _describe = dag.add(SkillCall::DescribeDataset, vec![l]).unwrap();
        let dead = dag
            .add(
                SkillCall::Sort {
                    keys: vec![("x".into(), true)],
                },
                vec![l],
            )
            .unwrap();
        let _dead2 = dag.add(SkillCall::Limit { n: 3 }, vec![dead]).unwrap();
        let f1 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(1i64)),
                },
                vec![l],
            )
            .unwrap();
        let peek = dag.add(SkillCall::ShowHead { n: 5 }, vec![f1]).unwrap();
        let f2 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("y").lt(Expr::lit(9i64)),
                },
                vec![peek],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 10 }, vec![f2]).unwrap();

        let (sliced, stats) = slice(&dag, lim).unwrap();
        assert_eq!(stats.original_nodes, 8);
        assert_eq!(stats.dead_removed, 3); // describe + dead sort + dead limit
        assert_eq!(stats.passthrough_removed, 1); // the ShowHead peek
        assert_eq!(stats.merged, 1); // the two filters conjoin
        assert_eq!(stats.final_nodes, 3); // load, merged filter, limit
        let calls: Vec<&str> = sliced.nodes().iter().map(|n| n.call.name()).collect();
        assert_eq!(calls, vec!["LoadTable", "KeepRows", "Limit"]);
        match &sliced.nodes()[1].call {
            SkillCall::KeepRows { predicate } => {
                assert_eq!(predicate.to_sql(), "((x > 1) AND (y < 9))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn projection_chain_merges_to_last() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = dag
            .add(
                SkillCall::KeepColumns {
                    columns: vec!["a".into(), "b".into(), "c".into()],
                },
                vec![l],
            )
            .unwrap();
        let b = dag
            .add(
                SkillCall::KeepColumns {
                    columns: vec!["a".into()],
                },
                vec![a],
            )
            .unwrap();
        let recipe = sliced_recipe(&dag, b).unwrap();
        assert_eq!(recipe.len(), 2);
        assert_eq!(
            recipe[1],
            SkillCall::KeepColumns {
                columns: vec!["a".into()]
            }
        );
    }

    #[test]
    fn fanout_prevents_merging() {
        // Two consumers of the first filter: merging would change the
        // shared intermediate.
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let f1 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(1i64)),
                },
                vec![l],
            )
            .unwrap();
        let f2 = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("y").gt(Expr::lit(2i64)),
                },
                vec![f1],
            )
            .unwrap();
        let other = dag.add(SkillCall::Limit { n: 1 }, vec![f1]).unwrap();
        let joined = dag
            .add(
                SkillCall::Concat {
                    other: "x".into(),
                    remove_duplicates: false,
                },
                vec![f2, other],
            )
            .unwrap();
        let (sliced, stats) = slice(&dag, joined).unwrap();
        assert_eq!(stats.merged, 0);
        assert_eq!(sliced.len(), 5);
    }

    #[test]
    fn limits_merge_to_minimum() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = dag.add(SkillCall::Limit { n: 100 }, vec![l]).unwrap();
        let b = dag.add(SkillCall::Limit { n: 7 }, vec![a]).unwrap();
        let recipe = sliced_recipe(&dag, b).unwrap();
        assert_eq!(recipe[1], SkillCall::Limit { n: 7 });
        assert_eq!(recipe.len(), 2);
    }

    #[test]
    fn rename_chain_collapses() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = dag
            .add(
                SkillCall::RenameColumn {
                    from: "a".into(),
                    to: "b".into(),
                },
                vec![l],
            )
            .unwrap();
        let b = dag
            .add(
                SkillCall::RenameColumn {
                    from: "b".into(),
                    to: "c".into(),
                },
                vec![a],
            )
            .unwrap();
        let recipe = sliced_recipe(&dag, b).unwrap();
        assert_eq!(
            recipe[1],
            SkillCall::RenameColumn {
                from: "a".into(),
                to: "c".into()
            }
        );
    }

    #[test]
    fn unrelated_renames_do_not_merge() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let a = dag
            .add(
                SkillCall::RenameColumn {
                    from: "a".into(),
                    to: "b".into(),
                },
                vec![l],
            )
            .unwrap();
        let b = dag
            .add(
                SkillCall::RenameColumn {
                    from: "x".into(),
                    to: "y".into(),
                },
                vec![a],
            )
            .unwrap();
        assert_eq!(sliced_recipe(&dag, b).unwrap().len(), 3);
    }

    #[test]
    fn join_branches_both_survive() {
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let r = dag
            .add(
                SkillCall::LoadFile {
                    path: "o.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let rf = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("k").gt(Expr::lit(0i64)),
                },
                vec![r],
            )
            .unwrap();
        let j = dag
            .add(
                SkillCall::Join {
                    other: "o".into(),
                    left_on: vec!["k".into()],
                    right_on: vec!["k".into()],
                    how: dc_engine::JoinType::Inner,
                },
                vec![l, rf],
            )
            .unwrap();
        let (sliced, _) = slice(&dag, j).unwrap();
        assert_eq!(sliced.len(), 4);
        // The join node's second input points at the filtered branch.
        let join_node = sliced.nodes().last().unwrap();
        assert_eq!(join_node.inputs.len(), 2);
    }

    #[test]
    fn target_passthrough_survives() {
        // Slicing an artifact whose final step is a chart keeps the chart.
        let mut dag = SkillDag::new();
        let l = dag.add(load(), vec![]).unwrap();
        let viz = dag
            .add(
                SkillCall::Visualize {
                    kpi: "x".into(),
                    by: vec![],
                },
                vec![l],
            )
            .unwrap();
        let recipe = sliced_recipe(&dag, viz).unwrap();
        assert_eq!(recipe.len(), 2);
        assert_eq!(recipe[1].name(), "Visualize");
    }
}
