//! Resilient DAG execution: retry, timeouts, panic isolation, degraded
//! scans, and checkpointed resume.
//!
//! [`Executor::run`] assumes every node either succeeds or is fatally
//! wrong — one transient storage fault kills the whole recipe.
//! [`Executor::run_resilient`] executes the same waves under an
//! [`ExecPolicy`]:
//!
//! * **retry** — nodes failing with a retryable error (see
//!   [`SkillError::is_retryable`]) re-execute with exponential backoff
//!   plus deterministic jitter;
//! * **budget** — each attempt gets a wall-clock budget; storage scans
//!   observe it cooperatively through the environment's
//!   [`dc_storage::CancelToken`], pure compute is timed post-hoc; either
//!   way an over-budget attempt becomes a retryable timeout;
//! * **panic isolation** — every attempt runs under `catch_unwind`, so a
//!   panicking skill poisons its node (and dependents), never the
//!   scheduler or sibling nodes in the same wave;
//! * **degraded scans** — after `degrade_after` failed full-scan
//!   attempts, a `LoadTable` node falls back to a block-sampled scan
//!   (§3's cheap path) and its result is flagged `degraded`;
//! * **checkpointed resume** — completed results stay in the structural
//!   sub-DAG cache, so calling [`Executor::resume`] after a failure
//!   re-executes exactly the failed frontier and its dependents.
//!
//! The whole run is summarized in an [`ExecReport`]: per-node attempts,
//! faults absorbed, degraded flags, and wall time.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_engine::{MemContext, SpillSnapshot, Table};
use dc_storage::{CancelToken, ScanOptions};

use crate::cache::MaterializedCache;
use crate::dag::{NodeId, SkillDag};
use crate::env::Env;
use crate::error::{Result, SkillError};
use crate::exec::{
    execute_call, execute_pure_call_with_mem, needs_env, BeforeExecuteHook, Executor, Interned,
    SubDagId,
};
use crate::output::SkillOutput;
use crate::skill::SkillCall;

/// Retry schedule for retryable node failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per node (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter mixed into each backoff.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(16),
            jitter_seed: 0x5EED,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (the attempt that just
    /// failed, 1-based) of `node`: `base * 2^(attempt-1)` capped at
    /// `max_backoff`, plus up to +50% deterministic jitter derived from
    /// `(jitter_seed, node, attempt)` — identical inputs always sleep
    /// identically, so chaos runs replay exactly.
    pub fn backoff(&self, node: NodeId, attempt: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
        let capped = doubled.min(self.max_backoff);
        let half = (capped.as_nanos() as u64) / 2;
        if half == 0 {
            return capped;
        }
        let h = splitmix64(self.jitter_seed ^ (node as u64) ^ ((attempt as u64) << 32));
        capped + Duration::from_nanos(h % (half + 1))
    }
}

/// Everything the resilient executor is allowed to do about failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPolicy {
    /// Retry schedule for retryable errors.
    pub retry: RetryPolicy,
    /// Per-attempt wall-clock budget. `None` = unbounded.
    pub node_budget: Option<Duration>,
    /// Whole-run wall-clock slice. Once it expires mid-run, nodes that
    /// have not started yet fail fast with a retryable
    /// [`SkillError::Timeout`] at **zero attempts**, while everything
    /// that already completed stays checkpointed in the cache — so
    /// [`Executor::resume`] picks up exactly where the slice ended.
    /// Scans started inside the slice are armed with the remaining time
    /// and cancel cooperatively at block boundaries; pure compute that
    /// already started is allowed to finish and commit (work is never
    /// thrown away retroactively). This is the preemption hook a serving
    /// layer uses for time-sliced fair scheduling. `None` = unbounded.
    pub run_budget: Option<Duration>,
    /// After this many failed full-scan attempts, a `LoadTable` node
    /// retries as a block-sampled scan and marks its result degraded.
    /// `None` disables degradation.
    pub degrade_after: Option<u32>,
    /// Block fraction for degraded scans.
    pub degraded_fraction: f64,
    /// Seed for degraded-scan block choices.
    pub degraded_seed: u64,
    /// Whether the cost-based optimizer pass ([`crate::optimize`]) runs
    /// over the DAG before pushdown planning. On by default; the
    /// rewrites are invisible to results and preserve node ids, so
    /// per-node reporting and preflight estimates are unaffected.
    pub optimize: bool,
    /// Out-of-core memory budget in bytes for operator state (hash
    /// tables, aggregation state, sort buffers). When set and the
    /// environment carries no [`MemContext`] of its own, the run installs
    /// a fresh context (budget + temp spill directory, removed at run
    /// end) so join/group-by/sort spill instead of exceeding the budget.
    /// `None` = unbounded in-memory execution.
    pub mem_budget: Option<u64>,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            retry: RetryPolicy::default(),
            node_budget: None,
            run_budget: None,
            degrade_after: None,
            degraded_fraction: 0.2,
            degraded_seed: 7,
            optimize: true,
            mem_budget: None,
        }
    }
}

/// How one node ended up.
#[derive(Debug, Clone)]
pub enum NodeOutcome {
    /// Executed successfully (possibly after retries).
    Ok,
    /// Served from the structural sub-DAG cache (includes results
    /// checkpointed by an earlier, partially failed run).
    CacheHit,
    /// All attempts exhausted (or a non-retryable error/panic).
    Failed(SkillError),
    /// Not attempted because an input node failed or was skipped.
    Skipped { blocked_on: NodeId },
}

/// Per-node resilience accounting.
#[derive(Debug, Clone)]
pub struct NodeReport {
    pub node: NodeId,
    /// Skill name, for human-readable summaries.
    pub skill: String,
    pub outcome: NodeOutcome,
    /// Execution attempts made (0 for cache hits and skips).
    pub attempts: u32,
    /// Retryable failures absorbed by retry/degradation instead of
    /// surfacing to the user.
    pub faults_absorbed: u32,
    /// Whether the result came from a degraded (block-sampled) scan.
    pub degraded: bool,
    /// Wall time spent on this node across all attempts and backoffs.
    pub wall: Duration,
    /// Storage bytes this node's scans charged (all attempts).
    pub bytes_scanned: u64,
    /// Storage bytes zone-map pruning saved this node's scans.
    pub bytes_pruned: u64,
    /// Statically estimated scan-byte upper bound for this node, when a
    /// preflight analysis supplied one (0 otherwise). Comparing against
    /// `bytes_scanned` gives the estimator's q-error per node.
    pub bytes_estimated: u64,
    /// Bytes this node's operators wrote to spill files (all attempts).
    /// Under the parallel wave scheduler attribution is best-effort:
    /// concurrently spilling siblings may book into each other's delta,
    /// but [`ExecReport::bytes_spilled`] stays exact run-wide.
    pub bytes_spilled: u64,
    /// Spill partitions / sort runs this node wrote (same caveat).
    pub spill_partitions: u64,
}

impl NodeReport {
    fn new(node: NodeId, skill: &str, outcome: NodeOutcome) -> NodeReport {
        NodeReport {
            node,
            skill: skill.to_string(),
            outcome,
            attempts: 0,
            faults_absorbed: 0,
            degraded: false,
            wall: Duration::ZERO,
            bytes_scanned: 0,
            bytes_pruned: 0,
            bytes_estimated: 0,
            bytes_spilled: 0,
            spill_partitions: 0,
        }
    }
}

/// The observable summary of one resilient run.
#[derive(Debug)]
pub struct ExecReport {
    /// The requested node.
    pub target: NodeId,
    /// The target's output, when the run reached it.
    pub output: Option<SkillOutput>,
    /// Per-node reports, in topological order of the executed slice.
    pub nodes: Vec<NodeReport>,
    /// Sub-DAG results this run served from a cache tier (local or
    /// cross-session) instead of executing.
    pub cache_hits: u64,
    /// Scan footprint (`bytes_scanned + bytes_pruned`) those hits
    /// avoided re-charging against storage.
    pub bytes_saved: u64,
    /// Bytes written to spill files across the whole run (exact: measured
    /// as a delta on the run's shared spill metrics).
    pub bytes_spilled: u64,
    /// Spill partitions / sort runs written across the whole run.
    pub spill_partitions: u64,
}

impl ExecReport {
    /// Whether the target produced an output.
    pub fn succeeded(&self) -> bool {
        self.output.is_some()
    }

    /// The report for one node.
    pub fn node(&self, id: NodeId) -> Option<&NodeReport> {
        self.nodes.iter().find(|n| n.node == id)
    }

    /// Nodes that exhausted their attempts.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.outcome, NodeOutcome::Failed(_)))
            .map(|n| n.node)
            .collect()
    }

    /// Nodes skipped because an ancestor failed.
    pub fn skipped_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.outcome, NodeOutcome::Skipped { .. }))
            .map(|n| n.node)
            .collect()
    }

    /// Nodes whose result came from a degraded scan.
    pub fn degraded_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.degraded)
            .map(|n| n.node)
            .collect()
    }

    /// Total attempts across all nodes.
    pub fn total_attempts(&self) -> u64 {
        self.nodes.iter().map(|n| n.attempts as u64).sum()
    }

    /// Total retryable faults absorbed across all nodes.
    pub fn faults_absorbed(&self) -> u64 {
        self.nodes.iter().map(|n| n.faults_absorbed as u64).sum()
    }

    /// Total storage bytes scanned across all nodes.
    pub fn bytes_scanned(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_scanned).sum()
    }

    /// Total storage bytes zone-map pruning saved across all nodes.
    pub fn bytes_pruned(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_pruned).sum()
    }

    /// Total statically estimated scan bytes across all nodes (0 when no
    /// preflight estimates were supplied).
    pub fn bytes_estimated(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_estimated).sum()
    }

    /// The first failure in topological order, if any.
    pub fn first_error(&self) -> Option<&SkillError> {
        self.nodes.iter().find_map(|n| match &n.outcome {
            NodeOutcome::Failed(e) => Some(e),
            _ => None,
        })
    }
}

/// What one node's attempt loop produced.
struct AttemptOutcome {
    result: Result<SkillOutput>,
    attempts: u32,
    faults_absorbed: u32,
    degraded: bool,
    wall: Duration,
}

/// Run one node's attempt loop. `exec(degraded)` performs a single
/// attempt; `token` (when present) is armed with the budget around each
/// attempt so storage scans can cancel cooperatively.
fn run_attempts<F>(
    policy: &ExecPolicy,
    node: NodeId,
    call: &SkillCall,
    token: Option<&CancelToken>,
    run_deadline: Option<Instant>,
    mut exec: F,
) -> AttemptOutcome
where
    F: FnMut(bool) -> Result<SkillOutput>,
{
    let can_degrade = matches!(
        call,
        SkillCall::LoadTable { .. }
            | SkillCall::LoadTableFiltered { .. }
            | SkillCall::LoadTableProjected { .. }
    );
    let started = Instant::now();
    let mut faults_absorbed = 0u32;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let degraded = can_degrade && policy.degrade_after.is_some_and(|n| attempt > n);
        // The token is armed with the tighter of the per-node budget and
        // what remains of the whole-run slice, so a scan started near the
        // end of a time slice yields at the next block boundary.
        let mut arm = policy.node_budget;
        if let Some(d) = run_deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            arm = Some(arm.map_or(remaining, |b| b.min(remaining)));
        }
        if let (Some(t), Some(budget)) = (token, arm) {
            t.arm(budget);
        }
        let attempt_start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| exec(degraded))).unwrap_or_else(|payload| {
            Err(SkillError::Panic {
                skill: call.name().to_string(),
                message: panic_message(payload),
            })
        });
        if let Some(t) = token {
            t.disarm();
        }
        // Post-hoc budget enforcement for work that cannot observe the
        // token (pure compute): a late success still missed its budget.
        let result = match (result, policy.node_budget) {
            (Ok(_), Some(budget)) if attempt_start.elapsed() > budget => Err(SkillError::Timeout {
                skill: call.name().to_string(),
                budget_ms: budget.as_millis() as u64,
            }),
            (r, _) => r,
        };
        match result {
            Ok(out) => {
                return AttemptOutcome {
                    result: Ok(out),
                    attempts: attempt,
                    faults_absorbed,
                    degraded,
                    wall: started.elapsed(),
                }
            }
            // Retrying past the run slice would burn backoff sleeps on a
            // job that is about to be preempted anyway; surface the
            // (retryable) error instead so resume can finish the node.
            Err(e)
                if e.is_retryable()
                    && attempt < policy.retry.max_attempts
                    && run_deadline.is_none_or(|d| Instant::now() < d) =>
            {
                faults_absorbed += 1;
                std::thread::sleep(policy.retry.backoff(node, attempt));
            }
            Err(e) => {
                return AttemptOutcome {
                    result: Err(e),
                    attempts: attempt,
                    faults_absorbed,
                    degraded: false,
                    wall: started.elapsed(),
                }
            }
        }
    }
}

/// Render a panic payload for the node error.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type PureJobResult = (NodeId, Vec<Arc<Table>>, AttemptOutcome, SpillSnapshot);

/// One pure node's whole attempt loop, suitable for a worker thread.
/// Pure compute cannot observe a cancel token, so its budget is enforced
/// post-hoc inside [`run_attempts`]. The returned [`SpillSnapshot`] is
/// this job's delta on the shared spill metrics (best-effort attribution
/// when siblings spill concurrently).
fn run_pure_job(
    policy: &ExecPolicy,
    nid: NodeId,
    inputs: Vec<Arc<Table>>,
    hook: Option<BeforeExecuteHook>,
    call: &SkillCall,
    mem: Option<Arc<MemContext>>,
) -> PureJobResult {
    let spill_before = mem.as_ref().map(|m| m.metrics.snapshot());
    let att = run_attempts(policy, nid, call, None, None, |_| {
        if let Some(h) = &hook {
            h(call);
        }
        let refs: Vec<&Table> = inputs.iter().map(|t| t.as_ref()).collect();
        execute_pure_call_with_mem(call, &refs, mem.as_deref())
    });
    let spill = mem
        .as_ref()
        .zip(spill_before)
        .map(|(m, before)| m.metrics.snapshot().delta_since(before))
        .unwrap_or_default();
    (nid, inputs, att, spill)
}

/// Degraded `LoadTable`: a block-sampled scan instead of the full scan.
/// The cost meter naturally records the cheaper path — only the blocks
/// actually read are charged.
fn degraded_load(call: &SkillCall, env: &mut Env, policy: &ExecPolicy) -> Result<SkillOutput> {
    let (database, table, predicate, columns) = match call {
        SkillCall::LoadTable { database, table } => (database, table, None, None),
        SkillCall::LoadTableFiltered {
            database,
            table,
            predicate,
        } => (database, table, Some(predicate), None),
        SkillCall::LoadTableProjected {
            database,
            table,
            columns,
            predicate,
        } => (database, table, predicate.as_ref(), Some(columns)),
        _ => unreachable!("degradation only applies to table-load nodes"),
    };
    let db = env.catalog.database(database)?;
    let mut opts = ScanOptions::block_sampled(policy.degraded_fraction, policy.degraded_seed);
    opts.columns = columns.cloned();
    opts.predicate = predicate.cloned();
    opts.cancel = Some(env.cancel.clone());
    let (data, receipt) = db.scan(table, &opts)?;
    env.scan_tally.record(&receipt);
    Ok(SkillOutput::Table(data))
}

impl Executor {
    /// Execute `target` under `policy`, absorbing retryable faults,
    /// isolating panics, and degrading scans as configured. Never aborts
    /// the whole run for a node failure: the failure poisons exactly the
    /// dependent sub-DAG, everything else completes and is checkpointed
    /// in the cache. Structural errors (unknown node ids) still return
    /// `Err`.
    ///
    /// With the default policy, no injected faults, and no panics, the
    /// result is identical to [`Executor::run`].
    pub fn run_resilient(
        &mut self,
        dag: &SkillDag,
        target: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
    ) -> Result<ExecReport> {
        self.run_resilient_with_rejections(dag, target, env, policy, &[])
    }

    /// [`Executor::run_resilient`] with an analyzer preflight folded in:
    /// `rejections` lists nodes a static analysis pass refused (with the
    /// reason rendered as text, so this crate stays independent of the
    /// analyzer). Rejected nodes are classified as permanently failed
    /// with **zero attempts** — no retry budget, no backoff sleeps, no
    /// execution — and poison their dependents (and structural
    /// duplicates) exactly like a runtime failure would.
    pub fn run_resilient_with_rejections(
        &mut self,
        dag: &SkillDag,
        target: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
        rejections: &[(NodeId, String)],
    ) -> Result<ExecReport> {
        self.run_resilient_with_preflight(dag, target, env, policy, rejections, &[])
    }

    /// [`Executor::run_resilient_with_rejections`] plus the analyzer's
    /// per-node scan-byte estimates, recorded on each [`NodeReport`] as
    /// `bytes_estimated` so callers can compare predicted against actual
    /// scan charges (estimate-vs-actual q-error). Estimates are keyed by
    /// the *original* DAG's node ids — pushdown preserves ids, so they
    /// transfer to the fused plan unchanged.
    pub fn run_resilient_with_preflight(
        &mut self,
        dag: &SkillDag,
        target: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
        rejections: &[(NodeId, String)],
        estimates: &[(NodeId, u64)],
    ) -> Result<ExecReport> {
        // Install a run-scoped memory context when the policy budgets one
        // and the environment carries none of its own. The context owns a
        // temp spill directory that is removed when it drops below.
        let installed = env.memory.is_none() && policy.mem_budget.is_some();
        if installed {
            let budget = policy.mem_budget.expect("checked");
            env.memory = Some(Arc::new(MemContext::with_budget(budget)?));
        }
        let spill_before = env.memory.as_ref().map(|m| m.metrics.snapshot());
        let result = self.run_resilient_inner(dag, target, env, policy, rejections, estimates);
        let spill_delta = env
            .memory
            .as_ref()
            .zip(spill_before)
            .map(|(m, before)| m.metrics.snapshot().delta_since(before))
            .unwrap_or_default();
        if installed {
            // Drop the run-scoped context (and its spill directory) even
            // when the run errored structurally.
            env.memory = None;
        }
        result.map(|mut report| {
            report.bytes_spilled = spill_delta.bytes_spilled;
            report.spill_partitions = spill_delta.spill_partitions;
            report
        })
    }

    fn run_resilient_inner(
        &mut self,
        dag: &SkillDag,
        target: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
        rejections: &[(NodeId, String)],
        estimates: &[(NodeId, u64)],
    ) -> Result<ExecReport> {
        // The whole-run slice starts now: planning, interning, and every
        // wave all count against it.
        let run_deadline = policy.run_budget.map(|b| Instant::now() + b);
        // Same optimizer + pushdown rewrites as the fast path, with one
        // extra guard: a rejected filter must keep its load un-fused,
        // since its predicate never earned the right to run anywhere.
        let vetoed: Vec<NodeId> = rejections.iter().map(|(n, _)| *n).collect();
        let optimized = if policy.optimize {
            crate::optimize::optimize_dag(dag, &[target], &vetoed, env)
        } else {
            None
        };
        let dag = optimized.as_ref().unwrap_or(dag);
        let planned = crate::pushdown::plan_pushdown(dag, &[target], &vetoed);
        let dag = planned.as_ref().unwrap_or(dag);
        let order = dag.ancestors(target)?;
        let interned = self.intern_ids(dag, &order, env)?;
        let ids = &interned.ids;
        let hits_before = self.stats.cache_hits;
        let saved_before = self.stats.bytes_saved;

        let mut reports: HashMap<NodeId, NodeReport> = HashMap::with_capacity(order.len());
        // Unusability is tracked by sub-DAG id, not node id, so a failed
        // (or rejected) representative also poisons its structural
        // duplicates.
        let mut unusable: HashSet<SubDagId> = HashSet::new();
        // Structurally identical duplicates execute once; the aliases are
        // resolved against the cache after the run. Rejection trumps the
        // cache: a statically invalid node must not serve a stale result.
        let mut pending: Vec<NodeId> = Vec::new();
        let mut aliases: Vec<(NodeId, NodeId)> = Vec::new();
        let mut rejected_reps: HashMap<SubDagId, NodeId> = HashMap::new();
        for &nid in &order {
            let id = ids[&nid];
            let node = dag.node(nid)?;
            let skill = node.call.name();
            if let Some((_, reason)) = rejections.iter().find(|(r, _)| *r == nid) {
                reports.insert(
                    nid,
                    NodeReport::new(
                        nid,
                        skill,
                        NodeOutcome::Failed(SkillError::invalid(format!(
                            "rejected by static analysis: {reason}"
                        ))),
                    ),
                );
                unusable.insert(id);
                rejected_reps.entry(id).or_insert(nid);
            } else if let Some(&blocked_on) =
                node.inputs.iter().find(|i| unusable.contains(&ids[i]))
            {
                // Downstream of a rejection: even a checkpointed result
                // derives from the rejected computation, so skip it.
                reports.insert(
                    nid,
                    NodeReport::new(nid, skill, NodeOutcome::Skipped { blocked_on }),
                );
                unusable.insert(id);
            } else if let Some(&rep) = rejected_reps.get(&id) {
                // Structural duplicate of a rejected node: the same
                // computation is equally invalid, so it never runs.
                reports.insert(
                    nid,
                    NodeReport::new(nid, skill, NodeOutcome::Skipped { blocked_on: rep }),
                );
            } else if self.cache.contains_key(&id) {
                self.stats.cache_hits += 1;
                self.stats.bytes_saved += self.costs.get(&id).copied().unwrap_or(0);
                reports.insert(nid, NodeReport::new(nid, skill, NodeOutcome::CacheHit));
            } else if let Some(&rep) = pending.iter().find(|p| ids[p] == id) {
                self.stats.cache_hits += 1;
                aliases.push((nid, rep));
            } else if self.probe_shared(env, &interned, id) {
                reports.insert(nid, NodeReport::new(nid, skill, NodeOutcome::CacheHit));
            } else {
                pending.push(nid);
            }
        }

        // Wave loop: execute every ready node, skip nodes blocked on a
        // failure, repeat. Topological order guarantees progress.
        while !pending.is_empty() {
            let mut wave = Vec::new();
            let mut rest = Vec::new();
            let mut progressed = false;
            for nid in pending {
                let node = dag.node(nid)?;
                if let Some(&blocked_on) = node.inputs.iter().find(|i| unusable.contains(&ids[i])) {
                    let skill = node.call.name();
                    reports.insert(
                        nid,
                        NodeReport::new(nid, skill, NodeOutcome::Skipped { blocked_on }),
                    );
                    unusable.insert(ids[&nid]);
                    progressed = true;
                } else if node.inputs.iter().all(|i| self.cache.contains_key(&ids[i])) {
                    wave.push(nid);
                } else {
                    rest.push(nid);
                }
            }
            pending = rest;
            if !wave.is_empty() {
                progressed = true;
                self.run_wave_resilient(
                    dag,
                    &wave,
                    &interned,
                    env,
                    policy,
                    run_deadline,
                    &mut reports,
                    &mut unusable,
                )?;
            }
            debug_assert!(
                progressed,
                "wave loop must make progress (topological order)"
            );
            if !progressed {
                break;
            }
        }

        // Aliases inherit their representative's fate.
        for (nid, rep) in aliases {
            let skill = dag.node(nid)?.call.name();
            let outcome = if self.cache.contains_key(&ids[&nid]) {
                NodeOutcome::CacheHit
            } else {
                NodeOutcome::Skipped { blocked_on: rep }
            };
            reports.insert(nid, NodeReport::new(nid, skill, outcome));
        }
        let cache_hits = self.stats.cache_hits - hits_before;
        let bytes_saved = self.stats.bytes_saved - saved_before;

        // A rejected (or failed) target never yields an output, even when
        // an earlier run checkpointed a result for its sub-DAG.
        let output = if unusable.contains(&ids[&target]) {
            None
        } else {
            self.cache.get(&ids[&target]).map(|(out, _)| out.clone())
        };
        let mut nodes: Vec<NodeReport> = Vec::with_capacity(order.len());
        for &nid in &order {
            if let Some(mut r) = reports.remove(&nid) {
                if let Some(&(_, est)) = estimates.iter().find(|(n, _)| *n == nid) {
                    r.bytes_estimated = est;
                }
                nodes.push(r);
            }
        }
        Ok(ExecReport {
            target,
            output,
            nodes,
            cache_hits,
            bytes_saved,
            bytes_spilled: 0,    // filled in by the outer preflight wrapper
            spill_partitions: 0, // likewise
        })
    }

    /// Re-run `target` after a partial failure. Completed sub-DAG results
    /// were checkpointed in the structural cache by the failed run, so
    /// only the failed frontier (and its skipped dependents) re-executes.
    pub fn resume(
        &mut self,
        dag: &SkillDag,
        target: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
    ) -> Result<ExecReport> {
        self.run_resilient(dag, target, env, policy)
    }

    /// Execute one wave under the policy. Environment-dependent nodes run
    /// serially; pure nodes run concurrently (with the `parallel`
    /// feature), each worker owning its node's whole attempt loop.
    #[allow(clippy::too_many_arguments)]
    fn run_wave_resilient(
        &mut self,
        dag: &SkillDag,
        wave: &[NodeId],
        interned: &Interned,
        env: &mut Env,
        policy: &ExecPolicy,
        run_deadline: Option<Instant>,
        reports: &mut HashMap<NodeId, NodeReport>,
        unusable: &mut HashSet<SubDagId>,
    ) -> Result<()> {
        let ids = &interned.ids;
        // A node the expired run slice preempted before it started: a
        // retryable timeout at zero attempts, so a later resume() call
        // picks it up as the frontier without any retry budget spent.
        let preempt = |nid: NodeId, skill: &str| {
            NodeReport::new(
                nid,
                skill,
                NodeOutcome::Failed(SkillError::Timeout {
                    skill: skill.to_string(),
                    budget_ms: policy.run_budget.unwrap_or_default().as_millis() as u64,
                }),
            )
        };
        let expired = |d: Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        let mut pure: Vec<NodeId> = Vec::new();
        for &nid in wave {
            let node = dag.node(nid)?;
            if !needs_env(&node.call, !node.inputs.is_empty()) {
                pure.push(nid);
                continue;
            }
            if expired(run_deadline) {
                reports.insert(nid, preempt(nid, node.call.name()));
                unusable.insert(ids[&nid]);
                continue;
            }
            let inputs = self.input_tables(node, ids);
            let hook = self.before_execute.clone();
            let token = env.cancel.clone();
            let tally_before = env.scan_tally;
            let spill_before = env.memory.as_ref().map(|m| m.metrics.snapshot());
            let att = run_attempts(
                policy,
                nid,
                &node.call,
                Some(&token),
                run_deadline,
                |degraded| {
                    if let Some(h) = &hook {
                        h(&node.call);
                    }
                    if degraded {
                        degraded_load(&node.call, env, policy)
                    } else {
                        let refs: Vec<&Table> = inputs.iter().map(|t| t.as_ref()).collect();
                        execute_call(&node.call, &refs, env)
                    }
                },
            );
            let scan = env.scan_tally.delta_since(tally_before);
            let spill = env
                .memory
                .as_ref()
                .zip(spill_before)
                .map(|(m, before)| m.metrics.snapshot().delta_since(before))
                .unwrap_or_default();
            self.commit_attempt(
                dag,
                nid,
                interned,
                inputs,
                att,
                scan.bytes_scanned + scan.bytes_pruned,
                env.shared_cache.as_deref(),
                env.attribution.as_deref(),
                reports,
                unusable,
            )?;
            if let Some(r) = reports.get_mut(&nid) {
                r.bytes_scanned = scan.bytes_scanned;
                r.bytes_pruned = scan.bytes_pruned;
                r.bytes_spilled = spill.bytes_spilled;
                r.spill_partitions = spill.spill_partitions;
            }
        }

        // Pure nodes are gated on the slice as a batch: once dispatched
        // they run to completion and commit (post-hoc node budgets aside),
        // so an expired slice preempts only work that has not started.
        if expired(run_deadline) {
            for nid in pure {
                let node = dag.node(nid)?;
                reports.insert(nid, preempt(nid, node.call.name()));
                unusable.insert(ids[&nid]);
            }
            return Ok(());
        }
        let jobs: Vec<(NodeId, Vec<Arc<Table>>)> = pure
            .iter()
            .map(|&nid| (nid, self.input_tables(dag.node(nid).expect("checked"), ids)))
            .collect();
        let hook = self.before_execute.clone();
        let mem = env.memory.clone();
        let results: Vec<PureJobResult> = if cfg!(feature = "parallel") && jobs.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(nid, inputs)| {
                        let hook = hook.clone();
                        let mem = mem.clone();
                        let call = &dag.node(nid).expect("checked").call;
                        scope.spawn(move || run_pure_job(policy, nid, inputs, hook, call, mem))
                    })
                    .collect();
                handles
                    .into_iter()
                    // Worker panics cannot reach here: every attempt runs
                    // under catch_unwind inside run_attempts.
                    .map(|h| h.join().expect("attempt loop catches panics"))
                    .collect()
            })
        } else {
            jobs.into_iter()
                .map(|(nid, inputs)| {
                    let call = &dag.node(nid).expect("checked").call;
                    run_pure_job(policy, nid, inputs, hook.clone(), call, mem.clone())
                })
                .collect()
        };
        for (nid, inputs, att, spill) in results {
            self.commit_attempt(
                dag,
                nid,
                interned,
                inputs,
                att,
                0,
                env.shared_cache.as_deref(),
                env.attribution.as_deref(),
                reports,
                unusable,
            )?;
            if let Some(r) = reports.get_mut(&nid) {
                r.bytes_spilled = spill.bytes_spilled;
                r.spill_partitions = spill.spill_partitions;
            }
        }
        Ok(())
    }

    /// Fold one node's attempt outcome into cache, stats, and reports. A
    /// degraded result is committed to the *local* cache only (so resume
    /// and downstream nodes keep working on the sampled data) and marked
    /// tainted — `finish` never admits it, or anything derived from it,
    /// to the shared cross-session cache as authoritative.
    #[allow(clippy::too_many_arguments)]
    fn commit_attempt(
        &mut self,
        dag: &SkillDag,
        nid: NodeId,
        interned: &Interned,
        inputs: Vec<Arc<Table>>,
        att: AttemptOutcome,
        own_scan_bytes: u64,
        shared: Option<&MaterializedCache>,
        who: Option<&str>,
        reports: &mut HashMap<NodeId, NodeReport>,
        unusable: &mut HashSet<SubDagId>,
    ) -> Result<()> {
        let node = dag.node(nid)?;
        self.stats.retries += (att.attempts.saturating_sub(1)) as u64;
        let mut report = NodeReport::new(nid, node.call.name(), NodeOutcome::Ok);
        report.attempts = att.attempts;
        report.faults_absorbed = att.faults_absorbed;
        report.degraded = att.degraded;
        report.wall = att.wall;
        match att.result {
            Ok(output) => {
                self.finish(
                    node,
                    interned,
                    inputs,
                    output,
                    own_scan_bytes,
                    att.degraded,
                    shared,
                    who,
                );
            }
            Err(e) => {
                report.outcome = NodeOutcome::Failed(e);
                unusable.insert(interned.id(nid));
            }
        }
        reports.insert(nid, report);
        Ok(())
    }
}
