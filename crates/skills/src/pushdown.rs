//! Predicate pushdown: plan-time rewrite that fuses filters into scans.
//!
//! When a `LoadTable` node's only consumer is a `KeepRows` or `DropRows`
//! directly above it, the prunable conjuncts of that filter's predicate
//! can be evaluated *inside* the storage scan, where per-block zone maps
//! skip blocks that cannot contain a matching row. The rewrite swaps the
//! load's call for [`SkillCall::LoadTableFiltered`] in place — same node
//! id, same (empty) inputs — and leaves the filter node untouched: it
//! re-evaluates its full predicate over the already-reduced scan output,
//! which costs next to nothing and keeps semantics (including error
//! attribution for bad predicates) byte-identical to the unpushed plan.
//!
//! `DropRows` keeps rows where the predicate is FALSE, so its pushable
//! form is the Kleene negation-normal-form of `NOT predicate`.

use dc_engine::expr::prune::{conjoin, nnf, prunable_conjuncts};

use crate::dag::{NodeId, SkillDag};
use crate::skill::SkillCall;

/// Rewrite every eligible `LoadTable` under a filter into a
/// `LoadTableFiltered`. Returns `None` when nothing is eligible (the
/// caller keeps using the original DAG, uncloned).
///
/// `protected` loads are never rewritten — the materialization target's
/// observable output must stay the raw table. `vetoed` nodes neither
/// get rewritten nor push their predicate: the resilient executor lists
/// analyzer-rejected nodes here, since a predicate that never earned
/// the right to run must not sneak into a scan either.
pub fn plan_pushdown(dag: &SkillDag, protected: &[NodeId], vetoed: &[NodeId]) -> Option<SkillDag> {
    let mut rewritten: Option<SkillDag> = None;
    let named: Vec<NodeId> = dag.bound_nodes();
    // One O(edges) sweep replaces the per-load consumer scan that made
    // this pass quadratic in DAG size: `counts` holds each node's
    // consumer count, `last_consumer` its most recent consumer (only
    // meaningful when the count is exactly one).
    let counts = dag.consumer_counts();
    let mut last_consumer: Vec<NodeId> = vec![0; dag.len()];
    for node in dag.nodes() {
        for &input in &node.inputs {
            last_consumer[input] = node.id;
        }
    }
    for node in dag.nodes() {
        let SkillCall::LoadTable { database, table } = &node.call else {
            continue;
        };
        // A target or name-bound load is observable as-is.
        if protected.contains(&node.id) || vetoed.contains(&node.id) || named.contains(&node.id) {
            continue;
        }
        // Exactly one consumer, and it is a filter directly above us.
        if counts[node.id] != 1 {
            continue;
        }
        let consumer = dag.node(last_consumer[node.id]).expect("consumer in range");
        if vetoed.contains(&consumer.id) {
            continue;
        }
        let candidate = match &consumer.call {
            SkillCall::KeepRows { predicate } => predicate.clone(),
            SkillCall::DropRows { predicate } => nnf(predicate.clone().not()),
            _ => continue,
        };
        let Some(pushed) = conjoin(prunable_conjuncts(&candidate)) else {
            continue;
        };
        let out = rewritten.get_or_insert_with(|| dag.clone());
        out.update_call(
            node.id,
            SkillCall::LoadTableFiltered {
                database: database.clone(),
                table: table.clone(),
                predicate: pushed,
            },
        )
        .expect("LoadTableFiltered takes no inputs");
    }
    rewritten
}

/// Step-level pushdown for *linear* programs (`dc-serve` requests),
/// where each step is staged and executed one at a time and only the
/// final step's output is observable.
///
/// The DAG-level [`plan_pushdown`] cannot help a step-at-a-time
/// executor: by the time the filter step arrives, its load has already
/// been materialized as a full scan (the load was that slice's target,
/// hence protected), and the fused re-plan is a *different* structural
/// sub-DAG — a cache miss that rescans. Fusing the step list up front
/// fixes both: the load step itself becomes `LoadTableFiltered`, charges
/// the pruned bytes, and the following filter step is a cheap
/// re-evaluation over the reduced rows.
///
/// Only the last step of a program is delivered (and optionally
/// name-bound), so an interior load's unfiltered rows are never
/// observable — unlike `plan_pushdown` there is no "protected" set. A
/// trailing load (the program's result) is left untouched.
///
/// Returns `None` when no step is eligible.
///
/// Implemented as a thin wrapper over [`plan_pushdown`]: the step list
/// is lowered to a linear [`SkillDag`] (each input-taking step consumes
/// its predecessor, loads restart the chain), planned with the final
/// step as the sole protected target, and the rewritten calls are read
/// back in step order. One rewrite engine, one set of eligibility
/// rules.
pub fn plan_linear_pushdown(steps: &[SkillCall]) -> Option<Vec<SkillCall>> {
    let mut dag = SkillDag::new();
    let mut prev: Option<NodeId> = None;
    for call in steps {
        let inputs = match prev {
            Some(p) if call.needs_input() => vec![p],
            _ => vec![],
        };
        prev = Some(dag.add(call.clone(), inputs).ok()?);
    }
    let target = prev?;
    let planned = plan_pushdown(&dag, &[target], &[])?;
    Some(planned.nodes().iter().map(|n| n.call.clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Expr;

    fn load(dag: &mut SkillDag) -> NodeId {
        dag.add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            vec![],
        )
        .unwrap()
    }

    fn pushed_predicate(dag: &SkillDag, id: NodeId) -> Option<&Expr> {
        match &dag.node(id).unwrap().call {
            SkillCall::LoadTableFiltered { predicate, .. } => Some(predicate),
            _ => None,
        }
    }

    #[test]
    fn keep_rows_predicate_is_pushed_verbatim() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let pred = Expr::col("x").gt(Expr::lit(5));
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: pred.clone(),
                },
                vec![l],
            )
            .unwrap();
        let planned = plan_pushdown(&dag, &[f], &[]).unwrap();
        assert_eq!(pushed_predicate(&planned, l), Some(&pred));
        // The filter node itself is untouched.
        assert_eq!(planned.node(f).unwrap().call, dag.node(f).unwrap().call);
    }

    #[test]
    fn drop_rows_pushes_the_negation() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let f = dag
            .add(
                SkillCall::DropRows {
                    predicate: Expr::col("x").le(Expr::lit(5)),
                },
                vec![l],
            )
            .unwrap();
        let planned = plan_pushdown(&dag, &[f], &[]).unwrap();
        assert_eq!(
            pushed_predicate(&planned, l),
            Some(&Expr::col("x").gt(Expr::lit(5)))
        );
    }

    #[test]
    fn only_prunable_conjuncts_are_pushed() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let pred = Expr::col("x")
            .gt(Expr::lit(5))
            .and(Expr::col("x").add(Expr::col("y")).lt(Expr::lit(10)));
        let f = dag
            .add(SkillCall::KeepRows { predicate: pred }, vec![l])
            .unwrap();
        let planned = plan_pushdown(&dag, &[f], &[]).unwrap();
        assert_eq!(
            pushed_predicate(&planned, l),
            Some(&Expr::col("x").gt(Expr::lit(5)))
        );
    }

    #[test]
    fn no_rewrite_without_prunable_form() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").add(Expr::lit(1)).gt(Expr::lit(5)),
                },
                vec![l],
            )
            .unwrap();
        assert!(plan_pushdown(&dag, &[f], &[]).is_none());
    }

    #[test]
    fn shared_load_is_not_rewritten() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(5)),
                },
                vec![l],
            )
            .unwrap();
        // A second consumer needs the unfiltered rows.
        let _head = dag.add(SkillCall::ShowHead { n: 3 }, vec![l]).unwrap();
        assert!(plan_pushdown(&dag, &[f], &[]).is_none());
    }

    #[test]
    fn target_and_named_loads_are_protected() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(5)),
                },
                vec![l],
            )
            .unwrap();
        // Materializing the load itself must return unfiltered rows.
        assert!(plan_pushdown(&dag, &[l, f], &[]).is_none());
        // A name binding makes the load addressable later.
        dag.bind_name("raw", l).unwrap();
        assert!(plan_pushdown(&dag, &[f], &[]).is_none());
    }

    #[test]
    fn linear_pushdown_fuses_interior_loads() {
        let steps = vec![
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            SkillCall::KeepRows {
                predicate: Expr::col("x").gt(Expr::lit(5)),
            },
            SkillCall::CountRows,
        ];
        let fused = plan_linear_pushdown(&steps).unwrap();
        assert_eq!(
            fused[0],
            SkillCall::LoadTableFiltered {
                database: "db".into(),
                table: "t".into(),
                predicate: Expr::col("x").gt(Expr::lit(5)),
            }
        );
        // The filter step stays in place; only the load changed.
        assert_eq!(fused[1], steps[1]);
        assert_eq!(fused[2], steps[2]);

        // DropRows pushes the negation-normal-form of NOT pred.
        let steps = vec![
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            SkillCall::DropRows {
                predicate: Expr::col("x").le(Expr::lit(5)),
            },
        ];
        let fused = plan_linear_pushdown(&steps).unwrap();
        assert_eq!(
            fused[0],
            SkillCall::LoadTableFiltered {
                database: "db".into(),
                table: "t".into(),
                predicate: Expr::col("x").gt(Expr::lit(5)),
            }
        );
    }

    #[test]
    fn linear_pushdown_leaves_ineligible_programs_alone() {
        // A trailing load is the delivered result — untouched.
        let steps = vec![SkillCall::LoadTable {
            database: "db".into(),
            table: "t".into(),
        }];
        assert!(plan_linear_pushdown(&steps).is_none());
        // A non-filter consumer blocks fusion.
        let steps = vec![
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            SkillCall::CountRows,
        ];
        assert!(plan_linear_pushdown(&steps).is_none());
        // An unprunable predicate has nothing to push.
        let steps = vec![
            SkillCall::LoadTable {
                database: "db".into(),
                table: "t".into(),
            },
            SkillCall::KeepRows {
                predicate: Expr::col("x").add(Expr::lit(1)).gt(Expr::lit(5)),
            },
        ];
        assert!(plan_linear_pushdown(&steps).is_none());
    }

    #[test]
    fn rejected_filter_blocks_the_rewrite() {
        let mut dag = SkillDag::new();
        let l = load(&mut dag);
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(5)),
                },
                vec![l],
            )
            .unwrap();
        let t = dag.add(SkillCall::ShowHead { n: 3 }, vec![f]).unwrap();
        // Normally pushable...
        assert!(plan_pushdown(&dag, &[t], &[]).is_some());
        // ...but not when the filter node is protected (e.g. rejected).
        assert!(plan_pushdown(&dag, &[t], &[f]).is_none());
    }
}
