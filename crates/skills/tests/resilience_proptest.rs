//! Property: under any retryable-only fault schedule, resilient
//! execution is invisible — the result is identical to a fault-free
//! serial run of the same DAG.

use std::sync::Arc;
use std::time::Duration;

use dc_engine::{Column, Expr, JoinType, Table};
use dc_skills::resilient::{ExecPolicy, RetryPolicy};
use dc_skills::{Env, Executor, SkillCall, SkillDag};
use dc_storage::{CloudDatabase, FaultConfig, FaultInjector, FaultOp, InjectedFault, Pricing};
use proptest::prelude::*;

fn table(n: usize, offset: i64) -> Table {
    Table::new(vec![
        (
            "x",
            Column::from_ints((offset..offset + n as i64).collect()),
        ),
        (
            "v",
            Column::from_floats((0..n).map(|i| i as f64 / 7.0).collect()),
        ),
    ])
    .unwrap()
}

fn env() -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    db.create_table_with_blocks("a", &table(1_000, 0), 128)
        .unwrap();
    db.create_table_with_blocks("b", &table(1_000, 500), 128)
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

/// loadA → filter ─┐
///                 ├─ join → sort (the target)
/// loadB ──────────┘
fn dag() -> (SkillDag, usize) {
    let mut dag = SkillDag::new();
    let la = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "a".into(),
            },
            vec![],
        )
        .unwrap();
    let fa = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").ge(Expr::lit(250i64)),
            },
            vec![la],
        )
        .unwrap();
    let lb = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "b".into(),
            },
            vec![],
        )
        .unwrap();
    let j = dag
        .add(
            SkillCall::Join {
                other: "b".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![fa, lb],
        )
        .unwrap();
    let s = dag
        .add(
            SkillCall::Sort {
                keys: vec![("x".into(), true)],
            },
            vec![j],
        )
        .unwrap();
    (dag, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any mix of scheduled and probabilistic *retryable* faults
    /// (transient scan failures, slow blocks) is fully absorbed: the
    /// resilient run completes and its table equals the fault-free run.
    #[test]
    fn retryable_faults_never_change_results(
        seed in 0u64..1_000,
        transient_p in 0.0f64..0.30,
        schedule in prop::collection::vec(
            (0usize..2usize, 0u64..24u64, 0usize..2usize),
            0..8,
        ),
    ) {
        let (dag, target) = dag();
        let mut env0 = env();
        let expected = Executor::new().run(&dag, target, &mut env0).unwrap();

        let mut cfg = FaultConfig {
            seed,
            scan_transient_p: transient_p,
            ..FaultConfig::disabled()
        };
        for (op, occurrence, kind) in schedule {
            let op = if op == 0 { FaultOp::Scan } else { FaultOp::BlockRead };
            let fault = if kind == 0 {
                InjectedFault::Transient
            } else {
                InjectedFault::SlowMs(2)
            };
            cfg = cfg.schedule(op, occurrence, fault);
        }
        let mut env = env();
        let inj = Arc::new(FaultInjector::new(cfg));
        env.catalog.set_fault_injector(&inj);

        let policy = ExecPolicy {
            retry: RetryPolicy {
                max_attempts: 12,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(2),
                jitter_seed: seed,
            },
            ..ExecPolicy::default()
        };
        let mut ex = Executor::new();
        let report = ex.run_resilient(&dag, target, &mut env, &policy).unwrap();

        prop_assert!(
            report.succeeded(),
            "retryable-only faults must never surface: {:?}",
            report.first_error()
        );
        prop_assert_eq!(
            report.output.as_ref().unwrap().as_table().unwrap(),
            expected.as_table().unwrap()
        );
        // Accounting invariants: every node ran at least once, and every
        // extra attempt corresponds to an absorbed fault.
        for node in &report.nodes {
            prop_assert!(node.attempts >= 1);
            prop_assert_eq!(node.faults_absorbed, node.attempts - 1);
        }
        prop_assert_eq!(ex.stats.retries, report.faults_absorbed());
    }
}
