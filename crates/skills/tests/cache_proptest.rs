//! Property: the two-tier materialized cache is invisible. A long-lived
//! executor sharing a cross-session `MaterializedCache`, fed a random
//! interleaving of pipeline runs and source mutations (table
//! drop/recreate, snapshot create/refresh/delete), always returns
//! exactly what a cache-free fresh executor computes over an identically
//! mutated environment — under both the wave scheduler (`run`) and the
//! resilient scheduler (`run_resilient`). The CI serial job re-runs this
//! with `--no-default-features`, covering the serial scheduler too.

use std::sync::Arc;

use dc_engine::{Column, Expr, Table};
use dc_skills::resilient::ExecPolicy;
use dc_skills::{Env, Executor, MaterializedCache, SkillCall, SkillDag};
use dc_storage::{CloudDatabase, Pricing};
use proptest::prelude::*;

fn table(n: usize, offset: i64) -> Table {
    Table::new(vec![
        (
            "x",
            Column::from_ints((offset..offset + n as i64).collect()),
        ),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 4)).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

fn base_env() -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    db.create_table_with_blocks("a", &table(2_000, 0), 128)
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

/// load a → filter (threshold picked by `param`) → group-count.
fn table_pipeline(param: u8) -> (SkillDag, usize) {
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "a".into(),
            },
            vec![],
        )
        .unwrap();
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").ge(Expr::lit(i64::from(param) * 137)),
            },
            vec![l],
        )
        .unwrap();
    let c = dag
        .add(
            SkillCall::Compute {
                aggs: vec![dc_engine::AggSpec::count_records("n")],
                for_each: vec!["k".into()],
            },
            vec![f],
        )
        .unwrap();
    (dag, c)
}

/// use snapshot s → count rows.
fn snapshot_pipeline() -> (SkillDag, usize) {
    let mut dag = SkillDag::new();
    let s = dag
        .add(SkillCall::UseSnapshot { name: "s".into() }, vec![])
        .unwrap();
    let c = dag.add(SkillCall::CountRows, vec![s]).unwrap();
    (dag, c)
}

/// One step of the random schedule, applied to both worlds.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Run the table pipeline; `resilient` selects the scheduler.
    RunTable { param: u8, resilient: bool },
    /// Run the snapshot pipeline (no-op while the snapshot is absent).
    RunSnapshot { resilient: bool },
    /// Drop + recreate table `a` with shifted contents.
    MutateTable { offset: u8 },
    /// Create or refresh snapshot `s` with `rows` rows.
    UpsertSnapshot { rows: u8 },
    /// Delete snapshot `s` (no-op while absent).
    DeleteSnapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..2).prop_map(|(param, r)| Op::RunTable {
            param,
            resilient: r == 1,
        }),
        (0u8..2).prop_map(|r| Op::RunSnapshot { resilient: r == 1 }),
        (0u8..4).prop_map(|offset| Op::MutateTable { offset }),
        (1u8..64).prop_map(|rows| Op::UpsertSnapshot { rows }),
        Just(Op::DeleteSnapshot),
    ]
}

fn mutate(env: &mut Env, op: Op, snapshot_live: &mut bool) {
    match op {
        Op::MutateTable { offset } => {
            let db = env.catalog.database_mut("db").unwrap();
            db.drop_table("a").unwrap();
            db.create_table_with_blocks("a", &table(2_000, i64::from(offset) * 250), 128)
                .unwrap();
        }
        Op::UpsertSnapshot { rows } => {
            let t = table(usize::from(rows), 0);
            if *snapshot_live {
                env.snapshots.refresh("s", t).unwrap();
            } else {
                env.snapshots.create("s", t, "db.a", vec![], None).unwrap();
                *snapshot_live = true;
            }
        }
        Op::DeleteSnapshot => {
            if *snapshot_live {
                env.snapshots.delete("s").unwrap();
                *snapshot_live = false;
            }
        }
        Op::RunTable { .. } | Op::RunSnapshot { .. } => unreachable!("run ops handled separately"),
    }
}

fn run(ex: &mut Executor, dag: &SkillDag, target: usize, env: &mut Env, resilient: bool) -> String {
    if resilient {
        let report = ex
            .run_resilient(dag, target, env, &ExecPolicy::default())
            .unwrap();
        assert!(report.succeeded());
        format!("{:?}", report.output.unwrap())
    } else {
        format!("{:?}", ex.run(dag, target, env).unwrap())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_execution_matches_fresh_recomputation(
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        // World one: a long-lived executor with both cache tiers.
        let shared = Arc::new(MaterializedCache::new(64 << 20));
        let mut cached_env = base_env();
        cached_env.shared_cache = Some(Arc::clone(&shared));
        let mut cached_ex = Executor::new();
        // A second session against the same shared tier: exercises the
        // cross-executor probe path on every run op.
        let mut peer_ex = Executor::new();
        // World two: no caches at all, fresh executor per run.
        let mut fresh_env = base_env();

        let mut snapshot_live = false;
        for op in ops {
            match op {
                Op::RunTable { param, resilient } => {
                    let (dag, t) = table_pipeline(param);
                    let got = run(&mut cached_ex, &dag, t, &mut cached_env, resilient);
                    let peer = run(&mut peer_ex, &dag, t, &mut cached_env, resilient);
                    let want =
                        run(&mut Executor::new(), &dag, t, &mut fresh_env, resilient);
                    prop_assert_eq!(&got, &want);
                    prop_assert_eq!(&peer, &want);
                }
                Op::RunSnapshot { resilient } => {
                    if !snapshot_live {
                        continue;
                    }
                    let (dag, t) = snapshot_pipeline();
                    let got = run(&mut cached_ex, &dag, t, &mut cached_env, resilient);
                    let peer = run(&mut peer_ex, &dag, t, &mut cached_env, resilient);
                    let want =
                        run(&mut Executor::new(), &dag, t, &mut fresh_env, resilient);
                    prop_assert_eq!(&got, &want);
                    prop_assert_eq!(&peer, &want);
                }
                mutation => {
                    let mut live = snapshot_live;
                    mutate(&mut cached_env, mutation, &mut live);
                    mutate(&mut fresh_env, mutation, &mut snapshot_live);
                    prop_assert_eq!(live, snapshot_live);
                }
            }
        }
    }
}
