//! Integration tests for resilient DAG execution under injected faults:
//! retry, subgraph isolation + resume, panic isolation, budgets with
//! cooperative cancellation, and degraded scans.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_engine::{Column, Expr, JoinType, Table};
use dc_skills::resilient::{ExecPolicy, NodeOutcome};
use dc_skills::{Env, Executor, SkillCall, SkillDag, SkillError};
use dc_storage::{CloudDatabase, FaultConfig, FaultInjector, FaultOp, InjectedFault, Pricing};

fn table(n: usize) -> Table {
    Table::new(vec![
        ("x", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 5)).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

/// An environment with one database `db` holding `events` (and
/// optionally more tables), split into many small blocks so block-level
/// faults have somewhere to land.
fn env_with(tables: &[&str]) -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    for name in tables {
        db.create_table_with_blocks(*name, &table(4_000), 256)
            .unwrap();
    }
    env.catalog.add_database(db).unwrap();
    env
}

fn inject(env: &mut Env, config: FaultConfig) -> Arc<FaultInjector> {
    let inj = Arc::new(FaultInjector::new(config));
    env.catalog.set_fault_injector(&inj);
    inj
}

fn load(dag: &mut SkillDag, table: &str) -> usize {
    dag.add(
        SkillCall::LoadTable {
            database: "db".into(),
            table: table.into(),
        },
        vec![],
    )
    .unwrap()
}

fn filter(dag: &mut SkillDag, input: usize) -> usize {
    dag.add(
        SkillCall::KeepRows {
            predicate: Expr::col("x").ge(Expr::lit(100i64)),
        },
        vec![input],
    )
    .unwrap()
}

/// load → filter chain; returns (dag, load node, filter node).
fn chain() -> (SkillDag, usize, usize) {
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let f = filter(&mut dag, l);
    (dag, l, f)
}

#[test]
fn retry_absorbs_scheduled_transient() {
    let (dag, l, f) = chain();

    // Fault-free reference.
    let mut env0 = env_with(&["events"]);
    let expected = Executor::new().run(&dag, f, &mut env0).unwrap();

    let mut env = env_with(&["events"]);
    inject(
        &mut env,
        FaultConfig::disabled().schedule(FaultOp::Scan, 0, InjectedFault::Transient),
    );
    let mut ex = Executor::new();
    let report = ex
        .run_resilient(&dag, f, &mut env, &ExecPolicy::default())
        .unwrap();

    assert!(report.succeeded(), "transient fault must be absorbed");
    assert_eq!(
        report.output.as_ref().unwrap().as_table().unwrap(),
        expected.as_table().unwrap(),
        "retried run must match the fault-free run"
    );
    let lr = report.node(l).unwrap();
    assert!(matches!(lr.outcome, NodeOutcome::Ok));
    assert_eq!(lr.attempts, 2, "one failure, one successful retry");
    assert_eq!(lr.faults_absorbed, 1);
    assert!(!lr.degraded);
    assert_eq!(report.node(f).unwrap().attempts, 1);
    assert_eq!(ex.stats.retries, 1);
    assert_eq!(report.faults_absorbed(), 1);
}

#[test]
fn outage_fails_only_dependent_subgraph_and_resume_reruns_frontier() {
    // loadA → filterA ─┐
    //                  ├─ join
    // loadB → filterB ─┘
    let mut dag = SkillDag::new();
    let la = load(&mut dag, "a");
    let fa = filter(&mut dag, la);
    let lb = load(&mut dag, "b");
    let fb = filter(&mut dag, lb);
    let j = dag
        .add(
            SkillCall::Join {
                other: "b".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![fa, fb],
        )
        .unwrap();

    let mut env = env_with(&["a", "b"]);
    // The first scan of the run hits a hard outage (not retryable).
    inject(
        &mut env,
        FaultConfig::disabled().schedule(FaultOp::Scan, 0, InjectedFault::Unavailable),
    );
    let mut ex = Executor::new();
    let report = ex
        .run_resilient(&dag, j, &mut env, &ExecPolicy::default())
        .unwrap();

    assert!(!report.succeeded());
    let failed = report.failed_nodes();
    assert_eq!(failed.len(), 1, "exactly one load hits the outage");
    let dead_load = failed[0];
    assert!(dead_load == la || dead_load == lb);
    let (dead_filter, live_load, live_filter) = if dead_load == la {
        (fa, lb, fb)
    } else {
        (fb, la, fa)
    };
    assert_eq!(
        report.node(dead_load).unwrap().attempts,
        1,
        "no retry on outage"
    );
    assert!(matches!(
        report.node(dead_load).unwrap().outcome,
        NodeOutcome::Failed(SkillError::Storage(
            dc_storage::StorageError::Unavailable { .. }
        ))
    ));
    // The sibling branch completes; only the dependent subgraph is lost.
    assert!(matches!(
        report.node(live_load).unwrap().outcome,
        NodeOutcome::Ok
    ));
    assert!(matches!(
        report.node(live_filter).unwrap().outcome,
        NodeOutcome::Ok
    ));
    assert_eq!(report.skipped_nodes(), vec![dead_filter, j]);
    assert_eq!(ex.stats.nodes_executed, 2, "live branch only");

    // Resume: the completed branch is checkpointed in the cache, so only
    // the failed frontier (load → filter → join) re-executes.
    let before = ex.stats.nodes_executed;
    let resumed = ex
        .resume(&dag, j, &mut env, &ExecPolicy::default())
        .unwrap();
    assert!(resumed.succeeded());
    assert_eq!(
        ex.stats.nodes_executed - before,
        3,
        "resume re-runs exactly the failed frontier"
    );
    assert!(matches!(
        resumed.node(live_load).unwrap().outcome,
        NodeOutcome::CacheHit
    ));
    assert!(matches!(
        resumed.node(live_filter).unwrap().outcome,
        NodeOutcome::CacheHit
    ));

    // Same answer as a fault-free run.
    let mut env0 = env_with(&["a", "b"]);
    let expected = Executor::new().run(&dag, j, &mut env0).unwrap();
    assert_eq!(
        resumed.output.unwrap().as_table().unwrap(),
        expected.as_table().unwrap()
    );
}

#[test]
fn panicking_node_poisons_itself_not_the_wave() {
    // load → {limit(999) which panics, filter} → join. The panicking pure
    // node and its healthy sibling share a wave.
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let bomb = dag.add(SkillCall::Limit { n: 999 }, vec![l]).unwrap();
    let f = filter(&mut dag, l);
    let j = dag
        .add(
            SkillCall::Join {
                other: "events".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![bomb, f],
        )
        .unwrap();

    let mut env = env_with(&["events"]);
    let mut ex = Executor::new();
    ex.set_before_execute(|call| {
        if matches!(call, SkillCall::Limit { n: 999 }) {
            panic!("boom");
        }
    });
    let report = ex
        .run_resilient(&dag, j, &mut env, &ExecPolicy::default())
        .unwrap();

    assert!(!report.succeeded());
    let br = report.node(bomb).unwrap();
    match &br.outcome {
        NodeOutcome::Failed(SkillError::Panic { skill, message }) => {
            assert_eq!(skill, "Limit");
            assert!(message.contains("boom"));
        }
        other => panic!("expected panic outcome, got {other:?}"),
    }
    assert_eq!(br.attempts, 1, "panics are not retryable");
    // The wave sibling completed and is checkpointed.
    assert!(matches!(report.node(f).unwrap().outcome, NodeOutcome::Ok));
    assert_eq!(report.skipped_nodes(), vec![j]);
}

#[test]
fn budget_cancels_stalled_scan_cooperatively() {
    let (dag, l, f) = chain();
    let mut env = env_with(&["events"]);
    // The very first block read stalls for 2s; the node budget is 50ms.
    inject(
        &mut env,
        FaultConfig::disabled().schedule(FaultOp::BlockRead, 0, InjectedFault::SlowMs(2_000)),
    );
    let mut ex = Executor::new();
    let policy = ExecPolicy {
        node_budget: Some(Duration::from_millis(50)),
        ..ExecPolicy::default()
    };
    let started = Instant::now();
    let report = ex.run_resilient(&dag, f, &mut env, &policy).unwrap();
    let elapsed = started.elapsed();

    assert!(
        report.succeeded(),
        "retry after the cancelled attempt succeeds"
    );
    assert!(
        elapsed < Duration::from_millis(1_500),
        "cancellation must interrupt the stall, not sit it out (took {elapsed:?})"
    );
    let lr = report.node(l).unwrap();
    assert_eq!(lr.attempts, 2);
    assert_eq!(lr.faults_absorbed, 1);
}

#[test]
fn degraded_scan_after_repeated_full_scan_failures() {
    let (dag, l, f) = chain();

    // Full-scan bytes of a fault-free run, for the cost comparison.
    let mut env0 = env_with(&["events"]);
    Executor::new().run(&dag, f, &mut env0).unwrap();
    let full_bytes = env0.catalog.database("db").unwrap().meter().bytes();
    assert!(full_bytes > 0);

    let mut env = env_with(&["events"]);
    // Every full scan fails; block-sampled scans are spared, so only the
    // degraded path can make progress.
    inject(
        &mut env,
        FaultConfig {
            seed: 42,
            scan_transient_p: 1.0,
            spare_sampled_scans: true,
            ..FaultConfig::disabled()
        },
    );
    let mut ex = Executor::new();
    let policy = ExecPolicy {
        degrade_after: Some(2),
        degraded_fraction: 0.25,
        ..ExecPolicy::default()
    };
    let report = ex.run_resilient(&dag, f, &mut env, &policy).unwrap();

    assert!(
        report.succeeded(),
        "degraded fallback must complete the run"
    );
    let lr = report.node(l).unwrap();
    assert!(lr.degraded, "result must be flagged as degraded");
    assert_eq!(
        lr.attempts, 3,
        "two full-scan failures, one sampled success"
    );
    assert_eq!(lr.faults_absorbed, 2);
    assert_eq!(report.degraded_nodes(), vec![l]);

    // The failed full scans were never metered (they die before reading
    // blocks), so the bill reflects only the cheaper sampled path.
    let degraded_bytes = env.catalog.database("db").unwrap().meter().bytes();
    assert!(
        degraded_bytes < full_bytes,
        "degraded scan must cost less than the full scan \
         ({degraded_bytes} vs {full_bytes} bytes)"
    );
    let out_rows = report.output.unwrap().as_table().unwrap().num_rows();
    let mut env1 = env_with(&["events"]);
    let full_rows = Executor::new()
        .run(&dag, f, &mut env1)
        .unwrap()
        .as_table()
        .unwrap()
        .num_rows();
    assert!(out_rows < full_rows, "sampled scan reads a strict subset");
}

#[test]
fn failed_representative_poisons_structural_duplicates() {
    // l1/l2 and f1/f2 are structurally identical pairs: only one of each
    // executes, the other is an alias of its sub-DAG result. When the
    // representative hits an outage, the alias must be poisoned too —
    // this used to deadlock the wave loop (the alias was neither cached
    // nor marked unusable).
    let mut dag = SkillDag::new();
    let l1 = load(&mut dag, "events");
    let f1 = filter(&mut dag, l1);
    let l2 = load(&mut dag, "events");
    let f2 = filter(&mut dag, l2);
    let j = dag
        .add(
            SkillCall::Join {
                other: "events".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![f1, f2],
        )
        .unwrap();

    let mut env = env_with(&["events"]);
    inject(
        &mut env,
        FaultConfig::disabled().schedule(FaultOp::Scan, 0, InjectedFault::Unavailable),
    );
    // The optimizer would dedup l2 onto l1 at plan time; keep it off so
    // the wave scheduler still sees the structural-duplicate shape this
    // test exists to poison correctly.
    let policy = ExecPolicy {
        optimize: false,
        ..ExecPolicy::default()
    };
    let mut ex = Executor::new();
    let report = ex.run_resilient(&dag, j, &mut env, &policy).unwrap();
    assert!(!report.succeeded());
    assert_eq!(report.failed_nodes().len(), 1);
    // Everything else is either skipped outright or an alias of a
    // poisoned node; nothing executed and nothing hung.
    assert_eq!(ex.stats.nodes_executed, 0);
    assert_eq!(report.skipped_nodes().len(), 4, "l2, f1, f2, join");

    // Resume completes once the outage has passed.
    let resumed = ex.resume(&dag, j, &mut env, &policy).unwrap();
    assert!(resumed.succeeded());
}

#[test]
fn without_faults_resilient_matches_plain_run() {
    let (dag, _, f) = chain();
    let mut env0 = env_with(&["events"]);
    let plain = Executor::new().run(&dag, f, &mut env0).unwrap();

    let mut env = env_with(&["events"]);
    let mut ex = Executor::new();
    let report = ex
        .run_resilient(&dag, f, &mut env, &ExecPolicy::default())
        .unwrap();
    assert_eq!(
        report.output.as_ref().unwrap().as_table().unwrap(),
        plain.as_table().unwrap()
    );
    assert_eq!(report.total_attempts(), 2, "one attempt per node");
    assert_eq!(report.faults_absorbed(), 0);
    assert!(report.degraded_nodes().is_empty());
    assert_eq!(ex.stats.retries, 0);
    assert!(report.first_error().is_none());
}

#[test]
fn analyzer_rejections_fail_permanently_without_retry_budget() {
    let (dag, l, f) = chain();
    let mut env = env_with(&["events"]);
    let mut ex = Executor::new();
    let rejections = vec![(f, "DC0002: unknown column \"bogus\"".to_string())];
    let report = ex
        .run_resilient_with_rejections(&dag, f, &mut env, &ExecPolicy::default(), &rejections)
        .unwrap();

    assert!(!report.succeeded());
    // The rejected node never executes: zero attempts, zero backoffs.
    let rejected = report.node(f).unwrap();
    assert!(matches!(rejected.outcome, NodeOutcome::Failed(_)));
    assert_eq!(rejected.attempts, 0);
    assert_eq!(rejected.faults_absorbed, 0);
    let NodeOutcome::Failed(err) = &rejected.outcome else {
        unreachable!()
    };
    assert!(
        err.to_string().contains("rejected by static analysis"),
        "{err}"
    );
    assert!(err.to_string().contains("DC0002"), "{err}");
    // Upstream of the rejection still runs (it is independently valid
    // and stays checkpointed for a corrected resume).
    assert!(matches!(report.node(l).unwrap().outcome, NodeOutcome::Ok));
    assert_eq!(ex.stats.retries, 0);
}

#[test]
fn rejection_poisons_dependents_and_trumps_cache() {
    let (dag, l, f) = chain();
    let mut env = env_with(&["events"]);
    let mut ex = Executor::new();

    // First run succeeds and checkpoints every sub-DAG.
    let clean = ex
        .run_resilient(&dag, f, &mut env, &ExecPolicy::default())
        .unwrap();
    assert!(clean.succeeded());

    // Re-running with the load node rejected must not serve the stale
    // cached result: the rejection wins and the dependent is skipped.
    let rejections = vec![(l, "DC0001: unknown table".to_string())];
    let report = ex
        .run_resilient_with_rejections(&dag, f, &mut env, &ExecPolicy::default(), &rejections)
        .unwrap();
    assert!(!report.succeeded());
    assert!(matches!(
        report.node(l).unwrap().outcome,
        NodeOutcome::Failed(_)
    ));
    assert!(matches!(
        report.node(f).unwrap().outcome,
        NodeOutcome::Skipped { blocked_on } if blocked_on == l
    ));
}

// ---------------------------------------------------------------------------
// Out-of-core spill chaos: memory-budgeted runs, injected spill-write
// faults, spill-dir leak checks, and byte-identical cache admissibility.
// ---------------------------------------------------------------------------

use dc_engine::MemContext;
use dc_storage::InjectedSpillHooks;

/// A tiny budget every sort/join/group-by state estimate exceeds for the
/// 4 000-row fixture, forcing the spill path.
const TINY_BUDGET: u64 = 8 * 1024;

fn sort(dag: &mut SkillDag, input: usize) -> usize {
    dag.add(
        SkillCall::Sort {
            keys: vec![("x".into(), false)],
        },
        vec![input],
    )
    .unwrap()
}

/// Count entries left under a spill root (operator dirs or stray files).
fn spill_root_entries(ctx: &MemContext) -> usize {
    std::fs::read_dir(&ctx.spill_root)
        .map(|rd| rd.count())
        .unwrap_or(0)
}

#[test]
fn mem_budget_policy_spills_and_matches_unconstrained() {
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let s = sort(&mut dag, l);

    let mut env0 = env_with(&["events"]);
    let expected = Executor::new().run(&dag, s, &mut env0).unwrap();

    let mut env = env_with(&["events"]);
    let policy = ExecPolicy {
        mem_budget: Some(TINY_BUDGET),
        ..ExecPolicy::default()
    };
    let mut ex = Executor::new();
    let report = ex.run_resilient(&dag, s, &mut env, &policy).unwrap();

    assert!(report.succeeded());
    assert_eq!(
        report.output.as_ref().unwrap().as_table().unwrap(),
        expected.as_table().unwrap(),
        "spilled run must produce the same rows as the in-memory run"
    );
    assert!(
        report.bytes_spilled > 0,
        "a {TINY_BUDGET}-byte budget must force sorting out of core"
    );
    assert!(report.spill_partitions > 0);
    assert!(
        env.memory.is_none(),
        "the run-scoped memory context must be uninstalled after the run"
    );
}

#[test]
fn spill_write_transient_fault_is_retried_and_cleaned_up() {
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let s = sort(&mut dag, l);

    let mut env0 = env_with(&["events"]);
    let expected = Executor::new().run(&dag, s, &mut env0).unwrap();

    // The very first spill write fails transiently; the retry redoes the
    // whole sort and succeeds. The injector is private to the spill
    // hooks — catalog scans never see it.
    let inj = Arc::new(FaultInjector::new(
        FaultConfig::disabled().schedule(FaultOp::SpillWrite, 0, InjectedFault::Transient),
    ));
    let ctx = Arc::new(
        MemContext::with_budget(TINY_BUDGET)
            .unwrap()
            .with_hooks(Arc::new(InjectedSpillHooks::new(Arc::clone(&inj)))),
    );
    let mut env = env_with(&["events"]);
    env.memory = Some(Arc::clone(&ctx));

    let mut ex = Executor::new();
    let report = ex
        .run_resilient(&dag, s, &mut env, &ExecPolicy::default())
        .unwrap();

    assert!(report.succeeded(), "transient spill fault must be absorbed");
    assert_eq!(
        report.output.as_ref().unwrap().as_table().unwrap(),
        expected.as_table().unwrap()
    );
    let sr = report.node(s).unwrap();
    assert_eq!(sr.attempts, 2, "one spill-write failure, one retry");
    assert_eq!(sr.faults_absorbed, 1);
    assert!(
        report.bytes_spilled > 0,
        "the successful retry still runs out of core"
    );
    // Leak check: the failed attempt's partial partition files and the
    // successful attempt's run files are both gone.
    assert_eq!(
        spill_root_entries(&ctx),
        0,
        "no spill files may outlive their operator"
    );
}

#[test]
fn spill_dirs_are_cleaned_even_when_a_downstream_node_panics() {
    // load → sort (spills) → limit(999) which panics. The sort's spill
    // files must be removed even though the run as a whole fails.
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let s = sort(&mut dag, l);
    let bomb = dag.add(SkillCall::Limit { n: 999 }, vec![s]).unwrap();

    let ctx = Arc::new(MemContext::with_budget(TINY_BUDGET).unwrap());
    let mut env = env_with(&["events"]);
    env.memory = Some(Arc::clone(&ctx));

    let mut ex = Executor::new();
    ex.set_before_execute(|call| {
        if matches!(call, SkillCall::Limit { n: 999 }) {
            panic!("boom");
        }
    });
    let report = ex
        .run_resilient(&dag, bomb, &mut env, &ExecPolicy::default())
        .unwrap();

    assert!(!report.succeeded());
    assert!(matches!(
        report.node(bomb).unwrap().outcome,
        NodeOutcome::Failed(SkillError::Panic { .. })
    ));
    assert!(matches!(report.node(s).unwrap().outcome, NodeOutcome::Ok));
    assert!(report.bytes_spilled > 0, "the sort ran out of core");
    assert_eq!(
        spill_root_entries(&ctx),
        0,
        "spill files must not leak past a failed run"
    );
    // Dropping the context removes the temp root itself.
    let root = ctx.spill_root.clone();
    env.memory = None;
    drop(ctx);
    assert!(!root.exists(), "temp spill root must vanish with the context");
}

#[test]
fn spilled_and_retried_result_is_byte_identical_and_cache_admissible() {
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let s = sort(&mut dag, l);

    // Unconstrained reference.
    let mut env0 = env_with(&["events"]);
    let expected = Executor::new().run(&dag, s, &mut env0).unwrap();
    let expected = expected.as_table().unwrap();

    // Constrained run with an injected transient spill-write fault AND a
    // shared cache installed: the recovered (non-degraded) result must
    // still be admitted, and only because it is byte-identical to what
    // an in-memory run would have produced.
    let inj = Arc::new(FaultInjector::new(
        FaultConfig::disabled().schedule(FaultOp::SpillWrite, 0, InjectedFault::Transient),
    ));
    let ctx = Arc::new(
        MemContext::with_budget(TINY_BUDGET)
            .unwrap()
            .with_hooks(Arc::new(InjectedSpillHooks::new(inj))),
    );
    let shared = Arc::new(dc_skills::MaterializedCache::new(64 * 1024 * 1024));
    let mut env = env_with(&["events"]);
    env.memory = Some(Arc::clone(&ctx));
    env.shared_cache = Some(Arc::clone(&shared));

    let mut ex = Executor::new();
    let report = ex
        .run_resilient(&dag, s, &mut env, &ExecPolicy::default())
        .unwrap();
    assert!(report.succeeded());
    assert!(report.bytes_spilled > 0);
    let got = report.output.as_ref().unwrap().as_table().unwrap();

    // Byte-level identity: serialize both tables through the spill block
    // format and compare the files bit for bit.
    let dir = std::env::temp_dir().join(format!("dc-chaos-ident-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (pa, pb) = (dir.join("expected.dcb"), dir.join("spilled.dcb"));
    dc_engine::blockio::write_table(&pa, expected, 512).unwrap();
    dc_engine::blockio::write_table(&pb, got, 512).unwrap();
    let identical = std::fs::read(&pa).unwrap() == std::fs::read(&pb).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        identical,
        "spilled-and-retried output must be byte-identical to the in-memory result"
    );

    // Both the load and the recovered sort were admitted as
    // authoritative shared-cache entries (spilling is not degradation).
    assert!(
        shared.stats().insertions >= 2,
        "recovered results must stay cache-admissible (got {:?})",
        shared.stats()
    );
    let probe = shared.stats().hits;
    let mut env2 = env_with(&["events"]);
    env2.shared_cache = Some(Arc::clone(&shared));
    let again = Executor::new()
        .run_resilient(&dag, s, &mut env2, &ExecPolicy::default())
        .unwrap();
    assert!(again.succeeded());
    assert!(
        shared.stats().hits > probe,
        "a second session must be served from the shared entry"
    );
}

#[test]
fn structural_duplicates_of_rejected_nodes_are_skipped() {
    let mut dag = SkillDag::new();
    let l = load(&mut dag, "events");
    let f1 = filter(&mut dag, l);
    let f2 = filter(&mut dag, l); // structurally identical to f1
    let j = dag
        .add(
            SkillCall::Join {
                other: "self".into(),
                left_on: vec!["x".into()],
                right_on: vec!["x".into()],
                how: JoinType::Inner,
            },
            vec![f1, f2],
        )
        .unwrap();

    let mut env = env_with(&["events"]);
    let mut ex = Executor::new();
    let rejections = vec![(f1, "DC0003: type mismatch".to_string())];
    let report = ex
        .run_resilient_with_rejections(&dag, j, &mut env, &ExecPolicy::default(), &rejections)
        .unwrap();

    assert!(!report.succeeded());
    assert!(matches!(
        report.node(f1).unwrap().outcome,
        NodeOutcome::Failed(_)
    ));
    // The duplicate is the same computation; it must not run either.
    assert!(matches!(
        report.node(f2).unwrap().outcome,
        NodeOutcome::Skipped { blocked_on } if blocked_on == f1
    ));
    assert!(matches!(
        report.node(j).unwrap().outcome,
        NodeOutcome::Skipped { .. }
    ));
    assert_eq!(report.node(f1).unwrap().attempts, 0);
}
