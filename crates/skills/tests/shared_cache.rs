//! Integration tests for the cross-session materialized sub-DAG cache:
//! zero-copy hits with zero charged scan bytes, versioned invalidation
//! across catalog and snapshot mutations, degraded-result exclusion,
//! side-effect exclusion, and concurrent hits under the wave scheduler.

use std::sync::Arc;

use dc_engine::{Column, Expr, Table};
use dc_skills::resilient::{ExecPolicy, NodeOutcome};
use dc_skills::{Env, Executor, MaterializedCache, SkillCall, SkillDag};
use dc_storage::{CloudDatabase, FaultConfig, FaultInjector, Pricing};

fn table(n: usize, offset: i64) -> Table {
    Table::new(vec![
        (
            "x",
            Column::from_ints((0..n as i64).map(|i| i + offset).collect()),
        ),
        (
            "y",
            Column::from_floats((0..n).map(|i| i as f64 * 0.5).collect()),
        ),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 5)).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

/// An environment holding `events` in database `db`, attached to
/// `shared` as its cross-session cache tier.
fn env_with_cache(shared: &Arc<MaterializedCache>) -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    db.create_table_with_blocks("events", &table(4_000, 0), 256)
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env.shared_cache = Some(Arc::clone(shared));
    env
}

/// load events → filter → group-count; returns (dag, compute node).
fn pipeline() -> (SkillDag, usize) {
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let f = dag
        .add(
            SkillCall::KeepRows {
                predicate: Expr::col("x").ge(Expr::lit(100i64)),
            },
            vec![l],
        )
        .unwrap();
    let c = dag
        .add(
            SkillCall::Compute {
                aggs: vec![dc_engine::AggSpec::count_records("n")],
                for_each: vec!["k".into()],
            },
            vec![f],
        )
        .unwrap();
    (dag, c)
}

#[test]
fn cross_executor_hit_charges_zero_scan_bytes_and_is_zero_copy() {
    let shared = Arc::new(MaterializedCache::new(64 << 20));
    let mut env = env_with_cache(&shared);
    let (dag, target) = pipeline();

    let mut cold = Executor::new();
    let expected = cold.run(&dag, target, &mut env).unwrap();
    assert_eq!(cold.stats.shared_hits, 0);
    let meter = env.catalog.database("db").unwrap().meter();
    let (cold_queries, cold_bytes) = (meter.queries(), meter.bytes());
    assert!(cold_bytes > 0);

    // A different executor (a different session) has a cold local cache
    // but meets the first one in the shared tier: identical output, not
    // one more byte or query charged against the catalog.
    let mut warm = Executor::new();
    let out = warm.run(&dag, target, &mut env).unwrap();
    assert_eq!(out, expected);
    assert_eq!(warm.stats.nodes_executed, 0);
    assert!(warm.stats.shared_hits >= 1);
    assert!(warm.stats.bytes_saved > 0);
    let meter = env.catalog.database("db").unwrap().meter();
    assert_eq!(meter.queries(), cold_queries);
    assert_eq!(meter.bytes(), cold_bytes);

    // Hits share the resident allocation — pointer copies, never deep
    // clones: two independent warm executors see the same `Arc`.
    let mut warm2 = Executor::new();
    let t1 = warm.table_of(&dag, target, &mut env).unwrap();
    let t2 = warm2.table_of(&dag, target, &mut env).unwrap();
    assert!(Arc::ptr_eq(&t1, &t2));
}

#[test]
fn drop_and_recreate_table_invalidates_both_tiers() {
    let shared = Arc::new(MaterializedCache::new(64 << 20));
    let mut env = env_with_cache(&shared);
    let (dag, target) = pipeline();

    let mut ex = Executor::new();
    let stale = ex.run(&dag, target, &mut env).unwrap();

    // Mutate the source: same name, shifted values.
    let db = env.catalog.database_mut("db").unwrap();
    db.drop_table("events").unwrap();
    db.create_table_with_blocks("events", &table(4_000, 1_000), 256)
        .unwrap();

    // The same executor re-interns under the new table version and must
    // recompute rather than serve its own stale entry...
    let fresh_same = ex.run(&dag, target, &mut env).unwrap();
    // ...and a new executor must not be served the stale shared entry.
    let fresh_new = Executor::new().run(&dag, target, &mut env).unwrap();
    assert_eq!(fresh_same, fresh_new);
    assert_ne!(stale, fresh_new, "mutation must change the result");

    let expected = {
        let mut clean_env = Env::new();
        let mut db = CloudDatabase::new("db", Pricing::default_cloud());
        db.create_table_with_blocks("events", &table(4_000, 1_000), 256)
            .unwrap();
        clean_env.catalog.add_database(db).unwrap();
        Executor::new().run(&dag, target, &mut clean_env).unwrap()
    };
    assert_eq!(fresh_new, expected);
}

#[test]
fn snapshot_refresh_invalidates_cached_reads() {
    let shared = Arc::new(MaterializedCache::new(64 << 20));
    let mut env = env_with_cache(&shared);
    env.snapshots
        .create("sample", table(100, 0), "db.events", vec![], None)
        .unwrap();
    let mut dag = SkillDag::new();
    let s = dag
        .add(
            SkillCall::UseSnapshot {
                name: "sample".into(),
            },
            vec![],
        )
        .unwrap();
    let count = dag.add(SkillCall::CountRows, vec![s]).unwrap();

    let mut ex = Executor::new();
    let out = ex.run(&dag, count, &mut env).unwrap();
    assert_eq!(out, dc_skills::SkillOutput::Text("100".into()));

    env.snapshots.refresh("sample", table(55, 0)).unwrap();
    // The long-lived executor's local cache holds the old read; the
    // store-version salt makes it unreachable.
    let out = ex.run(&dag, count, &mut env).unwrap();
    assert_eq!(out, dc_skills::SkillOutput::Text("55".into()));

    // Delete + recreate under the same name is a new incarnation too.
    env.snapshots.delete("sample").unwrap();
    env.snapshots
        .create("sample", table(7, 0), "db.events", vec![], None)
        .unwrap();
    let out = ex.run(&dag, count, &mut env).unwrap();
    assert_eq!(out, dc_skills::SkillOutput::Text("7".into()));
}

#[test]
fn degraded_results_are_never_admitted_to_the_shared_cache() {
    let shared = Arc::new(MaterializedCache::new(64 << 20));
    let mut env = env_with_cache(&shared);
    let (dag, target) = pipeline();

    // Every full scan fails; the load only completes via the degraded
    // (block-sampled) fallback.
    let inj = Arc::new(FaultInjector::new(FaultConfig {
        scan_transient_p: 1.0,
        spare_sampled_scans: true,
        seed: 3,
        ..FaultConfig::disabled()
    }));
    env.catalog.set_fault_injector(&inj);
    let policy = ExecPolicy {
        degrade_after: Some(1),
        degraded_fraction: 0.25,
        ..ExecPolicy::default()
    };
    let mut ex = Executor::new();
    let report = ex.run_resilient(&dag, target, &mut env, &policy).unwrap();
    assert!(report.succeeded());
    assert!(!report.degraded_nodes().is_empty(), "load must degrade");

    // Neither the sampled load nor anything computed from it may be
    // published as authoritative.
    assert_eq!(shared.stats().insertions, 0);
    assert_eq!(shared.len(), 0);

    // The local cache keeps the degraded result for resume semantics.
    let report2 = ex.run_resilient(&dag, target, &mut env, &policy).unwrap();
    assert!(report2
        .nodes
        .iter()
        .all(|n| matches!(n.outcome, NodeOutcome::CacheHit)));

    // With faults gone, a fresh session computes the authoritative
    // result — and only that run populates the shared tier.
    env.catalog.clear_fault_injector();
    let mut ex2 = Executor::new();
    let full = ex2.run(&dag, target, &mut env).unwrap();
    assert_eq!(ex2.stats.shared_hits, 0, "no stale degraded entry served");
    assert!(shared.stats().insertions > 0);
    let n_col = full.as_table().unwrap().column("n").unwrap().clone();
    let full_n: f64 = (0..n_col.len())
        .map(|i| n_col.numeric_at(i).unwrap_or(0.0))
        .sum();
    assert_eq!(full_n as i64, 3_900);
}

#[test]
fn side_effecting_nodes_stay_out_of_the_shared_cache() {
    let shared = Arc::new(MaterializedCache::new(64 << 20));
    let mut env = env_with_cache(&shared);
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let t = dag
        .add(
            SkillCall::TrainModel {
                name: "m".into(),
                target: "y".into(),
                features: vec!["x".into()],
                method: dc_ml::MlMethod::Auto,
            },
            vec![l],
        )
        .unwrap();
    Executor::new().run(&dag, t, &mut env).unwrap();
    // Only the version-addressable load is shared; the model-registry
    // write must re-execute per session so its side effect happens.
    assert_eq!(shared.stats().insertions, 1);
    assert!(env.model_names().contains(&"m"));
}

/// Concurrent sessions hammering one shared cache (exercised by the TSan
/// job, which selects tests whose names contain "parallel"): all
/// sessions agree on the result regardless of who populated the cache.
#[test]
fn parallel_sessions_share_one_cache_consistently() {
    let shared = Arc::new(MaterializedCache::new(64 << 20));
    let (dag, target) = pipeline();
    let dag = Arc::new(dag);
    let outputs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let dag = Arc::clone(&dag);
                scope.spawn(move || {
                    // Each session has its own environment view of the
                    // same logical catalog (identical data, identical
                    // version history) plus the shared cache handle.
                    let mut env = env_with_cache(&shared);
                    let mut ex = Executor::new();
                    ex.run(&dag, target, &mut env).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for out in &outputs[1..] {
        assert_eq!(out, &outputs[0]);
    }
    let stats = shared.stats();
    assert!(stats.insertions >= 1);
    // Every probe either hit or raced the first population; nothing
    // else can happen on identical version-salted keys.
    assert_eq!(stats.hits + stats.misses, stats.hits + stats.insertions);
}
