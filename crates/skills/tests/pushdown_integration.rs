//! End-to-end predicate pushdown: a `LoadTable → KeepRows` chain must
//! produce byte-identical output whether or not the planner fuses the
//! filter into the scan, while the fused plan scans strictly fewer
//! bytes. Also covers the per-node scan accounting surfaced through
//! `ExecReport` by the resilient executor.

use dc_engine::ops::filter;
use dc_engine::{Column, Expr, Table};
use dc_skills::resilient::ExecPolicy;
use dc_skills::{Env, Executor, SkillCall, SkillDag};
use dc_storage::{CloudDatabase, Pricing};

/// 4 000 rows clustered on `x` (ascending), split into 256-row blocks,
/// so a selective range predicate can prove most blocks empty.
fn clustered_table() -> Table {
    let n = 4_000usize;
    Table::new(vec![
        ("x", Column::from_ints((0..n as i64).collect())),
        (
            "k",
            Column::from_strs((0..n).map(|i| format!("g{}", i % 5)).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

fn env() -> Env {
    let mut env = Env::new();
    let mut db = CloudDatabase::new("db", Pricing::default_cloud());
    db.create_table_with_blocks("events", &clustered_table(), 256)
        .unwrap();
    env.catalog.add_database(db).unwrap();
    env
}

fn chain(pred: Expr) -> (SkillDag, usize, usize) {
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let f = dag
        .add(SkillCall::KeepRows { predicate: pred }, vec![l])
        .unwrap();
    (dag, l, f)
}

#[test]
fn pushed_run_matches_filter_over_full_scan_and_prunes_bytes() {
    let pred = Expr::col("x").lt(Expr::lit(100i64));
    let (dag, l, f) = chain(pred.clone());

    // Reference: materialize the raw load (targets are never rewritten),
    // then filter with the engine directly.
    let mut env_ref = env();
    let raw = Executor::new().run(&dag, l, &mut env_ref).unwrap();
    let expected = filter(raw.as_table().unwrap(), &pred).unwrap();
    assert_eq!(
        env_ref.scan_tally.bytes_pruned, 0,
        "a raw load must not be rewritten"
    );

    let mut env = env();
    let out = Executor::new().run(&dag, f, &mut env).unwrap();
    assert_eq!(out.as_table().unwrap(), &expected);
    assert_eq!(out.as_table().unwrap().num_rows(), 100);
    assert!(
        env.scan_tally.bytes_pruned > 0,
        "selective predicate over a clustered column must prune blocks"
    );
    assert!(
        env.scan_tally.bytes_scanned < env_ref.scan_tally.bytes_scanned,
        "pushed scan must be charged fewer bytes than the full scan"
    );
}

#[test]
fn drop_rows_chain_is_pushed_and_equivalent() {
    let pred = Expr::col("x").ge(Expr::lit(100i64));
    let mut dag = SkillDag::new();
    let l = dag
        .add(
            SkillCall::LoadTable {
                database: "db".into(),
                table: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let f = dag
        .add(
            SkillCall::DropRows {
                predicate: pred.clone(),
            },
            vec![l],
        )
        .unwrap();

    let mut env_ref = env();
    let raw = Executor::new().run(&dag, l, &mut env_ref).unwrap();
    let keep = Expr::col("x").lt(Expr::lit(100i64));
    let expected = filter(raw.as_table().unwrap(), &keep).unwrap();

    let mut env = env();
    let out = Executor::new().run(&dag, f, &mut env).unwrap();
    assert_eq!(out.as_table().unwrap(), &expected);
    assert!(env.scan_tally.bytes_pruned > 0);
}

#[test]
fn resilient_report_carries_per_node_scan_bytes() {
    let pred = Expr::col("x").lt(Expr::lit(100i64));
    let (dag, l, f) = chain(pred.clone());

    let mut env_ref = env();
    let raw = Executor::new().run(&dag, l, &mut env_ref).unwrap();
    let expected = filter(raw.as_table().unwrap(), &pred).unwrap();

    let mut env = env();
    let report = Executor::new()
        .run_resilient(&dag, f, &mut env, &ExecPolicy::default())
        .unwrap();
    assert!(report.succeeded());
    assert_eq!(
        report.output.as_ref().unwrap().as_table().unwrap(),
        &expected
    );

    let lr = report.node(l).unwrap();
    assert!(lr.bytes_scanned > 0, "the load node scans real bytes");
    assert!(lr.bytes_pruned > 0, "the pushed predicate prunes blocks");
    let fr = report.node(f).unwrap();
    assert_eq!(fr.bytes_scanned, 0, "pure nodes touch no storage");
    assert_eq!(fr.bytes_pruned, 0);
    assert_eq!(report.bytes_scanned(), lr.bytes_scanned);
    assert_eq!(report.bytes_pruned(), lr.bytes_pruned);
    assert_eq!(
        lr.bytes_scanned + lr.bytes_pruned,
        env_ref.scan_tally.bytes_scanned,
        "scanned + pruned must add up to the full-scan footprint"
    );
}
