//! The synthetic dev split (Figure 7) and stratified evaluation sets
//! (Table 2).
//!
//! Figure 7 reports the Spider dev split's zone counts — (low, low) 638,
//! (high, low) 127, (low, high) 246, (high, high) 29 — a long-tailed
//! distribution. The generator reproduces those marginals; the paper's
//! test sets are a stratified sample of 25 per zone (T_spider, ~10% of
//! the dev split) plus a custom set of 20/22/26/22 drawn from recently
//! released data.

use dc_nl::metrics::Zone;
use dc_nl::SemanticLayer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::domains::{custom_domains, pool_semantics, spider_domains, Domain};
use crate::gen::{make_sample, Sample};

/// The Figure 7 zone counts for the dev split.
pub const DEV_ZONE_COUNTS: [(Zone, usize); 4] = [
    (Zone::LowLow, 638),
    (Zone::HighLow, 127),
    (Zone::LowHigh, 246),
    (Zone::HighHigh, 29),
];

/// The Table 2 per-zone sample counts for T_spider.
pub const SPIDER_TEST_COUNTS: [(Zone, usize); 4] = [
    (Zone::LowLow, 25),
    (Zone::LowHigh, 25),
    (Zone::HighLow, 25),
    (Zone::HighHigh, 25),
];

/// The Table 2 per-zone sample counts for T_custom.
pub const CUSTOM_TEST_COUNTS: [(Zone, usize); 4] = [
    (Zone::LowLow, 20),
    (Zone::LowHigh, 22),
    (Zone::HighLow, 26),
    (Zone::HighHigh, 22),
];

/// Generate samples with the given per-zone counts over `domains`,
/// cycling domains round-robin. Samples whose measured zone misses the
/// target are regenerated with fresh seeds (bounded retries).
pub fn generate_with_counts(
    domains: &[Domain],
    counts: &[(Zone, usize)],
    semantics: &SemanticLayer,
    seed: u64,
) -> Vec<Sample> {
    let mut out = Vec::new();
    let mut id = 0usize;
    let mut attempt_seed = seed;
    for &(zone, n) in counts {
        let mut produced = 0usize;
        let mut di = 0usize;
        let mut consecutive_misses = 0usize;
        while produced < n {
            let domain = &domains[di % domains.len()];
            let mut sample = None;
            for retry in 0..12u64 {
                let s = make_sample(id, domain, zone, semantics, attempt_seed ^ (retry << 17));
                if s.zone == zone {
                    sample = Some(s);
                    break;
                }
            }
            attempt_seed = attempt_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match sample {
                Some(s) => {
                    out.push(s);
                    produced += 1;
                    id += 1;
                    consecutive_misses = 0;
                }
                None => {
                    consecutive_misses += 1;
                    assert!(
                        consecutive_misses < 64,
                        "zone {zone:?} appears unreachable for this domain pool \
                         (generator bug — see dc-spider::gen)"
                    );
                }
            }
            di += 1;
        }
    }
    out
}

/// The full synthetic dev split (1040 samples, Figure 7 marginals).
pub fn dev_split(seed: u64) -> Vec<Sample> {
    let domains = spider_domains();
    let semantics = pool_semantics(&domains);
    generate_with_counts(&domains, &DEV_ZONE_COUNTS, &semantics, seed)
}

/// Stratified T_spider: `counts` samples per zone drawn from a dev-split
/// style population ("we randomly sample an equal number ... from each of
/// the characterized zones").
pub fn t_spider(seed: u64) -> Vec<Sample> {
    let domains = spider_domains();
    let semantics = pool_semantics(&domains);
    let mut samples = generate_with_counts(&domains, &SPIDER_TEST_COUNTS, &semantics, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    samples.shuffle(&mut rng);
    samples
}

/// T_custom: the recently-released-data test set on unseen domains.
pub fn t_custom(seed: u64) -> Vec<Sample> {
    let domains = custom_domains();
    let semantics = pool_semantics(&domains);
    let mut samples = generate_with_counts(&domains, &CUSTOM_TEST_COUNTS, &semantics, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdcba);
    samples.shuffle(&mut rng);
    samples
}

/// Zone histogram of a sample set (the Figure 7 annotation).
pub fn zone_histogram(samples: &[Sample]) -> Vec<(Zone, usize)> {
    Zone::all()
        .into_iter()
        .map(|z| (z, samples.iter().filter(|s| s.zone == z).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_split_matches_figure7_counts() {
        let dev = dev_split(42);
        assert_eq!(dev.len(), 1040);
        let hist = zone_histogram(&dev);
        for (zone, n) in hist {
            let expected = DEV_ZONE_COUNTS.iter().find(|(z, _)| *z == zone).unwrap().1;
            assert_eq!(n, expected, "zone {zone:?}");
        }
    }

    #[test]
    fn dev_split_is_long_tailed() {
        // Figure 7: "most samples are characterized as (low, low)" and
        // the high zones are thin.
        let dev = dev_split(42);
        let hist = zone_histogram(&dev);
        let count = |z: Zone| hist.iter().find(|(h, _)| *h == z).unwrap().1;
        assert!(count(Zone::LowLow) > dev.len() / 2);
        assert!(count(Zone::HighHigh) < dev.len() / 20);
    }

    #[test]
    fn t_spider_is_balanced_and_about_ten_percent() {
        let t = t_spider(7);
        assert_eq!(t.len(), 100);
        for (_, n) in zone_histogram(&t) {
            assert_eq!(n, 25);
        }
        // "roughly 10% of the entire dev split"
        assert!((t.len() as f64 / 1040.0 - 0.1).abs() < 0.005);
    }

    #[test]
    fn t_custom_counts_match_table2() {
        let t = t_custom(7);
        assert_eq!(t.len(), 90);
        let hist = zone_histogram(&t);
        let count = |z: Zone| hist.iter().find(|(h, _)| *h == z).unwrap().1;
        assert_eq!(count(Zone::LowLow), 20);
        assert_eq!(count(Zone::LowHigh), 22);
        assert_eq!(count(Zone::HighLow), 26);
        assert_eq!(count(Zone::HighHigh), 22);
        assert!(t.iter().all(|s| s.is_custom));
    }

    #[test]
    fn splits_are_deterministic() {
        assert_eq!(t_spider(3).len(), t_spider(3).len());
        let a = t_spider(3);
        let b = t_spider(3);
        assert_eq!(a[0].question, b[0].question);
        assert_eq!(a[50].gold_program, b[50].gold_program);
    }

    #[test]
    fn sample_ids_unique() {
        let dev = dev_split(1);
        let mut ids: Vec<usize> = dev.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), dev.len());
    }
}
