//! Benchmark sample generation.
//!
//! Each sample is a (question, gold program, schema) triple engineered to
//! land in a target (M, C) zone, mirroring how §4.7 characterizes the
//! Spider dev split. Misalignment is controlled by vague filler words
//! (raising the query-mismatch term) and by the domain's identifier
//! opacity (the schema-irrelevance term); composition is controlled by
//! the gold program's depth (single aggregates vs join→filter→aggregate→
//! sort→top chains).

use dc_nl::metrics::{composition, misalignment, Zone};
use dc_nl::{SchemaHints, SemanticLayer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::domains::{ColumnKind, Domain};

/// One benchmark sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub id: usize,
    pub domain: String,
    pub is_custom: bool,
    pub question: String,
    pub gold_program: String,
    pub schema: SchemaHints,
    pub misalignment: f64,
    pub composition: f64,
    pub zone: Zone,
    /// Seed for regenerating the domain's tables.
    pub data_seed: u64,
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.random_range(0..xs.len())]
}

/// Spread vague filler words through a question to raise its mismatch
/// score without touching the operative column references.
fn add_fillers(question: &str, fillers: &[&str], n: usize, rng: &mut StdRng) -> String {
    let mut words: Vec<String> = question.split_whitespace().map(String::from).collect();
    for _ in 0..n {
        let f = pick(rng, fillers).to_string();
        let pos = rng.random_range(0..=words.len().min(3));
        words.insert(pos, f);
    }
    words.join(" ")
}

/// Readable reference to a column: the literal name (which always links).
fn col_ref(name: &str) -> String {
    name.to_string()
}

/// Build one sample in the target zone. Filler counts are adapted until
/// the measured M and C actually land in the zone (guaranteed by
/// construction for C; iterated for M).
pub fn make_sample(
    id: usize,
    domain: &Domain,
    zone: Zone,
    semantics: &SemanticLayer,
    seed: u64,
) -> Sample {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = domain.schema_hints();
    let main = domain.main_table();
    let want_high_c = matches!(zone, Zone::LowHigh | Zone::HighHigh);
    let want_high_m = matches!(zone, Zone::HighLow | Zone::HighHigh);

    // ---- gold program + base question ----
    let (base_question, gold_program) = if want_high_c {
        // Deep chain: join → filter → aggregate → sort → top.
        let second = &domain.tables[1];
        let key = main
            .columns
            .iter()
            .find(|c| second.columns.iter().any(|s| s.name == c.name))
            .expect("domains share a key");
        let measure = *pick(&mut rng, &main.measures());
        let group = *pick(&mut rng, &second.categories());
        let threshold = threshold_for(&measure.kind, &mut rng);
        let k = rng.random_range(2..5);
        let agg_word = *pick(&mut rng, &["total", "average"]);
        let (ctor, _gel) = match agg_word {
            "total" => ("Sum", "sum"),
            _ => ("Average", "average"),
        };
        let question = format!(
            "Join {} with {} on {} , then for rows with {} above {} , find the {agg_word} {} for each {} , sorted from highest to lowest , top {k}",
            main.name,
            second.name,
            col_ref(key.name),
            col_ref(measure.name),
            threshold,
            col_ref(measure.name),
            col_ref(group.name),
        );
        let out_name = dc_engine::AggSpec::default_output(
            if ctor == "Sum" {
                dc_engine::AggFunc::Sum
            } else {
                dc_engine::AggFunc::Avg
            },
            Some(measure.name),
        );
        let gold = format!(
            "{}.join(\"{}\", on = [\"{}\"]).filter(\"{} > {threshold}\").compute(aggregates = [{ctor}(\"{}\")], for_each = [\"{}\"]).sort(by = [\"{out_name}\"], ascending = [False]).head({k})",
            main.name, second.name, key.name, measure.name, measure.name, group.name
        );
        (question, gold)
    } else {
        // Shallow: one aggregate, optionally with a filter. Prefixes are
        // stopword-safe wording variants so duplicate questions (and the
        // correlated model behaviour they cause) are rare without moving M.
        let group = *pick(&mut rng, &main.categories());
        let what = *pick(&mut rng, &["What is", "Show", "List", "Show me"]);
        let howmany = *pick(
            &mut rng,
            &[
                "How many",
                "Count how many",
                "Show how many",
                "List how many",
            ],
        );
        match rng.random_range(0..4u32) {
            0 => {
                let noun = main.columns[0].phrase;
                let question = format!(
                    "{howmany} {noun} are there for each {} ?",
                    col_ref(group.name)
                );
                let gold = format!(
                    "{}.compute(aggregates = [Count()], for_each = [\"{}\"])",
                    main.name, group.name
                );
                (question, gold)
            }
            1 => {
                let measure = *pick(&mut rng, &main.measures());
                let question = format!(
                    "{what} the average {} for each {} ?",
                    col_ref(measure.name),
                    col_ref(group.name)
                );
                let gold = format!(
                    "{}.compute(aggregates = [Average(\"{}\")], for_each = [\"{}\"])",
                    main.name, measure.name, group.name
                );
                (question, gold)
            }
            2 => {
                let measure = *pick(&mut rng, &main.measures());
                let question = format!(
                    "{what} the total {} for each {} ?",
                    col_ref(measure.name),
                    col_ref(group.name)
                );
                let gold = format!(
                    "{}.compute(aggregates = [Sum(\"{}\")], for_each = [\"{}\"])",
                    main.name, measure.name, group.name
                );
                (question, gold)
            }
            _ => {
                let measure = *pick(&mut rng, &main.measures());
                let noun = main.columns[0].phrase;
                let threshold = threshold_for(&measure.kind, &mut rng);
                let question = format!(
                    "{howmany} {noun} with {} above {threshold} for each {} ?",
                    col_ref(measure.name),
                    col_ref(group.name)
                );
                let gold = format!(
                    "{}.filter(\"{} > {threshold}\").compute(aggregates = [Count()], for_each = [\"{}\"])",
                    main.name, measure.name, group.name
                );
                (question, gold)
            }
        }
    };

    // ---- misalignment control ----
    let mut question = base_question.clone();
    if want_high_m {
        let mut fillers = 4;
        loop {
            question = add_fillers(&base_question, domain.vague_fillers, fillers, &mut rng);
            if misalignment(&question, &schema, semantics) >= dc_nl::M_THRESHOLD || fillers > 24 {
                break;
            }
            fillers += 2;
        }
    }

    let m = misalignment(&question, &schema, semantics);
    let c = composition(&gold_program);
    Sample {
        id,
        domain: domain.name.to_string(),
        is_custom: domain.is_custom,
        question,
        gold_program,
        schema,
        misalignment: m,
        composition: c,
        zone: Zone::of(m, c),
        data_seed: seed ^ 0x5eed,
    }
}

fn threshold_for(kind: &ColumnKind, rng: &mut StdRng) -> i64 {
    match kind {
        ColumnKind::Int { lo, hi } => {
            (lo + (hi - lo) / 3) + rng.random_range(0..((hi - lo) / 4).max(1))
        }
        ColumnKind::Float { lo, hi } => {
            ((lo + (hi - lo) / 3.0) as i64) + rng.random_range(0..(((hi - lo) / 4.0) as i64).max(1))
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{custom_domains, spider_domains};

    #[test]
    fn samples_land_in_their_zones() {
        let mut hits = 0;
        let mut total = 0;
        for domain in spider_domains() {
            let sem = domain.semantic_layer();
            for (zi, zone) in Zone::all().into_iter().enumerate() {
                for k in 0..6u64 {
                    let s = make_sample(total, &domain, zone, &sem, 1000 + zi as u64 * 100 + k);
                    total += 1;
                    if s.zone == zone {
                        hits += 1;
                    }
                }
            }
        }
        // Zone control is engineered, not certified — accept ≥85%.
        assert!(
            hits * 100 / total >= 85,
            "only {hits}/{total} samples landed in their target zone"
        );
    }

    #[test]
    fn custom_zones_also_reachable() {
        for domain in custom_domains() {
            let sem = domain.semantic_layer();
            for zone in Zone::all() {
                let mut ok = false;
                for k in 0..8u64 {
                    let s = make_sample(0, &domain, zone, &sem, 50 + k);
                    if s.zone == zone {
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "domain {} cannot reach zone {:?}", domain.name, zone);
            }
        }
    }

    #[test]
    fn gold_programs_parse_and_check() {
        for domain in spider_domains().iter().chain(custom_domains().iter()) {
            let sem = domain.semantic_layer();
            for zone in Zone::all() {
                let s = make_sample(0, domain, zone, &sem, 7);
                let checked = dc_nl::check(&s.gold_program, &s.schema)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", domain.name, s.gold_program));
                assert!(
                    checked.is_valid(),
                    "{}: {:?}\n{}",
                    domain.name,
                    checked.errors(),
                    s.gold_program
                );
            }
        }
    }

    #[test]
    fn high_c_samples_exceed_threshold() {
        let d = &spider_domains()[0];
        let sem = d.semantic_layer();
        let s = make_sample(0, d, Zone::LowHigh, &sem, 3);
        assert!(s.composition >= dc_nl::C_THRESHOLD, "C = {}", s.composition);
        let s = make_sample(0, d, Zone::LowLow, &sem, 3);
        assert!(s.composition < dc_nl::C_THRESHOLD);
    }

    #[test]
    fn deterministic_generation() {
        let d = &spider_domains()[1];
        let sem = d.semantic_layer();
        let a = make_sample(5, d, Zone::HighLow, &sem, 99);
        let b = make_sample(5, d, Zone::HighLow, &sem, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn high_m_questions_keep_operative_columns() {
        // Fillers must not garble the column references the gold program
        // depends on.
        let sem = SemanticLayer::new();
        let d = &spider_domains()[0];
        let s = make_sample(0, d, Zone::HighLow, &sem, 11);
        // Gold references must appear in the question text.
        for col in ["region", "price", "quantity"] {
            if s.gold_program.contains(col) {
                assert!(
                    s.question.contains(col),
                    "question lost {col}: {}",
                    s.question
                );
            }
        }
    }
}
