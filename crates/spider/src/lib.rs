//! # dc-spider — the synthetic text-to-analytics benchmark (§4.7)
//!
//! Stands in for the Spider dev split and the paper's custom test set
//! (see DESIGN.md's substitution table): a deterministic generator of
//! (question, gold program, schema, data) samples whose (M, C) difficulty
//! distribution matches Figure 7's zone counts, plus the stratified
//! T_spider / T_custom samplers and the execution-accuracy harness behind
//! Table 2.

pub mod devsplit;
pub mod domains;
pub mod eval;
pub mod gen;

pub use devsplit::{
    dev_split, t_custom, t_spider, zone_histogram, CUSTOM_TEST_COUNTS, DEV_ZONE_COUNTS,
    SPIDER_TEST_COUNTS,
};
pub use domains::{custom_domains, spider_domains, Domain};
pub use eval::{
    custom_system, evaluate, execution_accuracy, spider_example_library, spider_system,
    ZoneAccuracy,
};
pub use gen::{make_sample, Sample};
