//! Benchmark domains: schemas, synthetic data, naming styles.
//!
//! Spider-like domains use clean, word-like identifiers; the custom
//! evaluation set (§4.7's recently-released tabular data, which
//! pre-trained models cannot have memorized) uses opaque, abbreviated
//! identifiers — which is exactly what drives the schema-irrelevance
//! term of M.

use std::collections::BTreeMap;

use dc_engine::{Column, Table};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A column blueprint.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    pub name: &'static str,
    /// Human phrase used in low-M questions ("price", "unit price").
    pub phrase: &'static str,
    pub kind: ColumnKind,
}

/// What data the column holds.
#[derive(Debug, Clone)]
pub enum ColumnKind {
    /// Row id (unique ints).
    Id,
    /// Foreign key into `0..fanout`.
    Key { fanout: i64 },
    /// Categorical with the given values.
    Category(&'static [&'static str]),
    /// Uniform integer in range.
    Int { lo: i64, hi: i64 },
    /// Uniform float in range (never null — EA must not hinge on
    /// count-vs-count-records distinctions).
    Float { lo: f64, hi: f64 },
}

/// One table blueprint.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: &'static str,
    pub columns: Vec<ColumnSpec>,
}

/// A benchmark domain.
#[derive(Debug, Clone)]
pub struct Domain {
    pub name: &'static str,
    pub tables: Vec<TableSpec>,
    /// Vague filler words for high-M question paraphrases.
    pub vague_fillers: &'static [&'static str],
    /// Whether this domain belongs to the custom (unseen) evaluation set.
    pub is_custom: bool,
}

impl Domain {
    /// Generate the domain's tables (`rows` rows each, seeded).
    pub fn make_tables(&self, rows: usize, seed: u64) -> BTreeMap<String, Table> {
        let mut out = BTreeMap::new();
        for (ti, spec) in self.tables.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(ti as u64 * 7919));
            let mut t = Table::empty();
            for col in &spec.columns {
                let c = match &col.kind {
                    ColumnKind::Id => Column::from_ints((0..rows as i64).collect()),
                    ColumnKind::Key { fanout } => {
                        Column::from_ints((0..rows).map(|_| rng.random_range(0..*fanout)).collect())
                    }
                    ColumnKind::Category(values) => Column::from_strs(
                        (0..rows)
                            .map(|_| values[rng.random_range(0..values.len())].to_string())
                            .collect(),
                    ),
                    ColumnKind::Int { lo, hi } => {
                        Column::from_ints((0..rows).map(|_| rng.random_range(*lo..*hi)).collect())
                    }
                    ColumnKind::Float { lo, hi } => Column::from_floats(
                        (0..rows)
                            .map(|_| (rng.random_range(*lo..*hi) * 100.0).round() / 100.0)
                            .collect(),
                    ),
                };
                t.add_column(col.name, c).expect("blueprint columns unique");
            }
            out.insert(spec.name.to_string(), t);
        }
        out
    }

    /// The primary (first) table.
    pub fn main_table(&self) -> &TableSpec {
        &self.tables[0]
    }

    /// The domain's semantic layer: one annotation per column linking its
    /// human phrase to the identifier (§4.2 — this is exactly the gap the
    /// paper's semantic layer closes for opaque schemas).
    pub fn semantic_layer(&self) -> dc_nl::SemanticLayer {
        let mut sl = dc_nl::SemanticLayer::new();
        for t in &self.tables {
            for c in &t.columns {
                if !c.phrase.eq_ignore_ascii_case(c.name) {
                    sl.add(dc_nl::Concept {
                        name: c.phrase.to_string(),
                        keywords: vec![],
                        kind: dc_nl::ConceptKind::Annotation {
                            column: c.name.to_string(),
                            note: format!("stored as {}", c.name),
                        },
                    });
                }
            }
        }
        sl
    }

    /// Schema hints for the NL2Code pipeline.
    pub fn schema_hints(&self) -> dc_nl::SchemaHints {
        let mut h = dc_nl::SchemaHints::default();
        for t in &self.tables {
            h.tables.insert(
                t.name.to_string(),
                t.columns.iter().map(|c| c.name.to_string()).collect(),
            );
        }
        h
    }
}

impl TableSpec {
    /// Categorical columns (grouping candidates).
    pub fn categories(&self) -> Vec<&ColumnSpec> {
        self.columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Category(_)))
            .collect()
    }

    /// Numeric measure columns.
    pub fn measures(&self) -> Vec<&ColumnSpec> {
        self.columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Int { .. } | ColumnKind::Float { .. }))
            .collect()
    }

    /// The key column shared with a sibling table, if any.
    pub fn key_column(&self) -> Option<&ColumnSpec> {
        self.columns
            .iter()
            .find(|c| matches!(c.kind, ColumnKind::Key { .. } | ColumnKind::Id))
    }
}

/// Union of the semantic layers of a domain pool (what the evaluation
/// system's semantic layer would contain for those datasets).
pub fn pool_semantics(domains: &[Domain]) -> dc_nl::SemanticLayer {
    let mut sl = dc_nl::SemanticLayer::new();
    for d in domains {
        for c in d.semantic_layer().concepts() {
            sl.add(c.clone());
        }
    }
    sl
}

/// The Spider-like (seen) domains.
pub fn spider_domains() -> Vec<Domain> {
    vec![
        Domain {
            name: "sales",
            is_custom: false,
            vague_fillers: &[
                "honestly", "roughly", "folks", "overall", "figures", "numbers",
            ],
            tables: vec![
                TableSpec {
                    name: "orders",
                    columns: vec![
                        ColumnSpec {
                            name: "order_id",
                            phrase: "orders",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "customer_id",
                            phrase: "customer",
                            kind: ColumnKind::Key { fanout: 40 },
                        },
                        ColumnSpec {
                            name: "region",
                            phrase: "region",
                            kind: ColumnKind::Category(&["north", "south", "east", "west"]),
                        },
                        ColumnSpec {
                            name: "product",
                            phrase: "product",
                            kind: ColumnKind::Category(&[
                                "widget",
                                "gadget",
                                "gizmo",
                                "sprocket",
                                "doohickey",
                            ]),
                        },
                        ColumnSpec {
                            name: "price",
                            phrase: "price",
                            kind: ColumnKind::Float { lo: 5.0, hi: 200.0 },
                        },
                        ColumnSpec {
                            name: "quantity",
                            phrase: "quantity",
                            kind: ColumnKind::Int { lo: 1, hi: 20 },
                        },
                    ],
                },
                TableSpec {
                    name: "customers",
                    columns: vec![
                        ColumnSpec {
                            name: "customer_id",
                            phrase: "customer",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "city",
                            phrase: "city",
                            kind: ColumnKind::Category(&[
                                "springfield",
                                "riverton",
                                "lakeside",
                                "hillcrest",
                            ]),
                        },
                        ColumnSpec {
                            name: "segment",
                            phrase: "segment",
                            kind: ColumnKind::Category(&[
                                "consumer",
                                "corporate",
                                "small business",
                            ]),
                        },
                    ],
                },
            ],
        },
        Domain {
            name: "finance",
            is_custom: false,
            vague_fillers: &["frankly", "ballpark", "bucks", "cash", "wise", "roughly"],
            tables: vec![
                TableSpec {
                    name: "transactions",
                    columns: vec![
                        ColumnSpec {
                            name: "txn_id",
                            phrase: "transactions",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "account_id",
                            phrase: "account",
                            kind: ColumnKind::Key { fanout: 30 },
                        },
                        ColumnSpec {
                            name: "channel",
                            phrase: "channel",
                            kind: ColumnKind::Category(&["branch", "online", "mobile", "atm"]),
                        },
                        ColumnSpec {
                            name: "amount",
                            phrase: "amount",
                            kind: ColumnKind::Float {
                                lo: 1.0,
                                hi: 5000.0,
                            },
                        },
                        ColumnSpec {
                            name: "fee",
                            phrase: "fee",
                            kind: ColumnKind::Float { lo: 0.0, hi: 30.0 },
                        },
                    ],
                },
                TableSpec {
                    name: "accounts",
                    columns: vec![
                        ColumnSpec {
                            name: "account_id",
                            phrase: "account",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "branch",
                            phrase: "branch",
                            kind: ColumnKind::Category(&[
                                "downtown", "uptown", "harbor", "airport",
                            ]),
                        },
                        ColumnSpec {
                            name: "tier",
                            phrase: "tier",
                            kind: ColumnKind::Category(&["basic", "silver", "gold"]),
                        },
                    ],
                },
            ],
        },
        Domain {
            name: "healthcare",
            is_custom: false,
            vague_fillers: &["generally", "caseload", "roughly", "ward", "wise", "tally"],
            tables: vec![
                TableSpec {
                    name: "admissions",
                    columns: vec![
                        ColumnSpec {
                            name: "admission_id",
                            phrase: "admissions",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "patient_id",
                            phrase: "patient",
                            kind: ColumnKind::Key { fanout: 50 },
                        },
                        ColumnSpec {
                            name: "department",
                            phrase: "department",
                            kind: ColumnKind::Category(&[
                                "cardiology",
                                "oncology",
                                "pediatrics",
                                "orthopedics",
                            ]),
                        },
                        ColumnSpec {
                            name: "severity",
                            phrase: "severity",
                            kind: ColumnKind::Category(&["routine", "urgent", "critical"]),
                        },
                        ColumnSpec {
                            name: "length_of_stay",
                            phrase: "length of stay",
                            kind: ColumnKind::Int { lo: 1, hi: 30 },
                        },
                        ColumnSpec {
                            name: "cost",
                            phrase: "cost",
                            kind: ColumnKind::Float {
                                lo: 200.0,
                                hi: 20000.0,
                            },
                        },
                    ],
                },
                TableSpec {
                    name: "patients",
                    columns: vec![
                        ColumnSpec {
                            name: "patient_id",
                            phrase: "patient",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "age_group",
                            phrase: "age group",
                            kind: ColumnKind::Category(&["child", "adult", "senior"]),
                        },
                        ColumnSpec {
                            name: "insurance",
                            phrase: "insurance",
                            kind: ColumnKind::Category(&["public", "private", "none"]),
                        },
                    ],
                },
            ],
        },
    ]
}

/// The custom (unseen, recently released) domains with opaque naming.
pub fn custom_domains() -> Vec<Domain> {
    vec![
        Domain {
            name: "evcharging",
            is_custom: true,
            vague_fillers: &["juice", "plugs", "uptake", "kinda", "sorta", "vibes"],
            tables: vec![
                TableSpec {
                    name: "chg_sess",
                    columns: vec![
                        ColumnSpec {
                            name: "sess_id",
                            phrase: "sessions",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "stn_id",
                            phrase: "station",
                            kind: ColumnKind::Key { fanout: 25 },
                        },
                        ColumnSpec {
                            name: "conn_typ",
                            phrase: "connector",
                            kind: ColumnKind::Category(&["ccs", "chademo", "type2"]),
                        },
                        ColumnSpec {
                            name: "kwh_dlv",
                            phrase: "energy",
                            kind: ColumnKind::Float { lo: 2.0, hi: 90.0 },
                        },
                        ColumnSpec {
                            name: "dur_min",
                            phrase: "duration",
                            kind: ColumnKind::Int { lo: 5, hi: 240 },
                        },
                    ],
                },
                TableSpec {
                    name: "chg_stn",
                    columns: vec![
                        ColumnSpec {
                            name: "stn_id",
                            phrase: "station",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "opr_cd",
                            phrase: "operator",
                            kind: ColumnKind::Category(&["op_a", "op_b", "op_c"]),
                        },
                        ColumnSpec {
                            name: "pwr_cls",
                            phrase: "power class",
                            kind: ColumnKind::Category(&["l2", "dcfc", "hpc"]),
                        },
                    ],
                },
            ],
        },
        Domain {
            name: "esports",
            is_custom: true,
            vague_fillers: &["grind", "meta", "stomp", "kinda", "clutch", "scrims"],
            tables: vec![
                TableSpec {
                    name: "mtch_rslt",
                    columns: vec![
                        ColumnSpec {
                            name: "mtch_id",
                            phrase: "matches",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "tm_id",
                            phrase: "team",
                            kind: ColumnKind::Key { fanout: 16 },
                        },
                        ColumnSpec {
                            name: "map_nm",
                            phrase: "map",
                            kind: ColumnKind::Category(&["dust", "mirage", "nuke", "inferno"]),
                        },
                        ColumnSpec {
                            name: "rounds_w",
                            phrase: "rounds won",
                            kind: ColumnKind::Int { lo: 0, hi: 16 },
                        },
                        ColumnSpec {
                            name: "dmg_avg",
                            phrase: "damage",
                            kind: ColumnKind::Float {
                                lo: 40.0,
                                hi: 120.0,
                            },
                        },
                    ],
                },
                TableSpec {
                    name: "tm_rstr",
                    columns: vec![
                        ColumnSpec {
                            name: "tm_id",
                            phrase: "team",
                            kind: ColumnKind::Id,
                        },
                        ColumnSpec {
                            name: "rgn_cd",
                            phrase: "region",
                            kind: ColumnKind::Category(&["na", "eu", "apac"]),
                        },
                        ColumnSpec {
                            name: "div_cd",
                            phrase: "division",
                            kind: ColumnKind::Category(&["d1", "d2"]),
                        },
                    ],
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_generate_with_blueprint_shape() {
        for d in spider_domains().iter().chain(custom_domains().iter()) {
            let tables = d.make_tables(100, 7);
            assert_eq!(tables.len(), d.tables.len(), "domain {}", d.name);
            for spec in &d.tables {
                let t = &tables[spec.name];
                assert_eq!(t.num_rows(), 100);
                assert_eq!(t.num_columns(), spec.columns.len());
                // No nulls anywhere — EA must not hinge on null handling.
                for c in t.columns() {
                    assert_eq!(c.null_count(), 0);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = &spider_domains()[0];
        assert_eq!(d.make_tables(50, 3), d.make_tables(50, 3));
    }

    #[test]
    fn custom_schemas_are_more_opaque() {
        let spider_s2: f64 = spider_domains()
            .iter()
            .map(|d| dc_nl::metrics::schema_irrelevance(&d.schema_hints()))
            .sum::<f64>()
            / 3.0;
        let custom_s2: f64 = custom_domains()
            .iter()
            .map(|d| dc_nl::metrics::schema_irrelevance(&d.schema_hints()))
            .sum::<f64>()
            / 2.0;
        assert!(
            custom_s2 > spider_s2 + 0.3,
            "custom {custom_s2} vs spider {spider_s2}"
        );
    }

    #[test]
    fn every_pair_shares_a_join_key() {
        for d in spider_domains().iter().chain(custom_domains().iter()) {
            let main_cols: Vec<&str> = d.tables[0].columns.iter().map(|c| c.name).collect();
            let second_cols: Vec<&str> = d.tables[1].columns.iter().map(|c| c.name).collect();
            assert!(
                main_cols.iter().any(|c| second_cols.contains(c)),
                "domain {} lacks a shared key",
                d.name
            );
        }
    }

    #[test]
    fn measures_and_categories_present() {
        for d in spider_domains().iter().chain(custom_domains().iter()) {
            let main = d.main_table();
            assert!(!main.measures().is_empty());
            assert!(!main.categories().is_empty());
        }
    }
}
