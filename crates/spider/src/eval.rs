//! Execution-accuracy evaluation (Table 2).
//!
//! "Execution accuracy is a binary (1, 0) metric that compares the
//! results of executing the generated program with a ground truth
//! execution result." Both programs run against the sample's synthetic
//! tables; results compare as order-insensitive multisets of rendered
//! rows (column names and order are presentation details, not answers).

use std::collections::BTreeMap;

use dc_gel::RecipeEditor;
use dc_nl::metrics::Zone;
use dc_nl::{ExampleLibrary, Nl2Code, PromptComposer, SimulatedLlm};
use dc_skills::Env;

use crate::domains::{custom_domains, pool_semantics, spider_domains, Domain};
use crate::gen::Sample;

/// Find a domain by name across both pools.
pub fn domain_by_name(name: &str) -> Option<Domain> {
    spider_domains()
        .into_iter()
        .chain(custom_domains())
        .find(|d| d.name == name)
}

/// Execute a Python-API program against an environment pre-loaded with
/// the sample's tables; `None` when generation/checking/execution fails.
fn run_program(program: &str, sample: &Sample, tables_rows: usize) -> Option<dc_engine::Table> {
    let domain = domain_by_name(&sample.domain)?;
    let tables = domain.make_tables(tables_rows, sample.data_seed);
    let mut env = Env::new();
    for (name, t) in tables {
        env.save_table(name, t);
    }
    let checked = dc_nl::check(program, &sample.schema).ok()?;
    if !checked.is_valid() {
        return None;
    }
    let recipe = Nl2Code::to_recipe(&checked).ok()?;
    let mut editor = RecipeEditor::new(recipe);
    editor.run(&mut env).ok()?;
    editor.last_output()?.as_table().cloned()
}

/// Canonical form of a result table: sorted multiset of rows, each row a
/// sorted multiset of rendered cells (names/order are ignored).
fn canonical(table: &dc_engine::Table) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..table.num_rows())
        .map(|r| {
            let mut cells: Vec<String> = table
                .columns()
                .iter()
                .map(|c| {
                    let v = c.get(r);
                    // Numeric values compare at fixed precision so Int 5
                    // and Float 5.0 answers agree.
                    match v.as_f64() {
                        Some(f) => format!("{f:.6}"),
                        None => v.render(),
                    }
                })
                .collect();
            cells.sort();
            cells
        })
        .collect();
    rows.sort();
    rows
}

/// Execution accuracy of one generated program against the gold.
pub fn execution_accuracy(sample: &Sample, generated: &str, rows: usize) -> bool {
    let Some(gold) = run_program(&sample.gold_program, sample, rows) else {
        // Gold must execute; a sample whose gold fails scores nothing.
        return false;
    };
    let Some(gen) = run_program(generated, sample, rows) else {
        return false;
    };
    canonical(&gold) == canonical(&gen)
}

/// Build an in-domain example library from sibling samples (the §4.3
/// repository covers the Spider domains; custom domains are unseen and
/// get only the cross-domain built-ins).
pub fn spider_example_library(seed: u64) -> ExampleLibrary {
    let mut lib = ExampleLibrary::builtin();
    for domain in spider_domains() {
        let sem = domain.semantic_layer();
        for zone in Zone::all() {
            for k in 0..2u64 {
                let s = crate::gen::make_sample(0, &domain, zone, &sem, seed ^ (k + 1) << 9);
                lib.add(dc_nl::Example::new(s.question, s.gold_program, domain.name));
            }
        }
    }
    lib
}

/// One Table 2 cell: sample count and mean execution accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneAccuracy {
    pub zone: Zone,
    pub samples: usize,
    pub mean_ea: f64,
}

/// Full Table 2 evaluation of a sample set with a given NL2Code system.
pub fn evaluate(samples: &[Sample], system: &Nl2Code, rows: usize) -> Vec<ZoneAccuracy> {
    let mut per_zone: BTreeMap<&'static str, (Zone, usize, usize)> = BTreeMap::new();
    for z in Zone::all() {
        per_zone.insert(z.label(), (z, 0, 0));
    }
    for sample in samples {
        let generated = system
            .generate(&sample.question, &sample.schema)
            .map(|r| r.python)
            .unwrap_or_default();
        let ok = !generated.is_empty() && execution_accuracy(sample, &generated, rows);
        let entry = per_zone
            .get_mut(sample.zone.label())
            .expect("all zones present");
        entry.1 += 1;
        entry.2 += ok as usize;
    }
    Zone::all()
        .into_iter()
        .map(|z| {
            let (_, n, ok) = per_zone[z.label()];
            ZoneAccuracy {
                zone: z,
                samples: n,
                mean_ea: if n == 0 { 0.0 } else { ok as f64 / n as f64 },
            }
        })
        .collect()
}

/// The default evaluation system for T_spider (in-domain example library,
/// seeded simulated model).
pub fn spider_system(seed: u64) -> Nl2Code {
    Nl2Code {
        semantics: pool_semantics(&spider_domains()),
        library: spider_example_library(seed),
        composer: PromptComposer::default(),
        model: Box::new(SimulatedLlm::new(seed)),
    }
}

/// The default evaluation system for T_custom (unseen domains: only the
/// cross-domain built-in examples).
pub fn custom_system(seed: u64) -> Nl2Code {
    Nl2Code {
        semantics: pool_semantics(&custom_domains()),
        library: ExampleLibrary::builtin(),
        composer: PromptComposer::default(),
        model: Box::new(SimulatedLlm::new(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devsplit::{t_custom, t_spider};
    use dc_nl::metrics::Zone;

    #[test]
    fn gold_programs_always_execute() {
        for s in t_spider(5)
            .iter()
            .take(12)
            .chain(t_custom(5).iter().take(8))
        {
            assert!(
                run_program(&s.gold_program, s, 80).is_some(),
                "gold failed for {}: {}",
                s.domain,
                s.gold_program
            );
        }
    }

    #[test]
    fn gold_matches_itself() {
        for s in t_spider(5).iter().take(6) {
            assert!(execution_accuracy(s, &s.gold_program, 80));
        }
    }

    #[test]
    fn wrong_program_fails_accuracy() {
        let s = &t_spider(5)[0];
        assert!(!execution_accuracy(s, "orders.head(1)", 80));
        assert!(!execution_accuracy(s, "not even code (", 80));
    }

    #[test]
    fn canonical_ignores_column_names_and_order() {
        use dc_engine::Column;
        let a = dc_engine::Table::new(vec![
            ("x", Column::from_ints(vec![1, 2])),
            ("y", Column::from_strs(vec!["a", "b"])),
        ])
        .unwrap();
        let b = dc_engine::Table::new(vec![
            ("other", Column::from_strs(vec!["b", "a"])),
            ("name", Column::from_ints(vec![2, 1])),
        ])
        .unwrap();
        assert_eq!(canonical(&a), canonical(&b));
    }

    #[test]
    fn oracle_system_scores_high_on_low_low() {
        // With error injection off, the translation rules alone should
        // nail most shallow, aligned questions.
        let sys = Nl2Code {
            semantics: pool_semantics(&spider_domains()),
            library: spider_example_library(1),
            composer: PromptComposer::default(),
            model: Box::new(SimulatedLlm::oracle()),
        };
        let samples: Vec<_> = t_spider(9)
            .into_iter()
            .filter(|s| s.zone == Zone::LowLow)
            .take(10)
            .collect();
        let result = evaluate(&samples, &sys, 60);
        let ll = result.iter().find(|z| z.zone == Zone::LowLow).unwrap();
        assert!(ll.mean_ea >= 0.8, "oracle EA on (low,low) = {}", ll.mean_ea);
    }
}
