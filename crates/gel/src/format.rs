//! Formatting skill calls as canonical GEL sentences.
//!
//! GEL is the controlled natural language every recipe is shown in
//! (Figure 2a). [`format_skill`] emits the canonical sentence for a call;
//! [`crate::parse::parse_gel`] accepts it back (plus looser variants), so
//! recipes round-trip.

use dc_engine::{AggFunc, AggSpec, DataType, Expr, Value};
use dc_ml::OutlierMethod;
use dc_skills::{DatePart, SkillCall};
use dc_viz::ChartType;

/// Render a value for a GEL sentence (strings are bare when simple,
/// quoted when they contain commas/quotes).
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            let simple = !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ' ' || c == '-')
                && s.trim() == s;
            if simple {
                s.clone()
            } else {
                format!("'{}'", s.replace('\'', "''"))
            }
        }
        other => other.render(),
    }
}

fn format_list(items: &[String]) -> String {
    items.join(", ")
}

/// Render a predicate expression in GEL's condition syntax (the SQL
/// fragment form, which the condition parser accepts).
pub fn format_condition(e: &Expr) -> String {
    e.to_sql()
}

fn format_agg(spec: &AggSpec) -> String {
    match (spec.func, &spec.column) {
        (AggFunc::CountRecords, _) => "the count of records".to_string(),
        (f, Some(c)) => format!("the {} of {c}", f.gel_name()),
        (f, None) => format!("the {}", f.gel_name()),
    }
}

fn chart_name(c: ChartType) -> &'static str {
    c.display_name()
}

/// The canonical GEL sentence for a skill call.
pub fn format_skill(call: &SkillCall) -> String {
    use SkillCall::*;
    match call {
        LoadFile { path } => format!("Load data from the file {path}"),
        LoadUrl { url } => format!("Load data from the URL {url}"),
        LoadTable { database, table } => {
            format!("Load the table {table} from the database {database}")
        }
        LoadTableFiltered {
            database,
            table,
            predicate,
        } => format!(
            "Load the table {table} from the database {database} where {}",
            format_condition(predicate)
        ),
        LoadTableProjected {
            database,
            table,
            columns,
            predicate,
        } => match predicate {
            Some(p) => format!(
                "Load the columns {} of the table {table} from the database {database} where {}",
                format_list(columns),
                format_condition(p)
            ),
            None => format!(
                "Load the columns {} of the table {table} from the database {database}",
                format_list(columns)
            ),
        },
        UseDataset { name, version } => match version {
            Some(v) => format!("Use the dataset {name}, version {v}"),
            None => format!("Use the dataset {name}"),
        },
        UseSnapshot { name } => format!("Use the snapshot {name}"),
        DescribeColumn { column } => format!("Describe the column {column}"),
        DescribeDataset => "Describe the dataset".to_string(),
        ListDatasets => "List the datasets".to_string(),
        ShowHead { n } => format!("Show the first {n} rows"),
        CountRows => "Count the rows".to_string(),
        ProfileMissing => "Profile the missing values".to_string(),
        Visualize { kpi, by } => {
            if by.is_empty() {
                format!("Visualize {kpi}")
            } else {
                format!("Visualize {kpi} by {}", format_list(by))
            }
        }
        Plot {
            chart,
            x,
            y,
            color,
            size,
            for_each,
        } => {
            let mut s = format!("Plot a {} chart", chart_name(*chart));
            let mut parts: Vec<String> = Vec::new();
            if let Some(x) = x {
                parts.push(format!("the x-axis {x}"));
            }
            if let Some(y) = y {
                parts.push(format!("the y-axis {y}"));
            }
            if let Some(c) = color {
                parts.push(format!("colored by {c}"));
            }
            if let Some(sz) = size {
                parts.push(format!("sized by {sz}"));
            }
            if !parts.is_empty() {
                s.push_str(" with ");
                s.push_str(&parts.join(", "));
            }
            if let Some(f) = for_each {
                s.push_str(&format!(", for each {f}"));
            }
            s
        }
        KeepRows { predicate } => format!("Keep the rows where {}", format_condition(predicate)),
        DropRows { predicate } => format!("Drop the rows where {}", format_condition(predicate)),
        KeepColumns { columns } => format!("Keep the columns {}", format_list(columns)),
        DropColumns { columns } => format!("Drop the columns {}", format_list(columns)),
        RenameColumn { from, to } => format!("Rename the column {from} to {to}"),
        CreateColumn { name, expr } => {
            format!("Create a new column {name} as {}", expr.to_sql())
        }
        CreateConstantColumn { name, value } => match value {
            Value::Str(_) => format!(
                "Create a new column {name} with text {}",
                format_value(value)
            ),
            _ => format!(
                "Create a new column {name} with value {}",
                format_value(value)
            ),
        },
        Compute { aggs, for_each } => {
            let agg_text: Vec<String> = aggs.iter().map(format_agg).collect();
            let mut s = format!("Compute {}", agg_text.join(" and "));
            if !for_each.is_empty() {
                s.push_str(&format!(" for each {}", format_list(for_each)));
            }
            let names: Vec<String> = aggs.iter().map(|a| a.output.clone()).collect();
            let defaults: Vec<String> = aggs
                .iter()
                .map(|a| AggSpec::default_output(a.func, a.column.as_deref()))
                .collect();
            if names != defaults {
                s.push_str(&format!(
                    " and call the computed columns {}",
                    format_list(&names)
                ));
            }
            s
        }
        Pivot {
            index,
            columns,
            values,
            agg,
        } => format!(
            "Pivot on {index} by {columns} using the {} of {values}",
            agg.gel_name()
        ),
        Sort { keys } => {
            let parts: Vec<String> = keys
                .iter()
                .map(|(c, asc)| {
                    if *asc {
                        c.clone()
                    } else {
                        format!("{c} descending")
                    }
                })
                .collect();
            format!("Sort by {}", parts.join(", "))
        }
        Top { column, n } => format!("Keep the top {n} rows by {column}"),
        Limit { n } => format!("Keep the first {n} rows"),
        Concat {
            other,
            remove_duplicates,
        } => {
            let mut s = format!("Concatenate with the dataset {other}");
            if *remove_duplicates {
                s.push_str(" remove all duplicates");
            }
            s
        }
        Join {
            other,
            left_on,
            right_on,
            how,
        } => {
            let on: Vec<String> = left_on
                .iter()
                .zip(right_on)
                .map(|(l, r)| {
                    if l.eq_ignore_ascii_case(r) {
                        l.clone()
                    } else {
                        format!("{l} = {r}")
                    }
                })
                .collect();
            let how_text = match how {
                dc_engine::JoinType::Inner => "",
                dc_engine::JoinType::Left => " as a left join",
                dc_engine::JoinType::Right => " as a right join",
                dc_engine::JoinType::Full => " as a full join",
            };
            format!(
                "Join with the dataset {other} on {}{how_text}",
                format_list(&on)
            )
        }
        Distinct { columns } => {
            if columns.is_empty() {
                "Remove duplicate rows".to_string()
            } else {
                format!("Remove duplicate rows based on {}", format_list(columns))
            }
        }
        DropMissing { columns } => {
            if columns.is_empty() {
                "Drop the rows with missing values".to_string()
            } else {
                format!("Drop the rows with missing {}", format_list(columns))
            }
        }
        FillMissing { column, value } => format!(
            "Fill the missing values of {column} with {}",
            format_value(value)
        ),
        ReplaceValues { column, from, to } => format!(
            "Replace {} with {} in the column {column}",
            format_value(from),
            format_value(to)
        ),
        CastColumn { column, to } => {
            format!("Change the type of {column} to {}", to.name())
        }
        BinColumn {
            column,
            width,
            name,
        } => match name {
            Some(n) => format!("Bin the column {column} with width {width} and call it {n}"),
            None => format!("Bin the column {column} with width {width}"),
        },
        ExtractDatePart { column, part, name } => match name {
            Some(n) => format!("Extract the {} of {column} and call it {n}", part.name()),
            None => format!("Extract the {} of {column}", part.name()),
        },
        TrimColumn { column } => format!("Trim whitespace in the column {column}"),
        Sample { fraction, seed } => {
            // Round float noise so 0.92 prints as 92%, not 92.00000000000001%.
            let pct = fraction * 100.0;
            let pct_text = if (pct - pct.round()).abs() < 1e-9 {
                format!("{}", pct.round() as i64)
            } else {
                format!("{pct}")
            };
            format!("Sample {pct_text}% of the rows with seed {seed}")
        }
        ShuffleRows { seed } => format!("Shuffle the rows with seed {seed}"),
        TrainModel {
            name,
            target,
            features,
            method,
        } => {
            let mut s = format!("Train a model named {name} to predict {target}");
            if !features.is_empty() {
                s.push_str(&format!(" using {}", format_list(features)));
            }
            match method {
                dc_ml::MlMethod::Auto => {}
                dc_ml::MlMethod::Linear => s.push_str(" with linear regression"),
                dc_ml::MlMethod::DecisionTree => s.push_str(" with a decision tree"),
            }
            s
        }
        Predict { model } => format!("Predict with the model {model}"),
        PredictTimeSeries {
            measures,
            horizon,
            time_column,
        } => format!(
            "Predict time series with measure columns {} for the next {horizon} values of {time_column}",
            format_list(measures)
        ),
        DetectOutliers { column, method } => match method {
            OutlierMethod::ZScore { .. } => {
                format!("Detect outliers in the column {column} using the zscore method")
            }
            OutlierMethod::Iqr { .. } => {
                format!("Detect outliers in the column {column} using the iqr method")
            }
        },
        Cluster { k, features } => format!(
            "Cluster the rows into {k} groups using {}",
            format_list(features)
        ),
        EvaluateModel { model, target } => {
            format!("Evaluate the model {model} against {target}")
        }
        RunSql { query } => format!("Run the SQL query {query}"),
        ExportCsv => "Export the dataset as CSV".to_string(),
        SaveArtifact { name } => format!("Save this as {name}"),
        Snapshot { name } => format!("Snapshot this as {name}"),
        Define { phrase, expansion } => format!("Define {phrase} as {expansion}"),
        Comment { text } => format!("Comment: {text}"),
        ShareArtifact {
            artifact,
            with_user,
        } => format!("Share the artifact {artifact} with {with_user}"),
    }
}

/// Map a cast-target name back to a type (shared with the parser).
pub fn parse_dtype(name: &str) -> Option<DataType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" => Some(DataType::Int),
        "float" | "double" | "number" => Some(DataType::Float),
        "str" | "text" | "string" => Some(DataType::Str),
        "bool" | "boolean" => Some(DataType::Bool),
        "date" => Some(DataType::Date),
        _ => None,
    }
}

/// Map a date-part name (shared with the parser).
pub fn parse_date_part(name: &str) -> Option<DatePart> {
    match name.to_ascii_lowercase().as_str() {
        "year" => Some(DatePart::Year),
        "month" => Some(DatePart::Month),
        "day" => Some(DatePart::Day),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_sentences() {
        assert_eq!(
            format_skill(&SkillCall::LoadUrl {
                url: "https://fred.example/gdp.csv".into()
            }),
            "Load data from the URL https://fred.example/gdp.csv"
        );
        assert_eq!(
            format_skill(&SkillCall::PredictTimeSeries {
                measures: vec!["GDPC1".into()],
                horizon: 12,
                time_column: "DATE".into()
            }),
            "Predict time series with measure columns GDPC1 for the next 12 values of DATE"
        );
        assert_eq!(
            format_skill(&SkillCall::CreateConstantColumn {
                name: "RecordType".into(),
                value: Value::Str("Actual".into())
            }),
            "Create a new column RecordType with text Actual"
        );
        assert_eq!(
            format_skill(&SkillCall::KeepColumns {
                columns: vec!["DATE".into(), "GDPC1".into(), "RecordType".into()]
            }),
            "Keep the columns DATE, GDPC1, RecordType"
        );
    }

    #[test]
    fn figure3_compute_sentence() {
        let call = SkillCall::Compute {
            aggs: vec![AggSpec::new(AggFunc::Count, "case_id", "NumberOfCases")],
            for_each: vec!["party_sobriety".into()],
        };
        assert_eq!(
            format_skill(&call),
            "Compute the count of case_id for each party_sobriety and call the computed columns NumberOfCases"
        );
    }

    #[test]
    fn compute_with_default_name_omits_call_clause() {
        let call = SkillCall::Compute {
            aggs: vec![AggSpec::new(
                AggFunc::Avg,
                "Age",
                AggSpec::default_output(AggFunc::Avg, Some("Age")),
            )],
            for_each: vec!["JobLevel".into()],
        };
        assert_eq!(
            format_skill(&call),
            "Compute the average of Age for each JobLevel"
        );
    }

    #[test]
    fn value_quoting() {
        assert_eq!(format_value(&Value::Str("driver".into())), "driver");
        assert_eq!(format_value(&Value::Str("it's".into())), "'it''s'");
        assert_eq!(format_value(&Value::Int(5)), "5");
        assert_eq!(format_value(&Value::Str("a,b".into())), "'a,b'");
    }

    #[test]
    fn visualize_matches_figure1() {
        let call = SkillCall::Visualize {
            kpi: "at_fault".into(),
            by: vec![
                "party_age".into(),
                "party_sex".into(),
                "cellphone_in_use".into(),
            ],
        };
        assert_eq!(
            format_skill(&call),
            "Visualize at_fault by party_age, party_sex, cellphone_in_use"
        );
    }

    #[test]
    fn plot_with_all_roles() {
        let call = SkillCall::Plot {
            chart: ChartType::Line,
            x: Some("DATE".into()),
            y: Some("GDPC1".into()),
            color: None,
            size: None,
            for_each: Some("RecordType".into()),
        };
        assert_eq!(
            format_skill(&call),
            "Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType"
        );
    }

    #[test]
    fn helpers() {
        assert_eq!(parse_dtype("INTEGER"), Some(DataType::Int));
        assert_eq!(parse_dtype("whatever"), None);
        assert_eq!(parse_date_part("Month"), Some(DatePart::Month));
    }
}
