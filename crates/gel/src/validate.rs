//! Recipe validation through the shared static analyzer.
//!
//! GEL recipes lower to skill DAGs ([`Recipe::to_dag`]), which means
//! every analyzer pass — schema/type propagation, dataflow lints, cost
//! lints — applies to a recipe before any step executes. This module
//! adds the GEL-side provenance: analyzer findings anchored to DAG nodes
//! are remapped to 1-based recipe *steps* (and source *lines* for
//! [`analyze_gel`]), and parse failures become `DC0401` diagnostics in
//! the same report shape instead of hard errors.

use dc_analyze::{analyze_dag, Analysis, AnalysisContext, Code, Diagnostic, Span};

use crate::parse::parse_gel;
use crate::recipe::Recipe;

/// Validate a parsed recipe against an analysis context. The analysis
/// targets the final step (a recipe delivers its last result); findings
/// carry `step` spans (1-based, matching [`Recipe::to_text`] numbering).
pub fn validate_recipe(recipe: &Recipe, ctx: &AnalysisContext) -> Analysis {
    if recipe.is_empty() {
        return Analysis::default();
    }
    let (dag, node_of_step) = match recipe.to_dag() {
        Ok(v) => v,
        Err(e) => {
            // A recipe that does not lower to a DAG cannot be analyzed
            // further; report the lowering failure itself.
            return Analysis {
                diagnostics: vec![Diagnostic::new(
                    Code::GelParse,
                    format!("recipe does not lower to a DAG: {e}"),
                )],
                ..Analysis::default()
            };
        }
    };
    let target = *node_of_step.last().expect("non-empty recipe");
    let mut analysis = analyze_dag(&dag, &[target], ctx);
    for d in &mut analysis.diagnostics {
        if let Some(step) = d
            .span
            .node
            .and_then(|n| step_of_node(&node_of_step, &dag, n))
        {
            d.span.step = Some(step);
        }
    }
    analysis
}

/// The 1-based recipe step a DAG node belongs to. Synthetic nodes (the
/// implicit `UseDataset` a `Join`/`Concat` materializes for an unbound
/// second dataset) are attributed to the step that consumes them.
fn step_of_node(
    node_of_step: &[dc_skills::NodeId],
    dag: &dc_skills::SkillDag,
    node: dc_skills::NodeId,
) -> Option<usize> {
    if let Some(i) = node_of_step.iter().position(|&n| n == node) {
        return Some(i + 1);
    }
    dag.nodes()
        .iter()
        .find(|n| n.inputs.contains(&node))
        .and_then(|consumer| node_of_step.iter().position(|&n| n == consumer.id))
        .map(|i| i + 1)
}

/// Analyze raw GEL text: line-aware parsing, then full recipe
/// validation. Unparseable sentences become `DC0401` diagnostics with
/// the offending 1-based source line; when every sentence parses, the
/// analyzer runs and its step spans gain the corresponding source line.
pub fn analyze_gel(text: &str, ctx: &AnalysisContext) -> Analysis {
    let mut recipe = Recipe::new();
    let mut line_of_step: Vec<usize> = Vec::new();
    let mut parse_errors: Vec<Diagnostic> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if let Some(name) = line.strip_prefix("-- bind:") {
            let name = name.trim();
            let bound = recipe
                .len()
                .checked_sub(1)
                .map(|last| recipe.bind(last, name).is_ok())
                .unwrap_or(false);
            if name.is_empty() || !bound {
                parse_errors.push(
                    Diagnostic::new(
                        Code::GelParse,
                        "-- bind: directive needs a preceding step and a dataset name",
                    )
                    .with_span(Span::line(line_no, line)),
                );
            }
            continue;
        }
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match parse_gel(line) {
            Ok(call) => {
                recipe.push(call);
                line_of_step.push(line_no);
            }
            Err(e) => {
                parse_errors.push(
                    Diagnostic::new(Code::GelParse, format!("cannot parse GEL sentence: {e}"))
                        .with_span(Span::line(line_no, line)),
                );
            }
        }
    }
    // Parse errors leave holes in the step chain; analyzing the residue
    // would produce misleading cascades, so report the parses alone.
    if !parse_errors.is_empty() {
        return Analysis {
            diagnostics: parse_errors,
            ..Analysis::default()
        };
    }
    let mut analysis = validate_recipe(&recipe, ctx);
    for d in &mut analysis.diagnostics {
        if let Some(line) = d.span.step.and_then(|s| line_of_step.get(s - 1).copied()) {
            d.span.line = Some(line);
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_analyze::{Severity, TableStats};
    use dc_engine::{DataType, Field, Schema};

    fn ctx() -> AnalysisContext {
        let mut ctx = AnalysisContext::new();
        ctx.add_table(
            "Main",
            "sales",
            Schema::new(vec![
                Field::new("region", DataType::Str),
                Field::new("price", DataType::Float),
            ])
            .unwrap(),
            TableStats {
                rows: 10,
                blocks: 2,
                bytes: 100,
                ..TableStats::default()
            },
        );
        ctx
    }

    #[test]
    fn clean_gel_validates() {
        let a = analyze_gel(
            "Load the table sales from the database Main\n\
             Keep the rows where price > 1\n",
            &ctx(),
        );
        assert!(a.diagnostics.is_empty(), "{}", a.render());
    }

    #[test]
    fn parse_error_becomes_dc0401_with_line() {
        let a = analyze_gel(
            "Load the table sales from the database Main\n\
             utter nonsense here\n",
            &ctx(),
        );
        assert_eq!(a.diagnostics.len(), 1);
        let d = &a.diagnostics[0];
        assert_eq!(d.code, Code::GelParse);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.line, Some(2));
    }

    #[test]
    fn analyzer_findings_carry_step_and_line() {
        let a = analyze_gel(
            "-- a comment\n\
             Load the table sales from the database Main\n\
             Keep the rows where bogus > 1\n",
            &ctx(),
        );
        assert!(a.has_errors());
        let d = &a.with_code(Code::UnknownColumn)[0];
        assert_eq!(d.span.step, Some(2));
        assert_eq!(d.span.line, Some(3));
    }

    #[test]
    fn bind_directive_resolves_for_concat() {
        let a = analyze_gel(
            "Load the table sales from the database Main\n\
             -- bind: base\n\
             Keep the rows where price > 1\n\
             Concatenate the datasets this and base\n",
            &ctx(),
        );
        assert!(a.diagnostics.is_empty(), "{}", a.render());
    }

    #[test]
    fn dangling_bind_is_reported() {
        let a = analyze_gel("-- bind: early\n", &ctx());
        assert_eq!(a.with_code(Code::GelParse).len(), 1);
    }

    #[test]
    fn unlowerable_recipe_reports_dc0401() {
        let mut r = Recipe::new();
        r.push(dc_skills::SkillCall::Concat {
            other: "ghost".into(),
            remove_duplicates: false,
        });
        let a = validate_recipe(&r, &ctx());
        assert_eq!(a.with_code(Code::GelParse).len(), 1);
    }
}
