//! GEL errors.

use std::fmt;

/// Errors from parsing or running GEL.
#[derive(Debug, Clone, PartialEq)]
pub enum GelError {
    /// The sentence matched no skill template.
    UnknownSentence { sentence: String },
    /// The sentence matched a template but a piece failed to parse.
    BadPhrase { message: String, phrase: String },
    /// A recipe-editor operation was invalid (step out of range, ...).
    Editor { message: String },
    /// Propagated skill failure during recipe execution.
    Skill(dc_skills::SkillError),
}

impl GelError {
    /// Convenience constructor for [`GelError::BadPhrase`].
    pub fn bad_phrase(message: impl Into<String>, phrase: impl Into<String>) -> Self {
        GelError::BadPhrase {
            message: message.into(),
            phrase: phrase.into(),
        }
    }
}

impl fmt::Display for GelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GelError::UnknownSentence { sentence } => {
                write!(f, "I didn't understand: {sentence:?}")
            }
            GelError::BadPhrase { message, phrase } => {
                write!(f, "couldn't read {phrase:?}: {message}")
            }
            GelError::Editor { message } => write!(f, "editor error: {message}"),
            GelError::Skill(e) => write!(f, "skill error: {e}"),
        }
    }
}

impl std::error::Error for GelError {}

impl From<dc_skills::SkillError> for GelError {
    fn from(e: dc_skills::SkillError) -> Self {
        GelError::Skill(e)
    }
}

/// Result alias for GEL.
pub type Result<T> = std::result::Result<T, GelError>;
