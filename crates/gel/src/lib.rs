//! # dc-gel — Guided English Language
//!
//! The controlled natural language of §1/§2.3: every recipe is shown and
//! editable as GEL. This crate provides both directions plus the tooling
//! the paper demonstrates:
//!
//! * [`format`] — canonical GEL sentence for every skill call;
//! * [`parse`] — sentence templates with typed holes, plus condition
//!   sugar ("DATE is between the dates 01-01-2005 to 12-31-2020", "DATE
//!   is after Today - 10 years") falling back to SQL expressions;
//! * [`recipe`] — recipes and the IDE/debugger of Figure 2a
//!   (breakpoints, Next, Replay, edit-in-place);
//! * [`autocomplete`] — the Figure 3c console completion.

pub mod autocomplete;
pub mod error;
pub mod format;
pub mod parse;
pub mod recipe;
pub mod validate;

pub use autocomplete::{suggest, Suggestion, SuggestionKind};
pub use error::{GelError, Result};
pub use format::{format_condition, format_skill, format_value};
pub use parse::{parse_condition, parse_gel, parse_list, parse_value, GEL_TODAY};
pub use recipe::{Recipe, RecipeEditor, RunState};
pub use validate::{analyze_gel, validate_recipe};
