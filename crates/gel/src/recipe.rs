//! Recipes and the GEL editor/debugger (Figure 2a).
//!
//! A recipe is an ordered list of GEL steps. The editor model supports
//! the IDE controls the paper shows: breakpoints (the red dot), Replay,
//! Pause, Next (step), and Run-to-end, "examining the output at each
//! step if needed". Steps can be edited in place; edits re-parse the GEL
//! line.

use dc_skills::{Env, Executor, NodeId, SkillCall, SkillDag, SkillOutput};

use crate::error::{GelError, Result};
use crate::format::format_skill;
use crate::parse::parse_gel;

/// A recipe: the GEL representation of a linear skill chain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recipe {
    steps: Vec<SkillCall>,
    /// Step index → dataset name bound after that step (the `Use the
    /// dataset X` targets of later steps).
    bindings: Vec<(usize, String)>,
}

impl Recipe {
    /// An empty recipe.
    pub fn new() -> Recipe {
        Recipe::default()
    }

    /// Build from GEL text, one sentence per line. Blank lines and `--`
    /// comment lines are skipped, except the `-- bind: <name>` directive,
    /// which binds the preceding step's result to a dataset name (the
    /// textual form of [`Recipe::bind`], so `.gel` files can express the
    /// branching recipes of Figure 2).
    pub fn parse(text: &str) -> Result<Recipe> {
        let mut r = Recipe::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(name) = line.strip_prefix("-- bind:") {
                let name = name.trim();
                if name.is_empty() {
                    return Err(GelError::Editor {
                        message: "-- bind: directive needs a dataset name".into(),
                    });
                }
                let Some(last) = r.steps.len().checked_sub(1) else {
                    return Err(GelError::Editor {
                        message: "-- bind: directive before any step".into(),
                    });
                };
                r.bind(last, name)?;
                continue;
            }
            if line.is_empty() || line.starts_with("--") {
                continue;
            }
            r.steps.push(parse_gel(line)?);
        }
        Ok(r)
    }

    /// Append a step.
    pub fn push(&mut self, call: SkillCall) {
        self.steps.push(call);
    }

    /// Bind a dataset name to the result of step `index` (0-based), so a
    /// later `Use the dataset <name>` / `Concatenate ...` resolves to it.
    pub fn bind(&mut self, index: usize, name: impl Into<String>) -> Result<()> {
        if index >= self.steps.len() {
            return Err(GelError::Editor {
                message: format!("step {index} out of range"),
            });
        }
        self.bindings.push((index, name.into()));
        Ok(())
    }

    /// The steps.
    pub fn steps(&self) -> &[SkillCall] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the recipe has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replace step `index` with a re-parsed GEL line (editing in the
    /// IDE).
    pub fn edit(&mut self, index: usize, gel_line: &str) -> Result<()> {
        if index >= self.steps.len() {
            return Err(GelError::Editor {
                message: format!("step {index} out of range"),
            });
        }
        self.steps[index] = parse_gel(gel_line)?;
        Ok(())
    }

    /// Delete a step. Bindings at or after the step shift down; a binding
    /// to the deleted step is dropped.
    pub fn remove(&mut self, index: usize) -> Result<()> {
        if index >= self.steps.len() {
            return Err(GelError::Editor {
                message: format!("step {index} out of range"),
            });
        }
        self.steps.remove(index);
        self.bindings.retain(|(i, _)| *i != index);
        for (i, _) in self.bindings.iter_mut() {
            if *i > index {
                *i -= 1;
            }
        }
        Ok(())
    }

    /// Render as numbered GEL text (the editor's left pane in Fig. 2a).
    pub fn to_text(&self) -> String {
        self.steps
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", i + 1, format_skill(s)))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Lower the recipe into a skill DAG: steps chain linearly except
    /// `UseDataset`, which re-roots the chain at the bound node, and
    /// two-input skills (Concat/Join), whose second input resolves from
    /// the bound names.
    pub fn to_dag(&self) -> Result<(SkillDag, Vec<NodeId>)> {
        let mut dag = SkillDag::new();
        let mut node_of_step: Vec<NodeId> = Vec::with_capacity(self.steps.len());
        let mut current: Option<NodeId> = None;
        for (i, call) in self.steps.iter().enumerate() {
            let inputs: Vec<NodeId> = match call {
                SkillCall::UseDataset { name, version } => {
                    // Re-root at the bound dataset when it exists; an
                    // explicit version selects among repeated bindings.
                    let resolved = match version {
                        Some(v) => dag.resolve_version(name, *v).map(Some).or_else(|e| {
                            // Unknown name falls back to the environment;
                            // a known name with a bad version is an error.
                            if dag.resolve_name(name).is_ok() {
                                Err(e)
                            } else {
                                Ok(None)
                            }
                        })?,
                        None => dag.resolve_name(name).ok(),
                    };
                    match resolved {
                        Some(n) => vec![n],
                        None => vec![],
                    }
                }
                SkillCall::Concat { other, .. } | SkillCall::Join { other, .. } => {
                    // An unbound name implicitly references a saved/stored
                    // dataset: materialize a UseDataset node for it.
                    let second = match dag.resolve_name(other) {
                        Ok(n) => n,
                        Err(_) => dag.add(
                            SkillCall::UseDataset {
                                name: other.clone(),
                                version: None,
                            },
                            vec![],
                        )?,
                    };
                    let first = current.ok_or_else(|| GelError::Editor {
                        message: "two-input step with no current dataset".into(),
                    })?;
                    vec![first, second]
                }
                c if c.needs_input() => {
                    vec![current.ok_or_else(|| GelError::Editor {
                        message: format!("step {} needs an input dataset", i + 1),
                    })?]
                }
                _ => vec![],
            };
            let id = dag.add(call.clone(), inputs)?;
            node_of_step.push(id);
            current = Some(id);
            for (bi, name) in &self.bindings {
                if *bi == i {
                    dag.bind_name(name.clone(), id)?;
                }
            }
        }
        Ok((dag, node_of_step))
    }
}

/// Debugger run states (the Fig. 2a control strip: Replay / Pause / Next
/// / End / Select line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Not started, or reset by Replay.
    Idle,
    /// Stopped at a step (next to execute = `position`).
    Paused,
    /// Finished every step.
    Done,
}

/// The interactive GEL editor/debugger.
#[derive(Debug)]
pub struct RecipeEditor {
    recipe: Recipe,
    breakpoints: Vec<bool>,
    position: usize,
    state: RunState,
    executor: Executor,
    /// Output of the most recently executed step.
    last_output: Option<SkillOutput>,
}

impl RecipeEditor {
    /// Open a recipe in the editor.
    pub fn new(recipe: Recipe) -> RecipeEditor {
        let n = recipe.len();
        RecipeEditor {
            recipe,
            breakpoints: vec![false; n],
            position: 0,
            state: RunState::Idle,
            executor: Executor::new(),
            last_output: None,
        }
    }

    /// The underlying recipe.
    pub fn recipe(&self) -> &Recipe {
        &self.recipe
    }

    /// Next step to execute (0-based).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Current run state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// Output of the most recently executed step ("examining the output
    /// at each step").
    pub fn last_output(&self) -> Option<&SkillOutput> {
        self.last_output.as_ref()
    }

    /// Toggle a breakpoint (the red dot) on a step.
    pub fn toggle_breakpoint(&mut self, step: usize) -> Result<bool> {
        let Some(slot) = self.breakpoints.get_mut(step) else {
            return Err(GelError::Editor {
                message: format!("step {step} out of range"),
            });
        };
        *slot = !*slot;
        Ok(*slot)
    }

    /// Whether a step has a breakpoint.
    pub fn has_breakpoint(&self, step: usize) -> bool {
        self.breakpoints.get(step).copied().unwrap_or(false)
    }

    /// Replay: reset to the beginning (cached results are kept — §2.2's
    /// cache makes replay cheap when data hasn't changed).
    pub fn replay(&mut self) {
        self.position = 0;
        self.state = RunState::Idle;
        self.last_output = None;
    }

    /// Execute exactly one step ("Next").
    pub fn step(&mut self, env: &mut Env) -> Result<RunState> {
        if self.position >= self.recipe.len() {
            self.state = RunState::Done;
            return Ok(self.state);
        }
        let (dag, node_of_step) = self.recipe.to_dag()?;
        let node = node_of_step[self.position];
        let out = self.executor.run(&dag, node, env)?;
        self.last_output = Some(out);
        self.position += 1;
        self.state = if self.position >= self.recipe.len() {
            RunState::Done
        } else {
            RunState::Paused
        };
        Ok(self.state)
    }

    /// Run until the next breakpoint or the end ("Replay" then "Continue"
    /// semantics; a breakpoint on step i pauses *before* executing i).
    pub fn run(&mut self, env: &mut Env) -> Result<RunState> {
        while self.position < self.recipe.len() {
            if self.has_breakpoint(self.position) && self.state != RunState::Idle
            // An Idle run starting exactly on a breakpoint still
            // executes nothing first: pause immediately unless we've
            // just paused here.
            {
                self.state = RunState::Paused;
                return Ok(self.state);
            }
            if self.has_breakpoint(self.position) && self.state == RunState::Idle {
                self.state = RunState::Paused;
                return Ok(self.state);
            }
            self.step(env)?;
            if self.state == RunState::Paused && self.has_breakpoint(self.position) {
                return Ok(self.state);
            }
        }
        self.state = RunState::Done;
        Ok(self.state)
    }

    /// Continue past a breakpoint: execute the paused step, then keep
    /// running to the next breakpoint or the end.
    pub fn resume(&mut self, env: &mut Env) -> Result<RunState> {
        if self.position < self.recipe.len() {
            self.step(env)?;
        }
        while self.position < self.recipe.len() && !self.has_breakpoint(self.position) {
            self.step(env)?;
        }
        if self.position < self.recipe.len() {
            self.state = RunState::Paused;
        }
        Ok(self.state)
    }

    /// Edit a step's GEL text; execution state resets (the platform
    /// re-derives execution tasks from the DAG per request).
    pub fn edit_step(&mut self, index: usize, gel_line: &str) -> Result<()> {
        self.recipe.edit(index, gel_line)?;
        self.replay();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Value;

    fn env() -> Env {
        let mut env = Env::new();
        env.add_file("nums.csv", "x,y\n1,10\n2,20\n3,30\n4,40\n");
        env
    }

    fn recipe() -> Recipe {
        Recipe::parse(
            "Load data from the file nums.csv\n\
             Keep the rows where x > 1\n\
             Keep the first 2 rows\n",
        )
        .unwrap()
    }

    #[test]
    fn parse_recipe_text() {
        let r = recipe();
        assert_eq!(r.len(), 3);
        assert!(r
            .to_text()
            .starts_with("1 Load data from the file nums.csv"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let r = Recipe::parse("-- a comment\n\nLoad data from the file nums.csv\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn step_through_and_examine_outputs() {
        let mut ed = RecipeEditor::new(recipe());
        let mut env = env();
        assert_eq!(ed.state(), RunState::Idle);
        ed.step(&mut env).unwrap();
        let t = ed.last_output().unwrap().as_table().unwrap();
        assert_eq!(t.num_rows(), 4);
        ed.step(&mut env).unwrap();
        let t = ed.last_output().unwrap().as_table().unwrap();
        assert_eq!(t.num_rows(), 3);
        let state = ed.step(&mut env).unwrap();
        assert_eq!(state, RunState::Done);
        let t = ed.last_output().unwrap().as_table().unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn breakpoint_pauses_before_step() {
        let mut ed = RecipeEditor::new(recipe());
        let mut env = env();
        ed.toggle_breakpoint(1).unwrap();
        let state = ed.run(&mut env).unwrap();
        assert_eq!(state, RunState::Paused);
        assert_eq!(ed.position(), 1); // step 1 not yet executed
                                      // The step-0 output is visible.
        assert_eq!(ed.last_output().unwrap().as_table().unwrap().num_rows(), 4);
        let state = ed.resume(&mut env).unwrap();
        assert_eq!(state, RunState::Done);
        assert_eq!(ed.last_output().unwrap().as_table().unwrap().num_rows(), 2);
    }

    #[test]
    fn replay_resets_and_uses_cache() {
        let mut ed = RecipeEditor::new(recipe());
        let mut env = env();
        ed.run(&mut env).unwrap();
        let first_runs = ed.executor.stats.nodes_executed;
        ed.replay();
        assert_eq!(ed.state(), RunState::Idle);
        ed.run(&mut env).unwrap();
        // Replay hits the executor cache; no new node executions.
        assert_eq!(ed.executor.stats.nodes_executed, first_runs);
        assert!(ed.executor.stats.cache_hits > 0);
    }

    #[test]
    fn edit_step_changes_behavior() {
        let mut ed = RecipeEditor::new(recipe());
        let mut env = env();
        ed.run(&mut env).unwrap();
        ed.edit_step(1, "Keep the rows where x > 3").unwrap();
        assert_eq!(ed.state(), RunState::Idle);
        ed.run(&mut env).unwrap();
        let t = ed.last_output().unwrap().as_table().unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "x").unwrap(), Value::Int(4));
    }

    #[test]
    fn edit_rejects_bad_gel_and_bad_index() {
        let mut ed = RecipeEditor::new(recipe());
        assert!(ed.edit_step(1, "nonsense sentence").is_err());
        assert!(ed.edit_step(99, "Keep the first 1 rows").is_err());
        assert!(ed.toggle_breakpoint(99).is_err());
    }

    #[test]
    fn remove_step_shifts_bindings() {
        let mut r = recipe();
        r.bind(2, "final").unwrap();
        r.remove(1).unwrap();
        assert_eq!(r.len(), 2);
        let (dag, _) = r.to_dag().unwrap();
        assert!(dag.resolve_name("final").is_ok());
    }

    #[test]
    fn figure2_style_branching_recipe() {
        // Mimics the Figure 2 shape: predict from a filtered series, then
        // rewind to the raw dataset, label it, and concatenate.
        let mut env = Env::new();
        let mut csv = String::from("DATE,GDPC1\n");
        for q in 0..40 {
            let d = dc_engine::date::add_months(dc_engine::date::days_from_ymd(2005, 1, 1), 3 * q);
            csv.push_str(&format!(
                "{},{}\n",
                dc_engine::date::format_date(d),
                100 + 2 * q
            ));
        }
        env.add_url("https://fred.example/gdp.csv", csv);

        let mut r = Recipe::new();
        r.push(parse_gel("Load data from the URL https://fred.example/gdp.csv").unwrap());
        r.bind(0, "fredgraph").unwrap();
        r.push(
            parse_gel(
                "Predict time series with measure columns GDPC1 for the next 12 values of DATE",
            )
            .unwrap(),
        );
        r.bind(1, "PredictedTimeSeries_GDPC1").unwrap();
        r.push(parse_gel("Use the dataset fredgraph").unwrap());
        r.push(parse_gel("Create a new column RecordType with text Actual").unwrap());
        r.push(parse_gel("Keep the columns DATE, GDPC1, RecordType").unwrap());
        r.push(
            parse_gel(
                "Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
            )
            .unwrap(),
        );
        let mut ed = RecipeEditor::new(r);
        let state = ed.run(&mut env).unwrap();
        assert_eq!(state, RunState::Done);
        let t = ed.last_output().unwrap().as_table().unwrap();
        assert_eq!(t.num_rows(), 52); // 40 actual + 12 predicted
        assert_eq!(t.schema().names(), vec!["DATE", "GDPC1", "RecordType"]);
    }
}
